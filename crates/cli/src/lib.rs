//! # mdm-cli
//!
//! A command-line front-end for MDM, playing the role of the paper's
//! Node.JS/D3 web interface: the steward inspects the graphs and mappings,
//! the analyst poses walks (in the textual notation of
//! [`mdm_core::walk_dsl`]) and sees the generated SPARQL, the relational
//! algebra and the tabular result.
//!
//! The command interpreter is a pure function over [`Session`] state, so
//! every command is unit-testable; `main.rs` is a thin REPL around it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mdm_core::usecase;
use mdm_core::walk_dsl;
use mdm_core::{FsyncPolicy, Mdm, MetaStore};
use mdm_relational::{Deadline, Layout, OptimizeMode};
use mdm_wrappers::football::{self, FootballEcosystem};
use mdm_wrappers::FaultPlan;

/// The interpreter state: the system plus the ecosystem backing it.
pub struct Session {
    pub mdm: Option<Mdm>,
    pub ecosystem: Option<FootballEcosystem>,
    /// Lines being accumulated for a multi-line `query`/`rewrite` command.
    pending: Option<(PendingKind, String)>,
    /// A running HTTP server, when `serve` moved the system behind it.
    server: Option<mdm_server::ServerHandle>,
    /// A running read replica, when `serve --replica-of` started one.
    replica: Option<mdm_replica::ReplicaHandle>,
    /// Fault-injection seed applied to every loaded system (`--fault-seed`).
    fault_seed: Option<u64>,
    /// Transient-fault rate paired with `fault_seed`.
    fault_rate: f64,
    /// Per-query deadline budget (`--deadline-ms`); `None` = unbounded.
    deadline_ms: Option<u64>,
    /// Execution-pool size (`--threads`); `None` = the process-wide
    /// default, `Some(1)` = sequential.
    threads: Option<usize>,
    /// Operator batch width (`--batch-size`); `None` = the engine default.
    batch_size: Option<usize>,
    /// Physical data layout (`--layout`); `None` = the engine default
    /// (columnar).
    layout: Option<Layout>,
    /// Plan-optimization mode (`--optimize`); `None` = the engine default
    /// (cost-based).
    optimize: Option<OptimizeMode>,
    /// The durable journal opened by `--data-dir`; every steward mutation
    /// appends to its WAL and `compact` folds it.
    store: Option<Arc<MetaStore>>,
    /// The directory behind `store` (for messages).
    data_dir: Option<PathBuf>,
    /// WAL durability policy applied when opening `--data-dir`.
    fsync: FsyncPolicy,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    Query,
    Rewrite,
    Explain,
    Trace,
}

/// The outcome of interpreting one line.
pub enum Outcome {
    /// Text to print.
    Text(String),
    /// The REPL should exit.
    Quit,
    /// The interpreter is collecting a multi-line walk; show this prompt.
    NeedMore,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A fresh session with no system loaded.
    pub fn new() -> Self {
        Session {
            mdm: None,
            ecosystem: None,
            pending: None,
            server: None,
            replica: None,
            fault_seed: None,
            fault_rate: 0.3,
            deadline_ms: None,
            threads: None,
            batch_size: None,
            layout: None,
            optimize: None,
            store: None,
            data_dir: None,
            fsync: FsyncPolicy::Always,
        }
    }

    /// Sets the WAL fsync policy used by the next [`Session::open_data_dir`]
    /// (the `--fsync` flag; parse with [`FsyncPolicy::parse`]).
    pub fn set_fsync(&mut self, policy: FsyncPolicy) {
        self.fsync = policy;
    }

    /// Opens (or creates) the durable store in `dir` — the `--data-dir`
    /// flag. An existing journal is recovered and becomes the session's
    /// system; otherwise the store is seeded from the loaded system (or an
    /// empty one). Returns a human-readable report.
    pub fn open_data_dir(&mut self, dir: &Path) -> Result<String, String> {
        if self.server.is_some() {
            return Err("stop the running server before opening a data dir".to_string());
        }
        if self.store.is_some() {
            return Err(format!(
                "a data dir is already open ({})",
                self.data_dir
                    .as_deref()
                    .unwrap_or_else(|| Path::new("?"))
                    .display()
            ));
        }
        if !dir.exists() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        let initial = self.mdm.take().unwrap_or_default();
        let (store, mdm, report) = MetaStore::attach(dir, self.fsync, initial)
            .map_err(|e| format!("cannot open data dir {}: {e}", dir.display()))?;
        let epoch = mdm.epoch();
        self.mdm = Some(mdm);
        self.store = Some(store);
        self.data_dir = Some(dir.to_path_buf());
        self.apply_fault_plan();
        self.apply_threads();
        Ok(if report.recovered {
            format!(
                "recovered {} (generation {}, {} journal records replayed{}) — epoch {epoch}",
                dir.display(),
                report.generation,
                report.replayed,
                if report.truncated_tail {
                    ", torn tail truncated"
                } else {
                    ""
                }
            )
        } else {
            format!(
                "created durable store in {} (generation {}, fsync {})",
                dir.display(),
                report.generation,
                self.fsync
            )
        })
    }

    /// Re-seeds the open store after a command replaced the whole system
    /// (`setup`, `restore`): folds the new state into a fresh generation and
    /// re-attaches the journal sink. Returns a warning line on failure.
    fn rebind_store(&mut self) -> Option<String> {
        let (Some(store), Some(mdm)) = (&self.store, self.mdm.as_mut()) else {
            return None;
        };
        if let Err(e) = store.compact(mdm) {
            return Some(format!("warning: journal compaction failed: {e}"));
        }
        mdm.set_journal(Some(store.clone()));
        None
    }

    /// Arms fault injection for every system loaded after this call
    /// (the `--fault-seed` startup flag; `faults <seed>` at the prompt).
    pub fn set_fault_seed(&mut self, seed: Option<u64>) {
        self.fault_seed = seed;
        self.apply_fault_plan();
    }

    /// Sets the per-query deadline budget (the `--deadline-ms` flag).
    pub fn set_deadline_ms(&mut self, ms: Option<u64>) {
        self.deadline_ms = ms;
    }

    /// Sets the execution-pool size applied to every loaded system
    /// (the `--threads` flag). `1` forces the sequential path.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
        self.apply_threads();
    }

    /// Sets the operator batch width applied to every loaded system
    /// (the `--batch-size` flag). `0` restores the engine default.
    pub fn set_batch_size(&mut self, batch_size: Option<usize>) {
        self.batch_size = batch_size;
        self.apply_threads();
    }

    /// Sets the physical data layout applied to every loaded system
    /// (the `--layout` flag; parse with [`Layout::parse`]).
    pub fn set_layout(&mut self, layout: Option<Layout>) {
        self.layout = layout;
        self.apply_threads();
    }

    /// Sets the plan-optimization mode applied to every loaded system
    /// (the `--optimize` flag; parse with [`OptimizeMode::parse`]).
    pub fn set_optimize(&mut self, optimize: Option<OptimizeMode>) {
        self.optimize = optimize;
        self.apply_threads();
    }

    /// (Re)stamps the loaded system with the session's pool size, batch
    /// width, data layout and optimization mode.
    fn apply_threads(&mut self) {
        if let Some(mdm) = self.mdm.as_mut() {
            if let Some(threads) = self.threads {
                mdm.set_threads(threads);
            }
            if let Some(batch) = self.batch_size {
                mdm.set_batch_size(batch);
            }
            if let Some(layout) = self.layout {
                mdm.set_layout(layout);
            }
            if let Some(optimize) = self.optimize {
                mdm.set_optimize(optimize);
            }
        }
    }

    fn deadline(&self) -> Deadline {
        match self.deadline_ms {
            Some(ms) => Deadline::in_ms(ms),
            None => Deadline::none(),
        }
    }

    /// (Re)stamps the loaded system with the session's fault plan.
    fn apply_fault_plan(&mut self) {
        if let Some(mdm) = self.mdm.as_mut() {
            let plan = self
                .fault_seed
                .map(|seed| Arc::new(FaultPlan::seeded(seed).transient_rate(self.fault_rate)));
            mdm.set_fault_plan(plan);
        }
    }

    /// Interprets one input line.
    pub fn interpret(&mut self, line: &str) -> Outcome {
        // Multi-line walk collection mode: a lone '.' terminates.
        if let Some((kind, mut text)) = self.pending.take() {
            if line.trim() == "." {
                return self.run_walk(kind, &text);
            }
            text.push_str(line);
            text.push('\n');
            self.pending = Some((kind, text));
            return Outcome::NeedMore;
        }

        let mut parts = line.trim().splitn(2, ' ');
        let command = parts.next().unwrap_or_default();
        let argument = parts.next().unwrap_or("").trim();
        match command {
            "" => Outcome::Text(String::new()),
            "help" => Outcome::Text(HELP.to_string()),
            "quit" | "exit" => Outcome::Quit,
            "setup" => self.setup(argument),
            "evolve" => self.evolve(),
            "show" => self.show(argument),
            "sources" => self.sources(),
            "wrappers" => self.wrappers(),
            "query" => {
                self.pending = Some((PendingKind::Query, String::new()));
                Outcome::NeedMore
            }
            "rewrite" => {
                self.pending = Some((PendingKind::Rewrite, String::new()));
                Outcome::NeedMore
            }
            "explain" => {
                self.pending = Some((PendingKind::Explain, String::new()));
                Outcome::NeedMore
            }
            "trace" => {
                self.pending = Some((PendingKind::Trace, String::new()));
                Outcome::NeedMore
            }
            "suggest" => self.suggest(argument),
            "changes" => self.changes(argument),
            "stats" => self.stats(argument),
            "faults" => self.faults(argument),
            "serve" => self.serve(argument),
            "call" => self.call(argument),
            "promote" => self.promote(),
            "stop" => self.stop_server(),
            "status" => self.status(),
            "snapshot" => self.snapshot(argument),
            "restore" => self.restore(argument),
            "compact" => self.compact(),
            other => Outcome::Text(format!(
                "unknown command '{other}' — type 'help' for the command list"
            )),
        }
    }

    fn require_mdm(&self) -> Result<&Mdm, String> {
        self.mdm
            .as_ref()
            .ok_or_else(|| "no system loaded — run 'setup football' first".to_string())
    }

    fn setup(&mut self, what: &str) -> Outcome {
        match what {
            "football" | "" => {
                let eco = football::build_default();
                match usecase::football_mdm(&eco) {
                    Ok(mdm) => {
                        let wrappers = mdm.catalog().len();
                        self.mdm = Some(mdm);
                        self.ecosystem = Some(eco);
                        self.apply_fault_plan();
                        self.apply_threads();
                        let mut text = format!(
                            "football use case loaded: 4 sources, {wrappers} wrappers.\n\
                             Try 'show global', then 'query' (finish the walk with a lone '.')."
                        );
                        if let Some(warning) = self.rebind_store() {
                            text.push('\n');
                            text.push_str(&warning);
                        }
                        Outcome::Text(text)
                    }
                    Err(e) => Outcome::Text(format!("setup failed: {e}")),
                }
            }
            other => Outcome::Text(format!("unknown scenario '{other}' (available: football)")),
        }
    }

    fn evolve(&mut self) -> Outcome {
        let Some(eco) = self.ecosystem.clone() else {
            return Outcome::Text("no ecosystem loaded — run 'setup football' first".into());
        };
        let Some(mdm) = self.mdm.as_mut() else {
            return Outcome::Text("no system loaded — run 'setup football' first".into());
        };
        match usecase::register_players_v2(mdm, &eco) {
            Ok(()) => Outcome::Text(
                "Players API v2 registered (breaking release): wrapper w3 + LAV mapping.\n\
                 Re-run your query — it now spans both schema versions."
                    .into(),
            ),
            Err(e) => Outcome::Text(format!("evolution step failed: {e}")),
        }
    }

    fn show(&self, what: &str) -> Outcome {
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        let text = match what {
            "global" => mdm.render_global_graph(),
            "source" => mdm.render_source_graph(),
            "mappings" => mdm.render_mappings(),
            "trig" => mdm.render_trig(),
            other => format!("unknown view '{other}' (global | source | mappings | trig)"),
        };
        Outcome::Text(text)
    }

    fn sources(&self) -> Outcome {
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        let mut out = String::new();
        for source in mdm.ontology().data_sources() {
            let wrappers = mdm.ontology().wrappers_of(&source);
            writeln!(out, "{} ({} wrappers)", source.local_name(), wrappers.len()).unwrap();
        }
        Outcome::Text(out)
    }

    fn wrappers(&self) -> Outcome {
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        let mut out = String::new();
        for wrapper in mdm.ontology().wrappers() {
            let attributes: Vec<String> = mdm
                .ontology()
                .attributes_of(&wrapper)
                .iter()
                .map(|a| mdm_core::BdiOntology::attribute_name(a).to_string())
                .collect();
            let version = mdm
                .ontology()
                .wrapper_version(&wrapper)
                .map(|v| format!(" v{v}"))
                .unwrap_or_default();
            writeln!(
                out,
                "{}{version}({})",
                wrapper.local_name(),
                attributes.join(", ")
            )
            .unwrap();
        }
        Outcome::Text(out)
    }

    fn run_walk(&mut self, kind: PendingKind, text: &str) -> Outcome {
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        let walk = match walk_dsl::parse_walk(text, mdm.ontology()) {
            Ok(w) => w,
            Err(e) => return Outcome::Text(format!("walk error: {e}")),
        };
        match kind {
            PendingKind::Explain => match mdm.rewrite(&walk) {
                Ok(rewriting) => {
                    let mut out = rewriting.explain();
                    // The physical side of the story: the optimized plan
                    // tree with estimated vs. actual per-operator rows.
                    match mdm.explain_plan(&walk) {
                        Ok(tree) => {
                            let _ = write!(
                                out,
                                "\n-- optimized plan ({} mode, est\u{2248}estimated act=actual rows) --\n{tree}",
                                mdm.optimize_mode()
                            );
                        }
                        Err(e) => {
                            let _ = write!(out, "\n(plan annotation unavailable: {e})");
                        }
                    }
                    Outcome::Text(out)
                }
                Err(e) => Outcome::Text(format!("rewrite error: {e}")),
            },
            PendingKind::Rewrite => match mdm.rewrite(&walk) {
                Ok(rewriting) => Outcome::Text(format!(
                    "-- SPARQL --\n{}\n\n-- algebra ({} branches) --\n{}",
                    rewriting.sparql,
                    rewriting.branch_count(),
                    rewriting.algebra()
                )),
                Err(e) => Outcome::Text(format!("rewrite error: {e}")),
            },
            PendingKind::Trace => match mdm.query_with_provenance(&walk) {
                Ok(answer) => Outcome::Text(format!(
                    "{}({} rows; provenance column names the producing branch)",
                    answer.render(),
                    answer.table.len()
                )),
                Err(e) => Outcome::Text(format!("query error: {e}")),
            },
            PendingKind::Query => match mdm.query_degraded(&walk, self.deadline()) {
                Ok(answer) => Outcome::Text(format!(
                    "-- algebra ({} branches) --\n{}\n\n{}({} rows; {})",
                    answer.rewriting.branch_count(),
                    answer.rewriting.algebra(),
                    answer.render(),
                    answer.table.len(),
                    answer.completeness.summary(),
                )),
                Err(e) => Outcome::Text(format!("query error: {e}")),
            },
        }
    }

    /// `faults [<seed> [rate] | off]` — arms, disarms or reports the
    /// deterministic fault-injection plan on the loaded system.
    fn faults(&mut self, argument: &str) -> Outcome {
        let mut parts = argument.split_whitespace();
        match parts.next() {
            None | Some("") => {
                let mdm = match self.require_mdm() {
                    Ok(m) => m,
                    Err(e) => return Outcome::Text(e),
                };
                let mut out = String::new();
                match self.fault_seed {
                    Some(seed) => writeln!(
                        out,
                        "fault plan armed: seed {seed}, transient rate {}",
                        self.fault_rate
                    )
                    .unwrap(),
                    None => writeln!(out, "fault injection off").unwrap(),
                }
                match self.deadline_ms {
                    Some(ms) => writeln!(out, "query deadline: {ms} ms").unwrap(),
                    None => writeln!(out, "query deadline: unbounded").unwrap(),
                }
                let breakers = mdm.breaker_snapshots();
                if breakers.is_empty() {
                    writeln!(out, "circuit breakers: none tracked yet").unwrap();
                } else {
                    for b in breakers {
                        writeln!(
                            out,
                            "breaker {}: {} ({} failures / {} successes, opened {}x)",
                            b.relation,
                            b.state,
                            b.failures_total,
                            b.successes_total,
                            b.opened_total
                        )
                        .unwrap();
                    }
                }
                Outcome::Text(out)
            }
            Some("off") => {
                self.fault_seed = None;
                self.apply_fault_plan();
                Outcome::Text("fault injection disarmed".to_string())
            }
            Some(token) => {
                let Ok(seed) = token.parse::<u64>() else {
                    return Outcome::Text(
                        "usage: faults [<seed> [rate] | off]   e.g. faults 42 0.3".to_string(),
                    );
                };
                if let Some(rate) = parts.next() {
                    match rate.parse::<f64>() {
                        Ok(rate) if (0.0..=1.0).contains(&rate) => self.fault_rate = rate,
                        _ => {
                            return Outcome::Text(
                                "rate must be a number between 0.0 and 1.0".to_string(),
                            )
                        }
                    }
                }
                self.fault_seed = Some(seed);
                self.apply_fault_plan();
                Outcome::Text(format!(
                    "fault plan armed: seed {seed}, transient rate {} (applies to loaded and future systems)",
                    self.fault_rate
                ))
            }
        }
    }

    /// `stats [refresh]` — reports the cardinality-statistics catalog, or
    /// (with `refresh`) bumps the stats epoch so relations re-profile and
    /// cached plans re-optimize. Never a metadata mutation: the metadata
    /// epoch is untouched.
    fn stats(&mut self, argument: &str) -> Outcome {
        if self.server.is_some() {
            return Outcome::Text(
                "the system is behind the server — use \
                 'call POST /steward/stats/refresh' or 'call GET /metrics'"
                    .to_string(),
            );
        }
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        match argument {
            "refresh" => {
                let stats_epoch = mdm.refresh_stats();
                Outcome::Text(format!(
                    "stats epoch bumped to {stats_epoch} — relations re-profile on next scan, \
                     cached plans re-optimize on next use (metadata epoch {} untouched)",
                    mdm.epoch()
                ))
            }
            "" => {
                let snapshot = mdm.stats_snapshot();
                let mut out = format!(
                    "optimizer mode: {}\nstats epoch: {} ({} refreshes, {} observations)\n",
                    mdm.optimize_mode(),
                    snapshot.epoch,
                    snapshot.refreshes,
                    snapshot.observations
                );
                if snapshot.relations.is_empty() {
                    out.push_str("no relations profiled yet — run a query first\n");
                } else {
                    for (relation, rows) in &snapshot.relations {
                        writeln!(out, "  {relation}: {rows} rows").unwrap();
                    }
                }
                Outcome::Text(out)
            }
            other => Outcome::Text(format!(
                "unknown stats action '{other}' (usage: stats [refresh])"
            )),
        }
    }

    /// `serve [addr] [--replica-of primary]` — moves the loaded system
    /// behind an HTTP server, or (with `--replica-of`) starts a read
    /// replica following a primary instead. The REPL stays usable through
    /// `call`, and `stop` brings the (possibly stewarded-over-HTTP) system
    /// back into the session.
    fn serve(&mut self, argument: &str) -> Outcome {
        if self.server.is_some() || self.replica.is_some() {
            return Outcome::Text("a server is already running — 'stop' it first".to_string());
        }
        let mut addr = "";
        let mut primary = None;
        let mut tokens = argument.split_whitespace();
        while let Some(token) = tokens.next() {
            if token == "--replica-of" {
                match tokens.next() {
                    Some(p) => primary = Some(p),
                    None => {
                        return Outcome::Text(
                            "usage: serve [addr] --replica-of host:port".to_string(),
                        )
                    }
                }
            } else {
                addr = token;
            }
        }
        if let Some(primary) = primary {
            return self.serve_replica(addr, primary);
        }
        if self.mdm.is_none() {
            return Outcome::Text("no system loaded — run 'setup football' first".to_string());
        }
        let addr = if addr.is_empty() { "127.0.0.1:0" } else { addr };
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => return Outcome::Text(format!("cannot bind {addr}: {e}")),
        };
        let mdm = self.mdm.take().expect("checked above");
        let config = mdm_server::ServerConfig {
            request_deadline: self.deadline_ms.map(Duration::from_millis),
            optimize: self.optimize,
            ..mdm_server::ServerConfig::default()
        };
        // Hand the already-open journal over so `/admin/compact`, the
        // journal metrics and the drain-time fsync work behind the server.
        match mdm_server::serve_prepared(listener, &config, mdm, self.store.clone()) {
            Ok(handle) => {
                let text = format!(
                    "serving on http://{}\n\
                     the metadata moved behind the server: use 'call' here or curl from outside\n\
                     e.g.  call GET /metrics\n\
                     'stop' shuts the server down and brings the system back",
                    handle.addr()
                );
                self.server = Some(handle);
                Outcome::Text(text)
            }
            Err(e) => Outcome::Text(format!("failed to start server: {e}")),
        }
    }

    /// `serve [addr] --replica-of primary` — starts a WAL-shipping read
    /// replica of `primary`. It needs no loaded system: the state arrives
    /// over the replication stream. A session `--data-dir` moves over to
    /// the node: an old primary's journal there seeds stale reads until
    /// the rejoin handshake, and a later 'promote' opens its next
    /// generation in the same place.
    fn serve_replica(&mut self, addr: &str, primary: &str) -> Outcome {
        let mut config = mdm_replica::ReplicaConfig::new(primary);
        if !addr.is_empty() {
            config.server.addr = addr.to_string();
        }
        config.server.request_deadline = self.deadline_ms.map(Duration::from_millis);
        config.server.fsync = self.fsync;
        if let Some(dir) = &self.data_dir {
            // Release the session's handle on the journal first — the
            // replica node recovers and (on promotion) writes it itself.
            if let Some(mdm) = self.mdm.as_mut() {
                mdm.set_journal(None);
            }
            self.store = None;
            config.data_dir = Some(dir.clone());
        }
        match mdm_replica::ReplicaNode::start(config) {
            Ok(handle) => {
                let text = format!(
                    "replica of {primary} serving on http://{}\n\
                     analyst routes answer at the replay epoch; steward mutations get 421\n\
                     e.g.  call GET /epoch   (watch replay_lag)\n\
                     'stop' shuts the replica down",
                    handle.addr()
                );
                self.replica = Some(handle);
                Outcome::Text(text)
            }
            Err(e) => Outcome::Text(format!("failed to start replica: {e}")),
        }
    }

    /// `call [--no-redirect] METHOD /path [json-body]` — issues one HTTP
    /// request against the server started with `serve` and pretty-prints
    /// the JSON answer. A `421 Misdirected Request` (steward mutation sent
    /// to a replica) is followed once to the primary named in its
    /// `Location` header; `--no-redirect` shows the 421 verbatim instead.
    fn call(&mut self, argument: &str) -> Outcome {
        let addr = match (&self.server, &self.replica) {
            (Some(server), _) => server.addr(),
            (None, Some(replica)) => replica.addr(),
            (None, None) => {
                return Outcome::Text("no server running — start one with 'serve'".to_string())
            }
        };
        let mut argument = argument.trim();
        let mut follow = true;
        if let Some(rest) = argument.strip_prefix("--no-redirect") {
            follow = false;
            argument = rest.trim_start();
        }
        let mut parts = argument.splitn(3, ' ');
        let (method, path) =
            match (parts.next(), parts.next()) {
                (Some(m), Some(p)) if p.starts_with('/') => (m.to_ascii_uppercase(), p),
                _ => return Outcome::Text(
                    "usage: call [--no-redirect] METHOD /path [json-body]   e.g. call GET /healthz"
                        .to_string(),
                ),
            };
        let body = parts.next().map(str::trim).filter(|b| !b.is_empty());
        let response = match mdm_server::client::Connection::open(addr)
            .and_then(|mut c| c.send(&method, path, body))
        {
            Ok(response) => response,
            Err(e) => return Outcome::Text(format!("request failed: {e}")),
        };
        let mut redirected = None;
        let response = if follow && response.status == 421 {
            match response.header("location").and_then(parse_http_location) {
                Some((target, target_path)) => {
                    match mdm_server::client::Connection::open(target.as_str())
                        .and_then(|mut c| c.send(&method, &target_path, body))
                    {
                        Ok(followed) => {
                            redirected = Some(target);
                            followed
                        }
                        Err(e) => {
                            return Outcome::Text(format!(
                                "redirect to primary at {target} failed: {e}"
                            ))
                        }
                    }
                }
                None => response,
            }
        } else {
            response
        };
        let rendered = match mdm_dataform::json::parse(&response.body) {
            Ok(value) => mdm_dataform::json::to_string_pretty(&value),
            Err(_) => response.body,
        };
        let preface = match redirected {
            Some(target) => format!("-> redirected to primary at {target}\n"),
            None => String::new(),
        };
        Outcome::Text(format!("{preface}HTTP {}\n{rendered}", response.status))
    }

    /// `promote` — asks the running replica to become the primary of a new
    /// fencing term (drives `POST /admin/promote`).
    fn promote(&mut self) -> Outcome {
        if self.replica.is_none() {
            return Outcome::Text(
                "no replica running — 'promote' drives POST /admin/promote on a node \
                 started with 'serve --replica-of'"
                    .to_string(),
            );
        }
        self.call("POST /admin/promote")
    }

    /// `stop` — shuts the server down and restores the system into the
    /// session, including every change stewards made over HTTP.
    fn stop_server(&mut self) -> Outcome {
        if let Some(replica) = self.replica.take() {
            replica.shutdown();
            return Outcome::Text("replica stopped".to_string());
        }
        match self.server.take() {
            Some(handle) => match handle.into_mdm() {
                Some(mdm) => {
                    let epoch = mdm.epoch();
                    self.mdm = Some(mdm);
                    Outcome::Text(format!(
                        "server stopped — metadata back in the session (epoch {epoch})"
                    ))
                }
                None => Outcome::Text(
                    "server stopped, but the metadata could not be recovered".to_string(),
                ),
            },
            None => Outcome::Text("no server running".to_string()),
        }
    }

    fn status(&self) -> Outcome {
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        let report = mdm_core::stats::report(mdm.ontology());
        Outcome::Text(report.render(mdm.ontology()))
    }

    /// `changes [--since N] [--follow]` — the evolution changefeed: every
    /// committed steward mutation after epoch `N` with its dependency
    /// footprint. With a server (or replica) running the records come from
    /// `GET /changes` (long-polling under `--follow`); otherwise from the
    /// session's in-memory feed.
    fn changes(&mut self, argument: &str) -> Outcome {
        const USAGE: &str = "usage: changes [--since N] [--follow]";
        let mut since = 0u64;
        let mut follow = false;
        let mut args = argument.split_whitespace();
        while let Some(arg) = args.next() {
            match arg {
                "--follow" => follow = true,
                "--since" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => since = n,
                    None => return Outcome::Text(USAGE.to_string()),
                },
                _ => return Outcome::Text(USAGE.to_string()),
            }
        }
        if self.server.is_some() || self.replica.is_some() {
            self.changes_remote(since, follow)
        } else {
            self.changes_local(since)
        }
    }

    fn changes_local(&self, since: u64) -> Outcome {
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        let (records, truncated) = mdm.changes_since(since, 1024);
        let mut out = String::new();
        if truncated {
            writeln!(
                out,
                "(cursor {since} predates the retained horizon — older records were dropped)"
            )
            .unwrap();
        }
        for record in &records {
            let tag = if record.extension {
                "  [extendable]"
            } else {
                ""
            };
            writeln!(
                out,
                "epoch {:>4}  {:<18} {}{tag}",
                record.epoch, record.kind, record.summary
            )
            .unwrap();
        }
        writeln!(
            out,
            "{} change(s) after epoch {since}; metadata epoch {}",
            records.len(),
            mdm.epoch()
        )
        .unwrap();
        Outcome::Text(out.trim_end().to_string())
    }

    fn changes_remote(&self, mut since: u64, follow: bool) -> Outcome {
        let addr = match (&self.server, &self.replica) {
            (Some(server), _) => server.addr(),
            (None, Some(replica)) => replica.addr(),
            (None, None) => unreachable!("checked by changes()"),
        };
        let mut out = String::new();
        let mut total = 0usize;
        // A REPL command cannot block forever: --follow long-polls until a
        // few consecutive polls come back empty, then reports and returns.
        let mut idle = 0;
        loop {
            let wait_ms = if follow { 2_000 } else { 0 };
            let path = format!("/changes?since={since}&wait_ms={wait_ms}");
            let response = match mdm_server::client::Connection::open(addr)
                .and_then(|mut c| c.send("GET", &path, None))
            {
                Ok(r) => r,
                Err(e) => return Outcome::Text(format!("request failed: {e}")),
            };
            if response.status != 200 {
                return Outcome::Text(format!(
                    "server answered {}: {}",
                    response.status, response.body
                ));
            }
            let value = match mdm_dataform::json::parse(&response.body) {
                Ok(v) => v,
                Err(e) => return Outcome::Text(format!("unparseable /changes body: {e}")),
            };
            let as_u64 = |v: &mdm_dataform::Value, name: &str| {
                v.get(name)
                    .and_then(mdm_dataform::Value::as_number)
                    .and_then(|n| n.as_i64())
                    .map(|n| n as u64)
            };
            if value
                .get("truncated")
                .and_then(mdm_dataform::Value::as_bool)
                .unwrap_or(false)
            {
                writeln!(
                    out,
                    "(cursor {since} predates the retained horizon — older records were dropped)"
                )
                .unwrap();
            }
            let batch = value
                .get("changes")
                .and_then(mdm_dataform::Value::as_array)
                .map(<[mdm_dataform::Value]>::to_vec)
                .unwrap_or_default();
            for change in &batch {
                let epoch = as_u64(change, "epoch").unwrap_or_default();
                let kind = change
                    .get("kind")
                    .and_then(mdm_dataform::Value::as_str)
                    .unwrap_or("?");
                let summary = change
                    .get("summary")
                    .and_then(mdm_dataform::Value::as_str)
                    .unwrap_or("");
                let tag = match change
                    .get("extension")
                    .and_then(mdm_dataform::Value::as_bool)
                {
                    Some(true) => "  [extendable]",
                    _ => "",
                };
                writeln!(out, "epoch {epoch:>4}  {kind:<18} {summary}{tag}").unwrap();
            }
            total += batch.len();
            since = as_u64(&value, "next").unwrap_or(since);
            if !follow {
                let epoch = as_u64(&value, "epoch").unwrap_or_default();
                writeln!(out, "{total} change(s); server epoch {epoch}").unwrap();
                break;
            }
            if batch.is_empty() {
                idle += 1;
                if idle >= 3 {
                    writeln!(
                        out,
                        "(follow idle — caught up at epoch {since}; re-run 'changes --since {since} --follow' to resume)"
                    )
                    .unwrap();
                    break;
                }
            } else {
                idle = 0;
            }
        }
        Outcome::Text(out.trim_end().to_string())
    }

    fn suggest(&self, wrapper: &str) -> Outcome {
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        if wrapper.is_empty() {
            return Outcome::Text("usage: suggest <wrapper-name>".into());
        }
        match mdm_core::assist::suggest_mapping(mdm.ontology(), wrapper) {
            Ok(draft) => {
                let mut out = String::new();
                writeln!(out, "mapping suggestions for '{wrapper}':").unwrap();
                for s in &draft.accepted {
                    writeln!(
                        out,
                        "    {} → {}   [{:?}] {}",
                        s.attribute,
                        mdm.ontology().compact(&s.feature),
                        s.confidence,
                        s.rationale
                    )
                    .unwrap();
                }
                for a in &draft.unmatched {
                    writeln!(out, "    {a} → (no candidate)").unwrap();
                }
                for gap in &draft.identifier_gaps {
                    writeln!(
                        out,
                        "    WARNING: identifier of {} is not mapped",
                        mdm.ontology().compact(gap)
                    )
                    .unwrap();
                }
                if draft.is_applicable() {
                    writeln!(out, "draft is applicable (review, then apply via the API)").unwrap();
                }
                Outcome::Text(out)
            }
            Err(e) => Outcome::Text(format!("suggestion failed: {e}")),
        }
    }

    fn snapshot(&self, path: &str) -> Outcome {
        let mdm = match self.require_mdm() {
            Ok(m) => m,
            Err(e) => return Outcome::Text(e),
        };
        if path.is_empty() {
            return Outcome::Text(mdm.snapshot());
        }
        match std::fs::write(path, mdm.snapshot()) {
            Ok(()) => Outcome::Text(format!("metadata snapshot written to {path}")),
            Err(e) => Outcome::Text(format!("cannot write {path}: {e}")),
        }
    }

    fn restore(&mut self, path: &str) -> Outcome {
        if path.is_empty() {
            return Outcome::Text("usage: restore <file>".into());
        }
        let document = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => return Outcome::Text(format!("cannot read {path}: {e}")),
        };
        match Mdm::restore_metadata(&document) {
            Ok(mdm) => {
                self.mdm = Some(mdm);
                self.ecosystem = None;
                self.apply_fault_plan();
                self.apply_threads();
                let mut text = format!(
                    "metadata restored from {path} (wrappers must be re-registered to execute queries)"
                );
                if let Some(warning) = self.rebind_store() {
                    text.push('\n');
                    text.push_str(&warning);
                }
                Outcome::Text(text)
            }
            Err(e) => Outcome::Text(format!("restore failed: {e}")),
        }
    }

    /// `compact` — folds the journal into a fresh snapshot generation.
    fn compact(&mut self) -> Outcome {
        let Some(store) = &self.store else {
            return Outcome::Text(
                "no durable store open — start the CLI with --data-dir <dir>".to_string(),
            );
        };
        if self.server.is_some() {
            return Outcome::Text(
                "the system is behind the server — use 'call POST /admin/compact'".to_string(),
            );
        }
        let Some(mdm) = self.mdm.as_ref() else {
            return Outcome::Text("no system loaded — run 'setup football' first".to_string());
        };
        match store.compact(mdm) {
            Ok(generation) => {
                let stats = store.stats();
                Outcome::Text(format!(
                    "journal folded into generation {generation} (epoch {}, {} bytes of WAL)",
                    mdm.epoch(),
                    stats.wal_bytes
                ))
            }
            Err(e) => Outcome::Text(format!("compaction failed: {e}")),
        }
    }
}

/// Splits an `http://host:port/path` Location value into the socket
/// address and the path (defaulting to `/`).
fn parse_http_location(value: &str) -> Option<(String, String)> {
    let rest = value.strip_prefix("http://")?;
    match rest.split_once('/') {
        Some((addr, path)) => Some((addr.to_string(), format!("/{path}"))),
        None => Some((rest.to_string(), "/".to_string())),
    }
}

const HELP: &str = "\
MDM — Metadata Management System (EDBT 2018 reproduction)

  setup football     load the motivational use case (4 APIs, wrappers, mappings)
  evolve             register the breaking Players API v2 release (the §3 scenario)
  show global        the global graph (Figure 5)
  show source        the source graph (Figure 6)
  show mappings      the LAV mappings (Figure 7)
  show trig          the whole metadata state as TriG
  sources            list registered data sources
  wrappers           list registered wrappers with signatures
  rewrite            enter a walk, finish with '.', show SPARQL + algebra (Figure 8)
  explain            enter a walk, finish with '.', narrate the rewriting
                     derivation and print the optimized plan tree with
                     estimated vs. actual per-operator cardinalities
  query              enter a walk, finish with '.', execute it (Table 1 style)
  trace              like query, plus a provenance column (which branch/version)
  suggest <wrapper>  semi-automatic mapping suggestions for an unmapped wrapper
  changes [--since N] [--follow]
                     the evolution changefeed: every committed steward mutation
                     after epoch N with its dependency footprint; --follow
                     long-polls the running server until the feed goes idle
  stats [refresh]    the cardinality-statistics catalog behind the cost-based
                     optimizer; 'stats refresh' bumps the stats epoch (cached
                     plans re-optimize; the metadata epoch is untouched)
  faults [<seed> [rate] | off]  arm/disarm deterministic fault injection; bare
                     'faults' reports the plan, deadline and breaker states
  serve [addr]       expose the system over HTTP (default 127.0.0.1:0; see README)
  serve [addr] --replica-of host:port
                     start a read replica following a primary's WAL stream
                     (with --data-dir: recovers an old primary's journal and
                     rejoins the new primary, discarding any divergent tail)
  call [--no-redirect] M /path [json]
                     issue one HTTP request against the running server; a 421
                     from a replica is followed once to the primary unless
                     --no-redirect is given
  promote            make the running replica the primary of a new fencing
                     term (POST /admin/promote)
  stop               shut the server (or replica) down, bring the metadata back
  status             governance dashboard (coverage, versions, unmapped wrappers)
  snapshot [file]    dump the metadata snapshot (to stdout or a file)
  restore <file>     load a metadata snapshot
  compact            fold the durable journal into a fresh snapshot generation
                     (needs --data-dir; behind 'serve' use POST /admin/compact)
  quit               leave

Walk notation (one line per element, '#' comments):
  ex:Player { ex:playerName, ex:height }
  sc:SportsTeam { ex:teamName }
  ex:Player -ex:hasTeam-> sc:SportsTeam
";

#[cfg(test)]
mod tests {
    use super::*;

    fn text(outcome: Outcome) -> String {
        match outcome {
            Outcome::Text(t) => t,
            Outcome::Quit => "<quit>".to_string(),
            Outcome::NeedMore => "<more>".to_string(),
        }
    }

    #[test]
    fn help_and_unknown_commands() {
        let mut session = Session::new();
        assert!(text(session.interpret("help")).contains("setup football"));
        assert!(text(session.interpret("frobnicate")).contains("unknown command"));
        assert!(matches!(session.interpret("quit"), Outcome::Quit));
    }

    #[test]
    fn commands_require_a_loaded_system() {
        let mut session = Session::new();
        assert!(text(session.interpret("show global")).contains("no system loaded"));
        assert!(text(session.interpret("sources")).contains("no system loaded"));
    }

    #[test]
    fn full_session_flow() {
        let mut session = Session::new();
        assert!(text(session.interpret("setup football")).contains("loaded"));
        assert!(text(session.interpret("show global")).contains("concept ex:Player"));
        assert!(text(session.interpret("sources")).contains("PlayersAPI"));
        assert!(text(session.interpret("wrappers")).contains("w1 v1(id, pName"));

        // Pose the Figure 8 walk interactively.
        assert!(matches!(session.interpret("query"), Outcome::NeedMore));
        assert!(matches!(
            session.interpret("sc:SportsTeam { ex:teamName }"),
            Outcome::NeedMore
        ));
        assert!(matches!(
            session.interpret("ex:Player { ex:playerName }"),
            Outcome::NeedMore
        ));
        assert!(matches!(
            session.interpret("ex:Player -ex:hasTeam-> sc:SportsTeam"),
            Outcome::NeedMore
        ));
        let result = text(session.interpret("."));
        assert!(result.contains("Lionel Messi"), "{result}");
        assert!(result.contains("⋈"), "{result}");

        // Evolution scenario through the CLI.
        assert!(text(session.interpret("evolve")).contains("w3"));
        session.interpret("query");
        session.interpret("sc:SportsTeam { ex:teamName }");
        session.interpret("ex:Player { ex:playerName }");
        session.interpret("ex:Player -ex:hasTeam-> sc:SportsTeam");
        let evolved = text(session.interpret("."));
        assert!(evolved.contains("Zlatan Ibrahimovic"), "{evolved}");
    }

    #[test]
    fn explain_and_suggest_commands() {
        let mut session = Session::new();
        session.interpret("setup football");
        session.interpret("explain");
        session.interpret("ex:Player { ex:playerName }");
        let explanation = text(session.interpret("."));
        assert!(explanation.contains("phase (a)"), "{explanation}");
        assert!(explanation.contains("scans w1"), "{explanation}");
        // suggest on an unknown wrapper reports the error inline.
        let missing = text(session.interpret("suggest ghost"));
        assert!(missing.contains("not registered"), "{missing}");
        assert!(text(session.interpret("suggest")).contains("usage"));
        // status shows the dashboard.
        let status = text(session.interpret("status"));
        assert!(status.contains("ECOSYSTEM"), "{status}");
        assert!(status.contains("PlayersAPI"), "{status}");
    }

    #[test]
    fn stats_command_reports_and_refreshes_the_catalog() {
        let mut session = Session::new();
        assert!(text(session.interpret("stats")).contains("no system loaded"));
        session.interpret("setup football");
        // Warm the catalog with one executed query so scans are observed.
        session.interpret("query");
        session.interpret("ex:Player { ex:playerName }");
        session.interpret(".");
        let report = text(session.interpret("stats"));
        assert!(report.contains("optimizer mode: cost"), "{report}");
        assert!(report.contains("stats epoch"), "{report}");
        let refreshed = text(session.interpret("stats refresh"));
        assert!(refreshed.contains("stats epoch"), "{refreshed}");
        assert!(refreshed.contains("untouched"), "{refreshed}");
        assert!(text(session.interpret("stats bogus")).contains("usage"));
    }

    #[test]
    fn explain_appends_the_optimized_plan_tree() {
        let mut session = Session::new();
        session.interpret("setup football");
        session.interpret("explain");
        session.interpret("ex:Player { ex:playerName }");
        let explanation = text(session.interpret("."));
        assert!(explanation.contains("optimized plan"), "{explanation}");
        assert!(explanation.contains("est≈"), "{explanation}");
        assert!(explanation.contains("act="), "{explanation}");
    }

    #[test]
    fn rewrite_shows_artifacts_without_executing() {
        let mut session = Session::new();
        session.interpret("setup football");
        session.interpret("rewrite");
        session.interpret("ex:Player { ex:playerName }");
        let shown = text(session.interpret("."));
        assert!(shown.contains("SELECT"));
        assert!(shown.contains("π["));
    }

    #[test]
    fn walk_errors_are_reported_inline() {
        let mut session = Session::new();
        session.interpret("setup football");
        session.interpret("query");
        session.interpret("nope:Concept { }");
        let err = text(session.interpret("."));
        assert!(err.contains("walk error"), "{err}");
    }

    #[test]
    fn serve_replica_of_starts_and_stops() {
        let mut session = Session::new();
        // No loaded system needed: replicas bootstrap over the wire. The
        // primary here refuses connections, so the replica just reports
        // degraded until stopped.
        let started = text(session.interpret("serve 127.0.0.1:0 --replica-of 127.0.0.1:1"));
        assert!(started.contains("replica of 127.0.0.1:1"), "{started}");
        let health = text(session.interpret("call GET /healthz"));
        assert!(health.contains("degraded"), "{health}");
        assert!(health.contains("bootstrapping"), "{health}");
        let stopped = text(session.interpret("stop"));
        assert!(stopped.contains("replica stopped"), "{stopped}");
        assert!(text(session.interpret("serve --replica-of")).contains("usage"));
    }

    #[test]
    fn call_follows_a_replica_redirect_to_the_primary() {
        let mut primary = Session::new();
        primary.interpret("setup football");
        let started = text(primary.interpret("serve 127.0.0.1:0"));
        let addr = started
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap()
            .to_string();
        let mut replica = Session::new();
        let started = text(replica.interpret(&format!("serve 127.0.0.1:0 --replica-of {addr}")));
        assert!(started.contains("replica of"), "{started}");
        // A steward mutation on the replica answers 421; by default the
        // CLI follows the Location header to the primary once.
        let kept =
            text(replica.interpret(
                r#"call --no-redirect POST /steward/concepts {"concept": "ex:Referee"}"#,
            ));
        assert!(kept.contains("HTTP 421"), "{kept}");
        let followed =
            text(replica.interpret(r#"call POST /steward/concepts {"concept": "ex:Referee"}"#));
        assert!(followed.contains("redirected to primary"), "{followed}");
        assert!(followed.contains("HTTP 200"), "{followed}");
        replica.interpret("stop");
        primary.interpret("stop");
        // Without a replica, 'promote' explains itself.
        assert!(text(Session::new().interpret("promote")).contains("no replica running"));
    }

    #[test]
    fn serve_call_stop_round_trip() {
        let mut session = Session::new();
        session.interpret("setup football");
        let started = text(session.interpret("serve 127.0.0.1:0"));
        assert!(
            started.contains("serving on http://127.0.0.1:"),
            "{started}"
        );
        // The metadata lives behind the server now.
        assert!(text(session.interpret("status")).contains("no system loaded"));
        let health = text(session.interpret("call GET /healthz"));
        assert!(health.contains("HTTP 200"), "{health}");
        assert!(health.contains("\"ok\""), "{health}");
        let answer = text(
            session
                .interpret(r#"call POST /analyst/query {"walk": "ex:Player { ex:playerName }"}"#),
        );
        assert!(answer.contains("Lionel Messi"), "{answer}");
        // Steward over HTTP, then verify the change survives `stop`.
        let defined =
            text(session.interpret(r#"call POST /steward/concepts {"concept": "ex:Referee"}"#));
        assert!(defined.contains("HTTP 200"), "{defined}");
        let stopped = text(session.interpret("stop"));
        assert!(
            stopped.contains("metadata back in the session"),
            "{stopped}"
        );
        assert!(text(session.interpret("show global")).contains("ex:Referee"));
    }

    #[test]
    fn serve_requires_a_loaded_system() {
        let mut session = Session::new();
        assert!(text(session.interpret("serve")).contains("no system loaded"));
        assert!(text(session.interpret("call GET /healthz")).contains("no server running"));
        assert!(text(session.interpret("stop")).contains("no server running"));
    }

    #[test]
    fn data_dir_survives_session_restart() {
        let dir = std::env::temp_dir().join(format!(
            "mdm-cli-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut session = Session::new();
        session.open_data_dir(&dir).unwrap();
        session.interpret("setup football");
        let compacted = text(session.interpret("compact"));
        assert!(compacted.contains("generation"), "{compacted}");
        let epoch = session.mdm.as_ref().unwrap().epoch();
        let snapshot = session.mdm.as_ref().unwrap().snapshot();
        drop(session);

        // A fresh session over the same dir recovers the state and epoch.
        let mut revived = Session::new();
        let report = revived.open_data_dir(&dir).unwrap();
        assert!(report.contains("recovered"), "{report}");
        assert_eq!(revived.mdm.as_ref().unwrap().epoch(), epoch);
        assert_eq!(revived.mdm.as_ref().unwrap().snapshot(), snapshot);
        assert!(text(revived.interpret("show global")).contains("concept ex:Player"));
        // Without --data-dir the compact command explains itself.
        let mut plain = Session::new();
        assert!(text(plain.interpret("compact")).contains("--data-dir"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_restore_via_files() {
        let dir = std::env::temp_dir().join("mdm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.trig");
        let path_str = path.to_str().unwrap().to_string();
        let mut session = Session::new();
        session.interpret("setup football");
        assert!(text(session.interpret(&format!("snapshot {path_str}"))).contains("written"));
        let mut fresh = Session::new();
        assert!(text(fresh.interpret(&format!("restore {path_str}"))).contains("restored"));
        assert!(text(fresh.interpret("show global")).contains("concept ex:Player"));
    }
}

//! The `mdm` REPL: a thin stdin loop around [`mdm_cli::Session`].
//!
//! Run with `cargo run -p mdm-cli` and type `help`. A script can be piped:
//!
//! ```sh
//! printf 'setup football\nshow global\nquit\n' | cargo run -p mdm-cli
//! ```
//!
//! Flags:
//!
//! * `--fault-seed <n>` — arm deterministic fault injection (seed `n`) on
//!   every system the session loads (same as the `faults <n>` command).
//! * `--deadline-ms <n>` — bound every query (REPL and served) by `n` ms.
//! * `--threads <n>` — execution-pool size for query fan-out (`1` forces
//!   the sequential path; default sizes from `available_parallelism`).
//! * `--batch-size <n>` — operator batch width while draining queries
//!   (`0` restores the default; the executor adapts down for small inputs).
//! * `--layout row|columnar` — physical data plane: fixed-width term
//!   columns with vectorized kernels (default) or the row-at-a-time path.
//! * `--optimize off|heuristic|cost` — plan optimization: the stats-driven
//!   cost pipeline (default), the stats-free heuristic rewrites, or none.
//!   Results are byte-identical in all three modes.
//! * `--data-dir <dir>` — durable metadata: recover the journal in `dir`
//!   (or create one) and append every steward mutation to its WAL.
//! * `--fsync <policy>` — WAL durability for `--data-dir`: `always`
//!   (default), `never`, or `interval[:ms]`.

use std::io::{BufRead, Write};

use mdm_cli::{Outcome, Session};

fn parse_flags(session: &mut Session) -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut data_dir: Option<std::path::PathBuf> = None;
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--fault-seed" => {
                let raw = value(&mut args)?;
                let seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--fault-seed: '{raw}' is not an unsigned integer"))?;
                session.set_fault_seed(Some(seed));
            }
            "--deadline-ms" => {
                let raw = value(&mut args)?;
                let ms = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--deadline-ms: '{raw}' is not an unsigned integer"))?;
                session.set_deadline_ms(Some(ms));
            }
            "--threads" => {
                let raw = value(&mut args)?;
                let threads = raw
                    .parse::<usize>()
                    .map_err(|_| format!("--threads: '{raw}' is not an unsigned integer"))?;
                session.set_threads(Some(threads));
            }
            "--batch-size" => {
                let raw = value(&mut args)?;
                let batch = raw
                    .parse::<usize>()
                    .map_err(|_| format!("--batch-size: '{raw}' is not an unsigned integer"))?;
                session.set_batch_size(Some(batch));
            }
            "--layout" => {
                let raw = value(&mut args)?;
                let layout =
                    mdm_relational::Layout::parse(&raw).map_err(|e| format!("--layout: {e}"))?;
                session.set_layout(Some(layout));
            }
            "--optimize" => {
                let raw = value(&mut args)?;
                let mode = mdm_relational::OptimizeMode::parse(&raw).ok_or_else(|| {
                    format!("--optimize: unknown mode '{raw}' (off | heuristic | cost)")
                })?;
                session.set_optimize(Some(mode));
            }
            "--data-dir" => {
                data_dir = Some(std::path::PathBuf::from(value(&mut args)?));
            }
            "--fsync" => {
                let raw = value(&mut args)?;
                let policy =
                    mdm_core::FsyncPolicy::parse(&raw).map_err(|e| format!("--fsync: {e}"))?;
                session.set_fsync(policy);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: mdm [--fault-seed <n>] [--deadline-ms <n>] [--threads <n>] \
                     [--batch-size <n>] [--layout row|columnar] \
                     [--optimize off|heuristic|cost] [--data-dir <dir>] \
                     [--fsync always|never|interval[:ms]]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    // Open the store last so --fsync applies regardless of flag order.
    if let Some(dir) = data_dir {
        let report = session.open_data_dir(&dir)?;
        println!("{report}");
    }
    Ok(())
}

fn main() {
    let stdin = std::io::stdin();
    let mut session = Session::new();
    if let Err(message) = parse_flags(&mut session) {
        eprintln!("{message}");
        std::process::exit(2);
    }
    println!("MDM — Metadata Management System (type 'help')");
    let mut prompt = "mdm> ";
    print!("{prompt}");
    let _ = std::io::stdout().flush();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match session.interpret(&line) {
            Outcome::Text(text) => {
                if !text.is_empty() {
                    println!("{text}");
                }
                prompt = "mdm> ";
            }
            Outcome::NeedMore => {
                prompt = "  ...> ";
            }
            Outcome::Quit => return,
        }
        print!("{prompt}");
        let _ = std::io::stdout().flush();
    }
}

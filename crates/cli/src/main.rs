//! The `mdm` REPL: a thin stdin loop around [`mdm_cli::Session`].
//!
//! Run with `cargo run -p mdm-cli` and type `help`. A script can be piped:
//!
//! ```sh
//! printf 'setup football\nshow global\nquit\n' | cargo run -p mdm-cli
//! ```

use std::io::{BufRead, Write};

use mdm_cli::{Outcome, Session};

fn main() {
    let stdin = std::io::stdin();
    let mut session = Session::new();
    println!("MDM — Metadata Management System (type 'help')");
    let mut prompt = "mdm> ";
    print!("{prompt}");
    let _ = std::io::stdout().flush();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match session.interpret(&line) {
            Outcome::Text(text) => {
                if !text.is_empty() {
                    println!("{text}");
                }
                prompt = "mdm> ";
            }
            Outcome::NeedMore => {
                prompt = "  ...> ";
            }
            Outcome::Quit => return,
        }
        print!("{prompt}");
        let _ = std::io::stdout().flush();
    }
}

//! Wrappers: signatures, payload bindings, and 1NF row production.

use std::fmt;
use std::sync::{Arc, OnceLock};

use mdm_dataform::flatten::{flatten_rows, FlattenOptions, Row};
use mdm_relational::{ErrorKind, ExecError, RelationProvider, Schema, Tuple, Value};

use crate::fault::{truncate_body, FaultPlan, InjectedFault};
use crate::rest::Release;

/// A wrapper signature `w(a1, …, an)` (paper §2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    name: String,
    attributes: Vec<String>,
}

impl Signature {
    /// Builds a signature; attribute names must be unique and non-empty.
    pub fn new(
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, WrapperError> {
        let name = name.into();
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        if name.is_empty() {
            return Err(WrapperError::Permanent(
                "wrapper name must not be empty".to_string(),
            ));
        }
        if attributes.is_empty() {
            return Err(WrapperError::Permanent(format!(
                "wrapper '{name}' must expose at least one attribute"
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for attribute in &attributes {
            if attribute.is_empty() {
                return Err(WrapperError::Permanent(format!(
                    "wrapper '{name}' has an empty attribute name"
                )));
            }
            if !seen.insert(attribute.as_str()) {
                return Err(WrapperError::Permanent(format!(
                    "wrapper '{name}' repeats attribute '{attribute}'"
                )));
            }
        }
        Ok(Signature { name, attributes })
    }

    /// The wrapper name `w`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute names `a1, …, an` in order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// The arity `n`.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

/// An error raised while building or executing a wrapper, classified by
/// what the caller should do about it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WrapperError {
    /// A retryable fault (network hiccup, HTTP 503); trying again may work.
    Transient(String),
    /// A non-retryable fault (bad configuration, HTTP 404, dead source).
    Permanent(String),
    /// The payload arrived but could not be parsed (truncated, invalid).
    Malformed(String),
    /// The fetch exceeded its time budget.
    Timeout(String),
}

impl WrapperError {
    /// The human-readable message, without the classification.
    pub fn message(&self) -> &str {
        match self {
            WrapperError::Transient(m)
            | WrapperError::Permanent(m)
            | WrapperError::Malformed(m)
            | WrapperError::Timeout(m) => m,
        }
    }

    /// The classification as a lowercase label.
    pub fn kind(&self) -> &'static str {
        match self {
            WrapperError::Transient(_) => "transient",
            WrapperError::Permanent(_) => "permanent",
            WrapperError::Malformed(_) => "malformed",
            WrapperError::Timeout(_) => "timeout",
        }
    }

    /// True when a retry can reasonably be expected to succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, WrapperError::Transient(_))
    }
}

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wrapper error ({}): {}", self.kind(), self.message())
    }
}

impl std::error::Error for WrapperError {}

impl From<WrapperError> for ExecError {
    fn from(error: WrapperError) -> Self {
        let kind = match &error {
            WrapperError::Transient(_) => ErrorKind::Transient,
            WrapperError::Permanent(_) => ErrorKind::Permanent,
            WrapperError::Malformed(_) => ErrorKind::Malformed,
            WrapperError::Timeout(_) => ErrorKind::Timeout,
        };
        ExecError::new(kind, error.message().to_string())
    }
}

/// A runnable wrapper: a signature, the release it reads, and the binding of
/// each signature attribute to a flattened payload column.
///
/// The binding layer is where the paper's renames happen: the Players
/// wrapper exposes `foot` for the payload's `preferred_foot` and `pName` for
/// `name` (Figure 6's `w1(id, pName, height, weight, score, foot, teamId)`).
#[derive(Debug)]
pub struct Wrapper {
    signature: Signature,
    /// The data source (endpoint) this wrapper reads, e.g. `PlayersAPI`.
    source: String,
    /// The schema version it consumes.
    version: u32,
    /// `attribute → flattened payload column` pairs, one per attribute.
    bindings: Vec<(String, String)>,
    release: Release,
    /// An attached fault schedule makes every [`Wrapper::rows`] call a
    /// fresh simulated fetch whose *fate* the plan injects; the payload
    /// itself stays memoised (a wrapper models one snapshot).
    faults: Option<Arc<FaultPlan>>,
    cache: OnceLock<Result<Vec<Tuple>, WrapperError>>,
    /// `rows()` invocations on this instance — the observable the scan
    /// cache's once-per-query guarantee is asserted against.
    fetches: std::sync::atomic::AtomicU64,
}

impl Clone for Wrapper {
    fn clone(&self) -> Self {
        Wrapper {
            signature: self.signature.clone(),
            source: self.source.clone(),
            version: self.version,
            bindings: self.bindings.clone(),
            release: self.release.clone(),
            faults: self.faults.clone(),
            cache: OnceLock::new(),
            fetches: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl Wrapper {
    /// Builds a wrapper over a release.
    ///
    /// `bindings` maps each signature attribute to the flattened payload
    /// column it reads. Every signature attribute must be bound exactly once;
    /// binding an attribute to a column the payload lacks is *allowed* (it
    /// produces NULLs) because that is precisely what happens when a source
    /// evolves under a wrapper — MDM's job is to detect and govern it.
    pub fn over_release(
        signature: Signature,
        source: impl Into<String>,
        release: Release,
        bindings: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
    ) -> Result<Self, WrapperError> {
        let bindings: Vec<(String, String)> = bindings
            .into_iter()
            .map(|(a, c)| (a.into(), c.into()))
            .collect();
        for attribute in signature.attributes() {
            let count = bindings.iter().filter(|(a, _)| a == attribute).count();
            if count != 1 {
                return Err(WrapperError::Permanent(format!(
                    "attribute '{attribute}' of {signature} must be bound exactly once, found {count}",
                )));
            }
        }
        if bindings.len() != signature.arity() {
            return Err(WrapperError::Permanent(format!(
                "{signature} has {} attributes but {} bindings",
                signature.arity(),
                bindings.len()
            )));
        }
        Ok(Wrapper {
            signature,
            source: source.into(),
            version: release.version,
            bindings,
            release,
            faults: None,
            cache: OnceLock::new(),
            fetches: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Convenience: bindings are identity (attribute name == payload column).
    pub fn identity_over_release(
        signature: Signature,
        source: impl Into<String>,
        release: Release,
    ) -> Result<Self, WrapperError> {
        let bindings: Vec<(String, String)> = signature
            .attributes()
            .iter()
            .map(|a| (a.clone(), a.clone()))
            .collect();
        Wrapper::over_release(signature, source, release, bindings)
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The wrapper name (signature name).
    pub fn name(&self) -> &str {
        self.signature.name()
    }

    /// The data source name.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The consumed schema version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The attribute → payload-column bindings.
    pub fn bindings(&self) -> &[(String, String)] {
        &self.bindings
    }

    /// The release this wrapper reads — primaries serialise it so replicas
    /// can hydrate an identical executable wrapper.
    pub fn release(&self) -> &Release {
        &self.release
    }

    /// Attaches a fault schedule: every subsequent [`Wrapper::rows`] call
    /// becomes a fresh simulated fetch drawing its fate from the plan.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
        self.cache = OnceLock::new();
    }

    /// The attached fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// `rows()` calls on this instance so far (the per-query scan cache is
    /// asserted against this: k branches, 1 fetch).
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The memoised clean-payload rows. Parsing and typing the release
    /// body is deterministic, so a successful simulated fetch — with or
    /// without a fault plan attached — can always reuse it: injected
    /// faults decide the fetch's *fate*, not the payload's content.
    fn clean_rows(&self) -> Result<Vec<Tuple>, WrapperError> {
        self.cache
            .get_or_init(|| self.compute_rows(&self.release.body))
            .clone()
    }

    /// Fetches, parses, flattens and maps the payload into signature rows.
    ///
    /// The clean payload is computed once and cached, fault plan or not —
    /// an attached plan injects each simulated fetch's *outcome* (failure,
    /// latency, truncation) but a successful fetch serves the memoised
    /// rows, so fault-recovery measurements see retry cost rather than
    /// re-parsing cost. Only a `Malformed` outcome re-parses: it must type
    /// the truncated body, which the cache of clean rows cannot answer.
    pub fn rows(&self) -> Result<Vec<Tuple>, WrapperError> {
        self.fetches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match &self.faults {
            None => self.clean_rows(),
            Some(plan) => match plan.next_fault(self.name()) {
                Some(InjectedFault::Terminal) => Err(WrapperError::Permanent(format!(
                    "{}: source '{}' is gone (injected terminal fault)",
                    self.name(),
                    self.source
                ))),
                Some(InjectedFault::Transient) => Err(WrapperError::Transient(format!(
                    "{}: HTTP 503 from '{}' (injected transient fault, attempt {})",
                    self.name(),
                    self.source,
                    plan.attempts(self.name())
                ))),
                Some(InjectedFault::Malformed) => {
                    self.compute_rows(&truncate_body(&self.release.body))
                }
                Some(InjectedFault::Latency(delay)) => {
                    std::thread::sleep(delay);
                    self.clean_rows()
                }
                None => self.clean_rows(),
            },
        }
    }

    fn compute_rows(&self, body: &str) -> Result<Vec<Tuple>, WrapperError> {
        let value = self
            .release
            .parse_body(body)
            .map_err(|e| WrapperError::Malformed(format!("{}: {}", self.name(), e.message())))?;
        let flat: Vec<Row> = flatten_rows(&value, &FlattenOptions::default());
        let rows = flat
            .into_iter()
            .map(|row| {
                self.bindings
                    .iter()
                    .map(|(_, column)| {
                        row.get(column.as_str())
                            .map(|text| Value::from_text(text))
                            .unwrap_or(Value::Null)
                    })
                    .collect::<Tuple>()
            })
            .collect();
        Ok(rows)
    }

    /// The flattened payload columns this release actually provides — the
    /// raw material for MDM's automatic *schema extraction* step (§2.2).
    pub fn payload_columns(&self) -> Result<Vec<String>, WrapperError> {
        let value = self.release.parse()?;
        let flat = flatten_rows(&value, &FlattenOptions::default());
        Ok(mdm_dataform::flatten::infer_columns(&flat))
    }

    /// Bindings whose payload column is absent from the release — the
    /// *dangling* bindings a breaking schema change leaves behind.
    pub fn dangling_bindings(&self) -> Result<Vec<&str>, WrapperError> {
        let columns = self.payload_columns()?;
        Ok(self
            .bindings
            .iter()
            .filter(|(_, column)| !columns.contains(column))
            .map(|(attribute, _)| attribute.as_str())
            .collect())
    }
}

impl RelationProvider for Wrapper {
    fn provider_schema(&self) -> Schema {
        Schema::qualified(self.name(), self.signature.attributes().to_vec())
    }

    fn rows(&self) -> Result<Vec<Tuple>, ExecError> {
        Wrapper::rows(self).map_err(ExecError::from)
    }

    fn version(&self) -> u64 {
        u64::from(self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::Format;

    fn players_release() -> Release {
        Release {
            version: 1,
            format: Format::Json,
            body: r#"[
                {"id":6176,"name":"Lionel Messi","height":170.18,"weight":159,
                 "rating":94,"preferred_foot":"left","team_id":25},
                {"id":6177,"name":"Robert Lewandowski","height":184.0,"weight":176,
                 "rating":92,"preferred_foot":"right","team_id":27}
            ]"#
            .to_string(),
            notes: String::new(),
        }
    }

    /// The paper's w1 with its renames (name→pName, rating→score,
    /// preferred_foot→foot, team_id→teamId).
    fn w1() -> Wrapper {
        Wrapper::over_release(
            Signature::new(
                "w1",
                ["id", "pName", "height", "weight", "score", "foot", "teamId"],
            )
            .unwrap(),
            "PlayersAPI",
            players_release(),
            [
                ("id", "id"),
                ("pName", "name"),
                ("height", "height"),
                ("weight", "weight"),
                ("score", "rating"),
                ("foot", "preferred_foot"),
                ("teamId", "team_id"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn signature_display_matches_paper_notation() {
        let s = Signature::new("w2", ["id", "name", "shortName"]).unwrap();
        assert_eq!(s.to_string(), "w2(id, name, shortName)");
    }

    #[test]
    fn signature_rejects_duplicates_and_empties() {
        assert!(Signature::new("w", ["a", "a"]).is_err());
        assert!(Signature::new("w", [""]).is_err());
        assert!(Signature::new("", ["a"]).is_err());
        assert!(Signature::new("w", Vec::<String>::new()).is_err());
    }

    #[test]
    fn validation_errors_are_permanent() {
        let err = Signature::new("w", ["a", "a"]).unwrap_err();
        assert!(matches!(err, WrapperError::Permanent(_)));
        assert_eq!(err.kind(), "permanent");
        assert!(!err.is_transient());
        assert!(err.to_string().contains("permanent"));
    }

    #[test]
    fn wrapper_produces_renamed_rows() {
        let w = w1();
        let rows = w.rows().unwrap();
        assert_eq!(rows.len(), 2);
        // pName column (index 1) carries the payload's "name".
        assert_eq!(rows[0][1], Value::str("Lionel Messi"));
        // foot column (index 5) carries "preferred_foot".
        assert_eq!(rows[0][5], Value::str("left"));
        assert_eq!(rows[0][6], Value::Int(25));
    }

    #[test]
    fn provider_schema_is_qualified() {
        let w = w1();
        let schema = RelationProvider::provider_schema(&w);
        assert_eq!(schema.len(), 7);
        assert!(schema
            .index_of(&mdm_relational::schema::ColumnRef::qualified("w1", "pName"))
            .is_ok());
    }

    #[test]
    fn missing_column_produces_nulls_and_dangles() {
        // Wrapper binds an attribute to a column the payload doesn't have —
        // the evolved-source failure mode.
        let w = Wrapper::over_release(
            Signature::new("w1b", ["id", "nationality"]).unwrap(),
            "PlayersAPI",
            players_release(),
            [("id", "id"), ("nationality", "nationality")],
        )
        .unwrap();
        let rows = w.rows().unwrap();
        assert!(rows[0][1].is_null());
        assert_eq!(w.dangling_bindings().unwrap(), vec!["nationality"]);
        assert!(w1().dangling_bindings().unwrap().is_empty());
    }

    #[test]
    fn binding_validation() {
        let sig = Signature::new("w", ["a", "b"]).unwrap();
        // Missing binding for b.
        assert!(
            Wrapper::over_release(sig.clone(), "S", players_release(), [("a", "id")],).is_err()
        );
        // Duplicate binding for a.
        assert!(
            Wrapper::over_release(sig, "S", players_release(), [("a", "id"), ("a", "name")],)
                .is_err()
        );
    }

    #[test]
    fn payload_columns_reflect_schema_extraction() {
        let columns = w1().payload_columns().unwrap();
        assert!(columns.contains(&"preferred_foot".to_string()));
        assert!(columns.contains(&"team_id".to_string()));
        assert_eq!(columns.len(), 7);
    }

    #[test]
    fn malformed_payload_surfaces_error() {
        let w = Wrapper::identity_over_release(
            Signature::new("w", ["id"]).unwrap(),
            "S",
            Release {
                version: 1,
                format: Format::Json,
                body: "{broken".to_string(),
                notes: String::new(),
            },
        )
        .unwrap();
        let err = w.rows().unwrap_err();
        assert!(matches!(err, WrapperError::Malformed(_)), "{err}");
        // The error is cached, not recomputed.
        assert!(w.rows().is_err());
    }

    #[test]
    fn rows_are_cached_without_faults() {
        let w = w1();
        let first = w.rows().unwrap();
        let second = w.rows().unwrap();
        assert_eq!(first, second);
        // The cache holds the computed result; clones reset it. The clone
        // is the behaviour under test, not a copy to optimise away.
        assert!(w.cache.get().is_some());
        #[allow(clippy::redundant_clone)]
        let fresh_clone = w.clone();
        assert!(fresh_clone.cache.get().is_none());
    }

    #[test]
    fn fault_plan_turns_fetches_flaky_then_ok() {
        let mut w = w1();
        // 100% transient for attempts 1-2, clean afterwards.
        w.set_fault_plan(Some(Arc::new(
            FaultPlan::seeded(11)
                .transient_window(1, 1.0)
                .transient_window(3, 0.0),
        )));
        let e1 = w.rows().unwrap_err();
        assert!(e1.is_transient(), "{e1}");
        assert!(e1.message().contains("attempt 1"));
        assert!(w.rows().unwrap_err().is_transient());
        assert_eq!(w.rows().unwrap().len(), 2);
    }

    #[test]
    fn terminal_fault_is_permanent() {
        let mut w = w1();
        w.set_fault_plan(Some(Arc::new(FaultPlan::seeded(0).kill("w1"))));
        let err = w.rows().unwrap_err();
        assert!(matches!(err, WrapperError::Permanent(_)), "{err}");
        assert!(err.message().contains("PlayersAPI"));
    }

    #[test]
    fn malformed_fault_truncates_payload() {
        let mut w = w1();
        w.set_fault_plan(Some(Arc::new(FaultPlan::seeded(0).malformed_rate(1.0))));
        let err = w.rows().unwrap_err();
        assert!(matches!(err, WrapperError::Malformed(_)), "{err}");
    }

    #[test]
    fn exec_error_conversion_preserves_kind() {
        let exec: ExecError = WrapperError::Transient("hiccup".to_string()).into();
        assert_eq!(exec.kind, ErrorKind::Transient);
        assert_eq!(exec.message, "hiccup");
        let exec: ExecError = WrapperError::Timeout("slow".to_string()).into();
        assert_eq!(exec.kind, ErrorKind::Timeout);
    }
}

//! Wrappers: signatures, payload bindings, and 1NF row production.

use std::fmt;
use std::sync::OnceLock;

use mdm_dataform::flatten::{flatten_rows, FlattenOptions, Row};
use mdm_relational::{ExecError, RelationProvider, Schema, Tuple, Value};

use crate::rest::Release;

/// A wrapper signature `w(a1, …, an)` (paper §2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    name: String,
    attributes: Vec<String>,
}

impl Signature {
    /// Builds a signature; attribute names must be unique and non-empty.
    pub fn new(
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, WrapperError> {
        let name = name.into();
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        if name.is_empty() {
            return Err(WrapperError("wrapper name must not be empty".to_string()));
        }
        if attributes.is_empty() {
            return Err(WrapperError(format!(
                "wrapper '{name}' must expose at least one attribute"
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for attribute in &attributes {
            if attribute.is_empty() {
                return Err(WrapperError(format!(
                    "wrapper '{name}' has an empty attribute name"
                )));
            }
            if !seen.insert(attribute.as_str()) {
                return Err(WrapperError(format!(
                    "wrapper '{name}' repeats attribute '{attribute}'"
                )));
            }
        }
        Ok(Signature { name, attributes })
    }

    /// The wrapper name `w`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute names `a1, …, an` in order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// The arity `n`.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

/// An error raised while building or executing a wrapper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrapperError(pub String);

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wrapper error: {}", self.0)
    }
}

impl std::error::Error for WrapperError {}

/// A runnable wrapper: a signature, the release it reads, and the binding of
/// each signature attribute to a flattened payload column.
///
/// The binding layer is where the paper's renames happen: the Players
/// wrapper exposes `foot` for the payload's `preferred_foot` and `pName` for
/// `name` (Figure 6's `w1(id, pName, height, weight, score, foot, teamId)`).
#[derive(Debug)]
pub struct Wrapper {
    signature: Signature,
    /// The data source (endpoint) this wrapper reads, e.g. `PlayersAPI`.
    source: String,
    /// The schema version it consumes.
    version: u32,
    /// `attribute → flattened payload column` pairs, one per attribute.
    bindings: Vec<(String, String)>,
    release: Release,
    /// Rows are produced once and cached; a wrapper models one snapshot.
    cache: OnceLock<Result<Vec<Tuple>, String>>,
}

impl Clone for Wrapper {
    fn clone(&self) -> Self {
        Wrapper {
            signature: self.signature.clone(),
            source: self.source.clone(),
            version: self.version,
            bindings: self.bindings.clone(),
            release: self.release.clone(),
            cache: OnceLock::new(),
        }
    }
}

impl Wrapper {
    /// Builds a wrapper over a release.
    ///
    /// `bindings` maps each signature attribute to the flattened payload
    /// column it reads. Every signature attribute must be bound exactly once;
    /// binding an attribute to a column the payload lacks is *allowed* (it
    /// produces NULLs) because that is precisely what happens when a source
    /// evolves under a wrapper — MDM's job is to detect and govern it.
    pub fn over_release(
        signature: Signature,
        source: impl Into<String>,
        release: Release,
        bindings: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
    ) -> Result<Self, WrapperError> {
        let bindings: Vec<(String, String)> = bindings
            .into_iter()
            .map(|(a, c)| (a.into(), c.into()))
            .collect();
        for attribute in signature.attributes() {
            let count = bindings.iter().filter(|(a, _)| a == attribute).count();
            if count != 1 {
                return Err(WrapperError(format!(
                    "attribute '{attribute}' of {signature} must be bound exactly once, found {count}",
                )));
            }
        }
        if bindings.len() != signature.arity() {
            return Err(WrapperError(format!(
                "{signature} has {} attributes but {} bindings",
                signature.arity(),
                bindings.len()
            )));
        }
        Ok(Wrapper {
            signature,
            source: source.into(),
            version: release.version,
            bindings,
            release,
            cache: OnceLock::new(),
        })
    }

    /// Convenience: bindings are identity (attribute name == payload column).
    pub fn identity_over_release(
        signature: Signature,
        source: impl Into<String>,
        release: Release,
    ) -> Result<Self, WrapperError> {
        let bindings: Vec<(String, String)> = signature
            .attributes()
            .iter()
            .map(|a| (a.clone(), a.clone()))
            .collect();
        Wrapper::over_release(signature, source, release, bindings)
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The wrapper name (signature name).
    pub fn name(&self) -> &str {
        self.signature.name()
    }

    /// The data source name.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The consumed schema version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The attribute → payload-column bindings.
    pub fn bindings(&self) -> &[(String, String)] {
        &self.bindings
    }

    /// Fetches, parses, flattens and maps the payload into signature rows.
    pub fn rows(&self) -> Result<&[Tuple], WrapperError> {
        let result = self.cache.get_or_init(|| self.compute_rows());
        match result {
            Ok(rows) => Ok(rows),
            Err(e) => Err(WrapperError(e.clone())),
        }
    }

    fn compute_rows(&self) -> Result<Vec<Tuple>, String> {
        let value = self.release.parse()?;
        let flat: Vec<Row> = flatten_rows(&value, &FlattenOptions::default());
        let rows = flat
            .into_iter()
            .map(|row| {
                self.bindings
                    .iter()
                    .map(|(_, column)| {
                        row.get(column)
                            .map(|text| Value::from_text(text))
                            .unwrap_or(Value::Null)
                    })
                    .collect::<Tuple>()
            })
            .collect();
        Ok(rows)
    }

    /// The flattened payload columns this release actually provides — the
    /// raw material for MDM's automatic *schema extraction* step (§2.2).
    pub fn payload_columns(&self) -> Result<Vec<String>, WrapperError> {
        let value = self.release.parse().map_err(WrapperError)?;
        let flat = flatten_rows(&value, &FlattenOptions::default());
        Ok(mdm_dataform::flatten::infer_columns(&flat))
    }

    /// Bindings whose payload column is absent from the release — the
    /// *dangling* bindings a breaking schema change leaves behind.
    pub fn dangling_bindings(&self) -> Result<Vec<&str>, WrapperError> {
        let columns = self.payload_columns()?;
        Ok(self
            .bindings
            .iter()
            .filter(|(_, column)| !columns.contains(column))
            .map(|(attribute, _)| attribute.as_str())
            .collect())
    }
}

impl RelationProvider for Wrapper {
    fn provider_schema(&self) -> Schema {
        Schema::qualified(self.name(), self.signature.attributes().to_vec())
    }

    fn rows(&self) -> Result<Vec<Tuple>, ExecError> {
        Wrapper::rows(self)
            .map(<[Tuple]>::to_vec)
            .map_err(|e| ExecError(e.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::Format;

    fn players_release() -> Release {
        Release {
            version: 1,
            format: Format::Json,
            body: r#"[
                {"id":6176,"name":"Lionel Messi","height":170.18,"weight":159,
                 "rating":94,"preferred_foot":"left","team_id":25},
                {"id":6177,"name":"Robert Lewandowski","height":184.0,"weight":176,
                 "rating":92,"preferred_foot":"right","team_id":27}
            ]"#
            .to_string(),
            notes: String::new(),
        }
    }

    /// The paper's w1 with its renames (name→pName, rating→score,
    /// preferred_foot→foot, team_id→teamId).
    fn w1() -> Wrapper {
        Wrapper::over_release(
            Signature::new(
                "w1",
                ["id", "pName", "height", "weight", "score", "foot", "teamId"],
            )
            .unwrap(),
            "PlayersAPI",
            players_release(),
            [
                ("id", "id"),
                ("pName", "name"),
                ("height", "height"),
                ("weight", "weight"),
                ("score", "rating"),
                ("foot", "preferred_foot"),
                ("teamId", "team_id"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn signature_display_matches_paper_notation() {
        let s = Signature::new("w2", ["id", "name", "shortName"]).unwrap();
        assert_eq!(s.to_string(), "w2(id, name, shortName)");
    }

    #[test]
    fn signature_rejects_duplicates_and_empties() {
        assert!(Signature::new("w", ["a", "a"]).is_err());
        assert!(Signature::new("w", [""]).is_err());
        assert!(Signature::new("", ["a"]).is_err());
        assert!(Signature::new("w", Vec::<String>::new()).is_err());
    }

    #[test]
    fn wrapper_produces_renamed_rows() {
        let w = w1();
        let rows = w.rows().unwrap();
        assert_eq!(rows.len(), 2);
        // pName column (index 1) carries the payload's "name".
        assert_eq!(rows[0][1], Value::str("Lionel Messi"));
        // foot column (index 5) carries "preferred_foot".
        assert_eq!(rows[0][5], Value::str("left"));
        assert_eq!(rows[0][6], Value::Int(25));
    }

    #[test]
    fn provider_schema_is_qualified() {
        let w = w1();
        let schema = RelationProvider::provider_schema(&w);
        assert_eq!(schema.len(), 7);
        assert!(schema
            .index_of(&mdm_relational::schema::ColumnRef::qualified("w1", "pName"))
            .is_ok());
    }

    #[test]
    fn missing_column_produces_nulls_and_dangles() {
        // Wrapper binds an attribute to a column the payload doesn't have —
        // the evolved-source failure mode.
        let w = Wrapper::over_release(
            Signature::new("w1b", ["id", "nationality"]).unwrap(),
            "PlayersAPI",
            players_release(),
            [("id", "id"), ("nationality", "nationality")],
        )
        .unwrap();
        let rows = w.rows().unwrap();
        assert!(rows[0][1].is_null());
        assert_eq!(w.dangling_bindings().unwrap(), vec!["nationality"]);
        assert!(w1().dangling_bindings().unwrap().is_empty());
    }

    #[test]
    fn binding_validation() {
        let sig = Signature::new("w", ["a", "b"]).unwrap();
        // Missing binding for b.
        assert!(
            Wrapper::over_release(sig.clone(), "S", players_release(), [("a", "id")],).is_err()
        );
        // Duplicate binding for a.
        assert!(
            Wrapper::over_release(sig, "S", players_release(), [("a", "id"), ("a", "name")],)
                .is_err()
        );
    }

    #[test]
    fn payload_columns_reflect_schema_extraction() {
        let columns = w1().payload_columns().unwrap();
        assert!(columns.contains(&"preferred_foot".to_string()));
        assert!(columns.contains(&"team_id".to_string()));
        assert_eq!(columns.len(), 7);
    }

    #[test]
    fn malformed_payload_surfaces_error() {
        let w = Wrapper::identity_over_release(
            Signature::new("w", ["id"]).unwrap(),
            "S",
            Release {
                version: 1,
                format: Format::Json,
                body: "{broken".to_string(),
                notes: String::new(),
            },
        )
        .unwrap();
        assert!(w.rows().is_err());
        // The error is cached, not recomputed.
        assert!(w.rows().is_err());
    }

    #[test]
    fn rows_are_cached() {
        let w = w1();
        let first = w.rows().unwrap().as_ptr();
        let second = w.rows().unwrap().as_ptr();
        assert_eq!(first, second);
    }
}

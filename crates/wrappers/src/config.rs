//! Declarative wrapper definitions.
//!
//! The paper keeps wrapper bodies out of MDM's scope ("the definition of a
//! wrapper … should be carried out by the data steward"), but stewards still
//! need to *hand the definitions over*. This module accepts a JSON document
//! describing the wrappers of one source — name, consumed version, and the
//! ordered attribute→column bindings — and instantiates [`Wrapper`]s
//! against a [`RestSource`]'s published releases:
//!
//! ```json
//! {
//!   "source": "PlayersAPI",
//!   "wrappers": [
//!     {
//!       "name": "w1",
//!       "version": 1,
//!       "bindings": [
//!         {"attribute": "id",    "column": "id"},
//!         {"attribute": "pName", "column": "name"}
//!       ]
//!     }
//!   ]
//! }
//! ```

use std::fmt;

use mdm_dataform::{json, Value};

use crate::rest::RestSource;
use crate::wrapper::{Signature, Wrapper};

/// A parsed wrapper-configuration document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrapperConfig {
    pub source: String,
    pub wrappers: Vec<WrapperSpec>,
}

/// One wrapper's declarative definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrapperSpec {
    pub name: String,
    pub version: u32,
    /// `(attribute, payload column)` in signature order.
    pub bindings: Vec<(String, String)>,
}

/// A configuration error with a JSON-path-ish location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wrapper config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Parses a configuration document.
pub fn parse(text: &str) -> Result<WrapperConfig, ConfigError> {
    let document = json::parse(text).map_err(|e| ConfigError(e.to_string()))?;
    let source = require_str(&document, "source")?.to_string();
    let wrappers_value = document
        .get("wrappers")
        .ok_or_else(|| ConfigError("missing 'wrappers' array".to_string()))?;
    let wrapper_items = wrappers_value
        .as_array()
        .ok_or_else(|| ConfigError("'wrappers' must be an array".to_string()))?;
    let mut wrappers = Vec::with_capacity(wrapper_items.len());
    for (index, item) in wrapper_items.iter().enumerate() {
        let at = |field: &str| format!("wrappers[{index}].{field}");
        let name = require_str(item, "name")
            .map_err(|e| ConfigError(format!("{}: {}", at("name"), e.0)))?
            .to_string();
        let version = item
            .get("version")
            .and_then(Value::as_number)
            .and_then(|n| n.as_i64())
            .filter(|v| *v > 0)
            .ok_or_else(|| ConfigError(format!("{} must be a positive integer", at("version"))))?
            as u32;
        let bindings_value = item
            .get("bindings")
            .and_then(Value::as_array)
            .ok_or_else(|| ConfigError(format!("{} must be an array", at("bindings"))))?;
        let mut bindings = Vec::with_capacity(bindings_value.len());
        for (bi, binding) in bindings_value.iter().enumerate() {
            let attribute = require_str(binding, "attribute")
                .map_err(|e| ConfigError(format!("{}[{bi}].attribute: {}", at("bindings"), e.0)))?;
            let column = require_str(binding, "column")
                .map_err(|e| ConfigError(format!("{}[{bi}].column: {}", at("bindings"), e.0)))?;
            bindings.push((attribute.to_string(), column.to_string()));
        }
        if bindings.is_empty() {
            return Err(ConfigError(format!("{} must not be empty", at("bindings"))));
        }
        wrappers.push(WrapperSpec {
            name,
            version,
            bindings,
        });
    }
    if wrappers.is_empty() {
        return Err(ConfigError("'wrappers' must not be empty".to_string()));
    }
    Ok(WrapperConfig { source, wrappers })
}

fn require_str<'a>(value: &'a Value, field: &str) -> Result<&'a str, ConfigError> {
    value
        .get(field)
        .and_then(Value::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| ConfigError(format!("missing or empty '{field}'")))
}

impl WrapperConfig {
    /// Instantiates every declared wrapper against the source's releases.
    ///
    /// The endpoint's name must match the config's `source`, and every
    /// referenced version must be published.
    pub fn instantiate(&self, endpoint: &RestSource) -> Result<Vec<Wrapper>, ConfigError> {
        if endpoint.name() != self.source {
            return Err(ConfigError(format!(
                "config is for source '{}' but the endpoint is '{}'",
                self.source,
                endpoint.name()
            )));
        }
        self.wrappers
            .iter()
            .map(|spec| {
                let release = endpoint.release(spec.version).ok_or_else(|| {
                    ConfigError(format!(
                        "wrapper '{}' consumes v{} which '{}' has not published \
                         (available: {:?})",
                        spec.name,
                        spec.version,
                        self.source,
                        endpoint.versions()
                    ))
                })?;
                let attributes: Vec<String> =
                    spec.bindings.iter().map(|(a, _)| a.clone()).collect();
                let signature = Signature::new(spec.name.clone(), attributes)
                    .map_err(|e| ConfigError(e.to_string()))?;
                Wrapper::over_release(
                    signature,
                    self.source.clone(),
                    release.clone(),
                    spec.bindings.clone(),
                )
                .map_err(|e| ConfigError(e.to_string()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::{Format, Release};
    use mdm_relational::RelationProvider;

    fn endpoint() -> RestSource {
        let mut source = RestSource::new("PlayersAPI");
        source.publish(Release {
            version: 1,
            format: Format::Json,
            body: r#"[{"id":1,"name":"Messi","rating":94}]"#.to_string(),
            notes: String::new(),
        });
        source
    }

    const CONFIG: &str = r#"{
        "source": "PlayersAPI",
        "wrappers": [
            {
                "name": "w1",
                "version": 1,
                "bindings": [
                    {"attribute": "id",    "column": "id"},
                    {"attribute": "pName", "column": "name"},
                    {"attribute": "score", "column": "rating"}
                ]
            }
        ]
    }"#;

    #[test]
    fn parse_and_instantiate() {
        let config = parse(CONFIG).unwrap();
        assert_eq!(config.source, "PlayersAPI");
        assert_eq!(config.wrappers.len(), 1);
        assert_eq!(config.wrappers[0].bindings.len(), 3);
        let wrappers = config.instantiate(&endpoint()).unwrap();
        assert_eq!(wrappers.len(), 1);
        let rows = RelationProvider::rows(&wrappers[0]).unwrap();
        assert_eq!(rows[0][1], mdm_relational::Value::str("Messi"));
        assert_eq!(rows[0][2], mdm_relational::Value::Int(94));
    }

    #[test]
    fn bad_documents_rejected_with_paths() {
        assert!(parse("{").is_err());
        assert!(parse("{}").unwrap_err().0.contains("source"));
        assert!(parse(r#"{"source":"S"}"#)
            .unwrap_err()
            .0
            .contains("wrappers"));
        let err = parse(r#"{"source":"S","wrappers":[{"name":"w","version":0,"bindings":[]}]}"#)
            .unwrap_err();
        assert!(err.0.contains("wrappers[0].version"), "{err}");
        let err = parse(
            r#"{"source":"S","wrappers":[{"name":"w","version":1,"bindings":[{"attribute":"a"}]}]}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("bindings[0].column"), "{err}");
    }

    #[test]
    fn source_and_version_mismatches_rejected() {
        let config = parse(CONFIG).unwrap();
        let wrong_source = RestSource::new("TeamsAPI");
        assert!(config
            .instantiate(&wrong_source)
            .unwrap_err()
            .0
            .contains("endpoint"));
        let mut unversioned = RestSource::new("PlayersAPI");
        unversioned.publish(Release {
            version: 9,
            format: Format::Json,
            body: "[]".to_string(),
            notes: String::new(),
        });
        let err = config.instantiate(&unversioned).unwrap_err();
        assert!(err.0.contains("v1"), "{err}");
        assert!(err.0.contains("[9]"), "{err}");
    }
}

//! Release diffing: what changed between two payload schemas.
//!
//! When a source publishes a new version, the steward's first question is
//! "what broke?". [`diff_releases`] compares the *flattened column sets* of
//! two releases (the same 1NF view wrappers read) and classifies:
//!
//! * columns only in the old payload — **removed** (breaking for consumers
//!   bound to them);
//! * columns only in the new payload — **added** (non-breaking);
//! * removed/added pairs with high name similarity — **rename candidates**
//!   (breaking, but mechanically re-bindable).
//!
//! The classification mirrors the taxonomy of Caruccio et al. (the survey
//! the paper cites for query/view synchronisation under schema evolution).

use std::fmt;

use crate::rest::Release;

/// The diff between two releases' flat schemas.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReleaseDiff {
    /// Columns present in both.
    pub unchanged: Vec<String>,
    /// Columns the new release dropped.
    pub removed: Vec<String>,
    /// Columns the new release introduced.
    pub added: Vec<String>,
    /// `(old, new, similarity)` pairs proposed as renames. Pairs listed
    /// here are excluded from `removed`/`added`.
    pub renamed: Vec<(String, String, f64)>,
}

impl ReleaseDiff {
    /// True when the change set contains anything that breaks old bindings.
    pub fn is_breaking(&self) -> bool {
        !self.removed.is_empty() || !self.renamed.is_empty()
    }

    /// A change-log style rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (old, new, score) in &self.renamed {
            out.push_str(&format!("RENAME {old} → {new} (similarity {score:.2})\n"));
        }
        for column in &self.removed {
            out.push_str(&format!("REMOVE {column}\n"));
        }
        for column in &self.added {
            out.push_str(&format!("ADD    {column}\n"));
        }
        if out.is_empty() {
            out.push_str("no schema changes\n");
        }
        out
    }
}

/// An error parsing either payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffError(pub String);

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "release diff error: {}", self.0)
    }
}

impl std::error::Error for DiffError {}

/// Minimum similarity for a removed/added pair to count as a rename.
const RENAME_THRESHOLD: f64 = 0.55;

/// Diffs two releases' flattened column sets.
pub fn diff_releases(old: &Release, new: &Release) -> Result<ReleaseDiff, DiffError> {
    let old_columns = columns(old)?;
    let new_columns = columns(new)?;
    let mut removed: Vec<String> = old_columns
        .iter()
        .filter(|c| !new_columns.contains(c))
        .cloned()
        .collect();
    let mut added: Vec<String> = new_columns
        .iter()
        .filter(|c| !old_columns.contains(c))
        .cloned()
        .collect();
    let unchanged: Vec<String> = old_columns
        .iter()
        .filter(|c| new_columns.contains(c))
        .cloned()
        .collect();

    // A wholesale re-nesting (v2 wrapping records under "players") prefixes
    // every new column identically; fold that prefix away before matching.
    let old_prefix = common_prefix(&removed);
    let new_prefix = common_prefix(&added);

    // Greedy best-first rename pairing.
    let mut renamed = Vec::new();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, old_name) in removed.iter().enumerate() {
            for (j, new_name) in added.iter().enumerate() {
                let score = name_similarity(
                    old_name.strip_prefix(&old_prefix).unwrap_or(old_name),
                    new_name.strip_prefix(&new_prefix).unwrap_or(new_name),
                );
                if score >= RENAME_THRESHOLD && best.is_none_or(|(_, _, b)| score > b) {
                    best = Some((i, j, score));
                }
            }
        }
        match best {
            Some((i, j, score)) => {
                let old_name = removed.remove(i);
                let new_name = added.remove(j);
                renamed.push((old_name, new_name, score));
            }
            None => break,
        }
    }
    renamed.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(ReleaseDiff {
        unchanged,
        removed,
        added,
        renamed,
    })
}

/// The longest common prefix of a column set, truncated to the last
/// separator so `players_foo`/`players_fat` folds to `players_`, not
/// `players_f`. Empty unless the set has ≥2 entries.
fn common_prefix(names: &[String]) -> String {
    let Some((first, rest)) = names.split_first() else {
        return String::new();
    };
    if rest.is_empty() {
        return String::new();
    }
    let mut prefix_len = first.len();
    for name in rest {
        prefix_len = prefix_len.min(
            first
                .bytes()
                .zip(name.bytes())
                .take_while(|(a, b)| a == b)
                .count(),
        );
    }
    let prefix = &first[..prefix_len];
    match prefix.rfind('_') {
        Some(idx) => prefix[..=idx].to_string(),
        None => String::new(),
    }
}

fn columns(release: &Release) -> Result<Vec<String>, DiffError> {
    let value = release
        .parse()
        .map_err(|e| DiffError(e.message().to_string()))?;
    let rows = mdm_dataform::flatten::flatten_rows(
        &value,
        &mdm_dataform::flatten::FlattenOptions::default(),
    );
    Ok(mdm_dataform::flatten::infer_columns(&rows))
}

/// Folded-name similarity (substring containment or edit distance).
fn name_similarity(a: &str, b: &str) -> f64 {
    let fold = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_alphanumeric())
            .flat_map(char::to_lowercase)
            .collect()
    };
    let (a, b) = (fold(a), fold(b));
    if a == b {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if long.contains(short.as_str()) && short.len() >= 3 {
        return 0.7 + 0.3 * short.len() as f64 / long.len() as f64;
    }
    let distance = levenshtein(&a, &b) as f64;
    1.0 - distance / a.len().max(b.len()) as f64
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            current[j + 1] = (previous[j] + usize::from(ca != cb))
                .min(previous[j + 1] + 1)
                .min(current[j] + 1);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::football;
    use crate::rest::Format;

    fn release(body: &str) -> Release {
        Release {
            version: 1,
            format: Format::Json,
            body: body.to_string(),
            notes: String::new(),
        }
    }

    #[test]
    fn identical_releases_diff_empty() {
        let r = release(r#"[{"id":1,"name":"x"}]"#);
        let diff = diff_releases(&r, &r).unwrap();
        assert!(!diff.is_breaking());
        assert_eq!(diff.unchanged.len(), 2);
        assert!(diff.render().contains("no schema changes"));
    }

    #[test]
    fn adds_removes_and_renames_classified() {
        let old = release(r#"[{"id":1,"name":"x","rating":5,"team_id":2}]"#);
        let new = release(r#"[{"id":1,"full_name":"x","team_id":2,"nationality":3}]"#);
        let diff = diff_releases(&old, &new).unwrap();
        assert!(diff.is_breaking());
        // name → full_name is the rename candidate.
        assert_eq!(diff.renamed.len(), 1);
        assert_eq!(diff.renamed[0].0, "name");
        assert_eq!(diff.renamed[0].1, "full_name");
        assert_eq!(diff.removed, vec!["rating"]);
        assert_eq!(diff.added, vec!["nationality"]);
        assert_eq!(diff.unchanged, vec!["id", "team_id"]);
    }

    #[test]
    fn football_v1_to_v2_diff_matches_release_notes() {
        let eco = football::build_default();
        let v1 = eco.players_api.release(1).unwrap();
        let v2 = eco.players_api.release(2).unwrap();
        let diff = diff_releases(v1, v2).unwrap();
        assert!(diff.is_breaking());
        let renames: Vec<(&str, &str)> = diff
            .renamed
            .iter()
            .map(|(a, b, _)| (a.as_str(), b.as_str()))
            .collect();
        assert!(
            renames.contains(&("name", "players_full_name"))
                || renames.iter().any(|(a, _)| *a == "name"),
            "expected a rename involving 'name': {renames:?}"
        );
        // rating disappeared entirely.
        assert!(
            diff.removed.contains(&"rating".to_string())
                || diff.renamed.iter().any(|(a, _, _)| a == "rating"),
            "rating must be flagged: {diff:?}"
        );
    }

    #[test]
    fn nested_payloads_diff_on_flattened_columns() {
        let old = release(r#"[{"id":1,"team_id":2}]"#);
        let new = release(r#"[{"id":1,"team":{"id":2}}]"#);
        let diff = diff_releases(&old, &new).unwrap();
        // team_id vs team_id-from-nesting: flattened new column is team_id!
        // (nesting under "team" + key "id" flattens to "team_id")
        assert!(!diff.is_breaking(), "{diff:?}");
    }

    #[test]
    fn malformed_payload_is_error() {
        let good = release("[]");
        let bad = release("{oops");
        assert!(diff_releases(&good, &bad).is_err());
    }
}

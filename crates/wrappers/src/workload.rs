//! Parameterised synthetic ecosystems for the scaling benches.
//!
//! The demo paper reports no performance numbers; the benches (P1–P6 in
//! DESIGN.md) need controllable workloads: `N` concepts in a chain, each
//! populated by one source with `M` wrapper versions of `R` rows. Field
//! naming is positional (`c0_f1`, …) so `mdm-core` test/bench helpers can
//! build the matching ontology mechanically.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::evolution::{random_change, ChangeKind, EvolvingSource, FieldType, SchemaSpec};
use crate::rest::Release;
use crate::wrapper::{Signature, Wrapper};

/// Workload sizing.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of concepts (sources) in the chain.
    pub concepts: usize,
    /// Non-key features per concept.
    pub features_per_concept: usize,
    /// Schema versions (wrappers) per source.
    pub versions_per_source: usize,
    /// Rows per wrapper payload.
    pub rows_per_wrapper: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            concepts: 3,
            features_per_concept: 3,
            versions_per_source: 2,
            rows_per_wrapper: 100,
            seed: 7,
        }
    }
}

/// One synthetic source: its evolving endpoint and the wrappers the steward
/// registered, one per version, all re-exposing the *original* attribute
/// names (the steward re-binds after each release, as MDM prescribes).
#[derive(Clone, Debug)]
pub struct SyntheticSource {
    /// Concept index this source populates.
    pub concept: usize,
    pub source: EvolvingSource,
    pub wrappers: Vec<Wrapper>,
}

/// The generated ecosystem.
#[derive(Clone, Debug)]
pub struct SyntheticEcosystem {
    pub config: WorkloadConfig,
    pub sources: Vec<SyntheticSource>,
}

impl SyntheticEcosystem {
    /// All wrappers across all sources.
    pub fn all_wrappers(&self) -> impl Iterator<Item = &Wrapper> {
        self.sources.iter().flat_map(|s| s.wrappers.iter())
    }

    /// The canonical attribute names of concept `c`: `id`, then
    /// `c{c}_f{j}`, then (except for the last concept) the foreign key
    /// `c{c}_next` pointing at concept `c+1`.
    pub fn concept_attributes(&self, concept: usize) -> Vec<String> {
        let mut names = vec!["id".to_string()];
        for j in 0..self.config.features_per_concept {
            names.push(format!("c{concept}_f{j}"));
        }
        if concept + 1 < self.config.concepts {
            names.push(format!("c{concept}_next"));
        }
        names
    }
}

/// Builds the ecosystem: a chain `c0 → c1 → … → c{n-1}` where each source's
/// rows carry a foreign key into the next concept, and each source evolves
/// through `versions_per_source - 1` random changes.
pub fn build(config: &WorkloadConfig) -> SyntheticEcosystem {
    build_with_rows(config, |_| config.rows_per_wrapper)
}

/// Like [`build`], but each concept's source gets `rows(concept)` rows —
/// skewed ecosystems (a small dimension source feeding a large fact
/// source) are what make join ordering matter in the P14 bench.
pub fn build_with_rows(
    config: &WorkloadConfig,
    rows: impl Fn(usize) -> usize,
) -> SyntheticEcosystem {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sources = Vec::with_capacity(config.concepts);
    for c in 0..config.concepts {
        let mut fields: Vec<(String, FieldType)> = vec![("id".to_string(), FieldType::Int)];
        for j in 0..config.features_per_concept {
            let t = match j % 3 {
                0 => FieldType::Text,
                1 => FieldType::Int,
                _ => FieldType::Float,
            };
            fields.push((format!("c{c}_f{j}"), t));
        }
        if c + 1 < config.concepts {
            // Foreign key: equal to `id` so the chain joins row-for-row.
            fields.push((format!("c{c}_next"), FieldType::Int));
        }
        let schema = SchemaSpec::new(fields);
        let mut source = EvolvingSource::new(
            format!("Source{c}"),
            schema,
            rows(c),
            config.seed.wrapping_add(c as u64),
        );

        let mut wrappers = Vec::with_capacity(config.versions_per_source);
        wrappers.push(wrapper_for_version(&source, c, 1, config));
        for _ in 1..config.versions_per_source {
            // Apply random changes until one sticks, then re-bind.
            loop {
                let change = random_change(source.schema(), &mut rng);
                if source.evolve(change).is_ok() {
                    break;
                }
            }
            wrappers.push(wrapper_for_version(&source, c, source.version(), config));
        }
        sources.push(SyntheticSource {
            concept: c,
            source,
            wrappers,
        });
    }
    SyntheticEcosystem {
        config: config.clone(),
        sources,
    }
}

/// Builds the steward's wrapper for one version: attributes keep the
/// *canonical* (v1) names; bindings follow lineage to the current payload
/// column. Attributes whose field was removed are bound to the old column
/// name (they will read NULL — visible but non-crashing, the LAV behaviour).
fn wrapper_for_version(
    source: &EvolvingSource,
    concept: usize,
    version: u32,
    config: &WorkloadConfig,
) -> Wrapper {
    // canonical attribute -> current payload column (via lineage).
    let lineage = source.lineage();
    let mut canonical: Vec<String> = vec!["id".to_string()];
    for j in 0..config.features_per_concept {
        canonical.push(format!("c{concept}_f{j}"));
    }
    if concept + 1 < config.concepts {
        canonical.push(format!("c{concept}_next"));
    }
    let bindings: Vec<(String, String)> = canonical
        .iter()
        .map(|attribute| {
            let column = lineage
                .iter()
                .find(|(_, origin)| origin.as_deref() == Some(attribute.as_str()))
                .map(|(current, _)| current.clone())
                .unwrap_or_else(|| attribute.clone());
            (attribute.clone(), column)
        })
        .collect();
    let release: Release = source
        .endpoint
        .release(version)
        .expect("version published")
        .clone();
    Wrapper::over_release(
        Signature::new(format!("s{concept}_v{version}"), canonical.clone())
            .expect("canonical names are valid"),
        source.endpoint.name().to_string(),
        release,
        bindings,
    )
    .expect("binding per attribute")
}

/// Applies `count` further random breaking/non-breaking changes to every
/// source, returning the change log (used by the robustness bench P3).
pub fn evolve_all(
    ecosystem: &mut SyntheticEcosystem,
    count: usize,
    seed: u64,
) -> Vec<(usize, ChangeKind)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = Vec::new();
    let concepts = ecosystem.config.concepts;
    for _ in 0..count {
        let index = (rng.next_u64() as usize) % concepts;
        let synthetic = &mut ecosystem.sources[index];
        loop {
            let change = random_change(synthetic.source.schema(), &mut rng);
            if synthetic.source.evolve(change.clone()).is_ok() {
                let config = ecosystem.config.clone();
                let version = synthetic.source.version();
                synthetic.wrappers.push(wrapper_for_version(
                    &synthetic.source,
                    index,
                    version,
                    &config,
                ));
                log.push((index, change));
                break;
            }
        }
    }
    log
}

use rand::RngCore;

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_relational::RelationProvider;

    #[test]
    fn chain_is_built_to_size() {
        let eco = build(&WorkloadConfig::default());
        assert_eq!(eco.sources.len(), 3);
        for (c, source) in eco.sources.iter().enumerate() {
            assert_eq!(source.wrappers.len(), 2);
            assert_eq!(source.concept, c);
        }
        assert_eq!(eco.all_wrappers().count(), 6);
    }

    #[test]
    fn wrappers_expose_canonical_names_across_versions() {
        let eco = build(&WorkloadConfig::default());
        for source in &eco.sources {
            let expected = eco.concept_attributes(source.concept);
            for wrapper in &source.wrappers {
                assert_eq!(wrapper.signature().attributes(), &expected[..]);
            }
        }
    }

    #[test]
    fn rows_join_along_the_chain() {
        let eco = build(&WorkloadConfig {
            rows_per_wrapper: 10,
            ..WorkloadConfig::default()
        });
        // Every source's v1 wrapper produces rows whose id is 0..n and whose
        // foreign key joins position-for-position with the next concept.
        let w0 = &eco.sources[0].wrappers[0];
        let rows = RelationProvider::rows(w0).unwrap();
        assert_eq!(rows.len(), 10);
        let schema = w0.provider_schema();
        let next = schema
            .index_of(&mdm_relational::schema::ColumnRef::bare("c0_next"))
            .unwrap();
        // Foreign keys land in the id domain of the next concept.
        for row in &rows {
            let fk = row[next].as_f64().unwrap();
            assert!((0.0..1000.0).contains(&fk));
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = build(&WorkloadConfig::default());
        let b = build(&WorkloadConfig::default());
        let body = |eco: &SyntheticEcosystem| {
            eco.sources[0]
                .source
                .endpoint
                .release(1)
                .unwrap()
                .body
                .clone()
        };
        assert_eq!(body(&a), body(&b));
    }

    #[test]
    fn evolve_all_registers_new_wrappers() {
        let mut eco = build(&WorkloadConfig::default());
        let before = eco.all_wrappers().count();
        let log = evolve_all(&mut eco, 5, 123);
        assert_eq!(log.len(), 5);
        assert_eq!(eco.all_wrappers().count(), before + 5);
    }

    #[test]
    fn last_concept_has_no_foreign_key() {
        let eco = build(&WorkloadConfig::default());
        let last = eco.config.concepts - 1;
        let names = eco.concept_attributes(last);
        assert!(!names.iter().any(|n| n.ends_with("_next")));
    }
}

//! Simulated REST endpoints with versioned releases.
//!
//! The paper's sources are external REST APIs that "continuously apply
//! changes in their structure"; we cannot call Facebook's Graph API from a
//! test suite, so [`RestSource`] plays the API's role: it owns a set of
//! [`Release`]s — immutable payload snapshots, one per published schema
//! version — and serves whichever version a wrapper requests. This exercises
//! the same code path as a live API (payload bytes → parse → flatten) while
//! staying deterministic.

use std::collections::BTreeMap;
use std::fmt;

use mdm_dataform::{json, xml, Value};

use crate::wrapper::WrapperError;

/// The serialisation format of a payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    Json,
    Xml,
    Csv,
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Format::Json => write!(f, "JSON"),
            Format::Xml => write!(f, "XML"),
            Format::Csv => write!(f, "CSV"),
        }
    }
}

/// One published schema version of an endpoint: the payload it serves.
#[derive(Clone, Debug)]
pub struct Release {
    /// The version number (v1, v2, …).
    pub version: u32,
    /// The payload format.
    pub format: Format,
    /// The raw response body.
    pub body: String,
    /// Human-readable change notes (shown by the governance scenario).
    pub notes: String,
}

impl Release {
    /// Parses the payload into the unified document model. A parse failure
    /// is a [`WrapperError::Malformed`]: the bytes arrived, but are not a
    /// valid document.
    pub fn parse(&self) -> Result<Value, WrapperError> {
        self.parse_body(&self.body)
    }

    /// Parses an arbitrary body in this release's format — the fault
    /// harness uses it to feed truncated payloads through the real parser.
    pub fn parse_body(&self, body: &str) -> Result<Value, WrapperError> {
        match self.format {
            Format::Json => json::parse(body).map_err(|e| WrapperError::Malformed(e.to_string())),
            Format::Xml => xml::parse(body)
                .map(|e| xml::to_value(&e))
                .map_err(|e| WrapperError::Malformed(e.to_string())),
            Format::Csv => mdm_dataform::csv::parse(body)
                .map(|t| Value::Array(t.to_values()))
                .map_err(|e| WrapperError::Malformed(e.to_string())),
        }
    }
}

/// A simulated REST API endpoint: a name and its ordered releases.
#[derive(Clone, Debug, Default)]
pub struct RestSource {
    name: String,
    releases: BTreeMap<u32, Release>,
}

impl RestSource {
    /// An endpoint with no releases yet.
    pub fn new(name: impl Into<String>) -> Self {
        RestSource {
            name: name.into(),
            releases: BTreeMap::new(),
        }
    }

    /// The endpoint name (e.g. `PlayersAPI`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Publishes a release. Re-publishing a version replaces it.
    pub fn publish(&mut self, release: Release) {
        self.releases.insert(release.version, release);
    }

    /// The release for `version`, when published.
    pub fn release(&self, version: u32) -> Option<&Release> {
        self.releases.get(&version)
    }

    /// The most recent release.
    pub fn latest(&self) -> Option<&Release> {
        self.releases.values().next_back()
    }

    /// All published versions, ascending.
    pub fn versions(&self) -> Vec<u32> {
        self.releases.keys().copied().collect()
    }

    /// Serves the body for `version` — the simulated HTTP GET. A missing
    /// version is an HTTP 404: a [`WrapperError::Permanent`] no retry fixes.
    pub fn get(&self, version: u32) -> Result<&str, WrapperError> {
        self.releases
            .get(&version)
            .map(|r| r.body.as_str())
            .ok_or_else(|| {
                WrapperError::Permanent(format!(
                    "{}: HTTP 404 — version v{version} not published (available: {:?})",
                    self.name,
                    self.versions()
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn players_v1() -> Release {
        Release {
            version: 1,
            format: Format::Json,
            body: r#"[{"id":1,"name":"Messi"}]"#.to_string(),
            notes: "initial release".to_string(),
        }
    }

    #[test]
    fn publish_and_get() {
        let mut api = RestSource::new("PlayersAPI");
        api.publish(players_v1());
        assert_eq!(api.get(1).unwrap(), r#"[{"id":1,"name":"Messi"}]"#);
        let err = api.get(2).unwrap_err();
        assert!(matches!(err, WrapperError::Permanent(_)), "{err}");
        assert!(err.message().contains("404"));
    }

    #[test]
    fn latest_tracks_highest_version() {
        let mut api = RestSource::new("PlayersAPI");
        api.publish(players_v1());
        api.publish(Release {
            version: 3,
            format: Format::Json,
            body: "[]".to_string(),
            notes: String::new(),
        });
        assert_eq!(api.latest().unwrap().version, 3);
        assert_eq!(api.versions(), vec![1, 3]);
    }

    #[test]
    fn release_parses_json() {
        let v = players_v1().parse().unwrap();
        assert_eq!(
            v.at(0).unwrap().get("name").unwrap().as_str(),
            Some("Messi")
        );
    }

    #[test]
    fn release_parses_xml() {
        let release = Release {
            version: 1,
            format: Format::Xml,
            body: "<team><id>25</id></team>".to_string(),
            notes: String::new(),
        };
        let v = release.parse().unwrap();
        assert_eq!(v.get("id").unwrap().as_number().unwrap().as_i64(), Some(25));
    }

    #[test]
    fn release_parses_csv() {
        let release = Release {
            version: 1,
            format: Format::Csv,
            body: "id,name\n1,Spain\n".to_string(),
            notes: String::new(),
        };
        let v = release.parse().unwrap();
        assert_eq!(
            v.at(0).unwrap().get("name").unwrap().as_str(),
            Some("Spain")
        );
    }

    #[test]
    fn malformed_payload_is_error() {
        let release = Release {
            version: 1,
            format: Format::Json,
            body: "{oops".to_string(),
            notes: String::new(),
        };
        assert!(release.parse().is_err());
    }
}

//! The wrapper catalog: name → wrapper, usable by the federated executor.

use std::collections::BTreeMap;
use std::sync::Arc;

use mdm_relational::{Catalog, RelationProvider};

use crate::fault::FaultPlan;
use crate::wrapper::Wrapper;

/// A catalog of registered wrappers, keyed by wrapper name.
///
/// This is the bridge between MDM's metadata level (wrappers registered by
/// the data steward) and the execution level (relations scanned by rewritten
/// query plans). An attached [`FaultPlan`] is stamped onto every wrapper —
/// registered before or after — so a whole ecosystem turns flaky with one
/// call.
#[derive(Default, Debug, Clone)]
pub struct WrapperCatalog {
    wrappers: BTreeMap<String, Wrapper>,
    faults: Option<Arc<FaultPlan>>,
}

impl WrapperCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        WrapperCatalog::default()
    }

    /// Registers a wrapper under its signature name. Returns the previous
    /// wrapper when one with the same name was registered.
    pub fn register(&mut self, mut wrapper: Wrapper) -> Option<Wrapper> {
        wrapper.set_fault_plan(self.faults.clone());
        self.wrappers.insert(wrapper.name().to_string(), wrapper)
    }

    /// Attaches (or with `None` detaches) a fault schedule, restamping
    /// every registered wrapper.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
        for wrapper in self.wrappers.values_mut() {
            wrapper.set_fault_plan(self.faults.clone());
        }
    }

    /// The attached fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Removes a wrapper by name.
    pub fn unregister(&mut self, name: &str) -> Option<Wrapper> {
        self.wrappers.remove(name)
    }

    /// The wrapper registered under `name`.
    pub fn get(&self, name: &str) -> Option<&Wrapper> {
        self.wrappers.get(name)
    }

    /// All registered wrapper names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.wrappers.keys().map(String::as_str).collect()
    }

    /// All wrappers reading from the given data source.
    pub fn for_source(&self, source: &str) -> Vec<&Wrapper> {
        self.wrappers
            .values()
            .filter(|w| w.source() == source)
            .collect()
    }

    /// Number of registered wrappers.
    pub fn len(&self) -> usize {
        self.wrappers.len()
    }

    /// True when no wrapper is registered.
    pub fn is_empty(&self) -> bool {
        self.wrappers.is_empty()
    }
}

impl Catalog for WrapperCatalog {
    fn provider(&self, name: &str) -> Option<&dyn RelationProvider> {
        self.wrappers.get(name).map(|w| w as &dyn RelationProvider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::{Format, Release};
    use crate::wrapper::Signature;
    use mdm_relational::{Executor, Plan};

    fn wrapper(name: &str, source: &str, version: u32) -> Wrapper {
        Wrapper::identity_over_release(
            Signature::new(name, ["id", "name"]).unwrap(),
            source,
            Release {
                version,
                format: Format::Json,
                body: format!(r#"[{{"id":{version},"name":"row-{name}"}}]"#),
                notes: String::new(),
            },
        )
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut catalog = WrapperCatalog::new();
        catalog.register(wrapper("w1", "A", 1));
        catalog.register(wrapper("w2", "A", 2));
        catalog.register(wrapper("w3", "B", 1));
        assert_eq!(catalog.len(), 3);
        assert_eq!(catalog.names(), vec!["w1", "w2", "w3"]);
        assert_eq!(catalog.for_source("A").len(), 2);
        assert!(catalog.get("w1").is_some());
        assert!(catalog.get("nope").is_none());
    }

    #[test]
    fn reregistering_replaces() {
        let mut catalog = WrapperCatalog::new();
        assert!(catalog.register(wrapper("w1", "A", 1)).is_none());
        let old = catalog.register(wrapper("w1", "A", 2)).unwrap();
        assert_eq!(old.version(), 1);
        assert_eq!(catalog.get("w1").unwrap().version(), 2);
    }

    #[test]
    fn executor_scans_wrappers_through_catalog() {
        let mut catalog = WrapperCatalog::new();
        catalog.register(wrapper("w1", "A", 1));
        let table = Executor::new(&catalog).run(&Plan::scan("w1")).unwrap();
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows()[0][1], mdm_relational::Value::str("row-w1"));
    }

    #[test]
    fn fault_plan_stamps_existing_and_future_wrappers() {
        let mut catalog = WrapperCatalog::new();
        catalog.register(wrapper("w1", "A", 1));
        catalog.set_fault_plan(Some(Arc::new(FaultPlan::seeded(4).kill("w1").kill("w2"))));
        catalog.register(wrapper("w2", "B", 1));
        assert!(catalog.get("w1").unwrap().rows().is_err());
        assert!(catalog.get("w2").unwrap().rows().is_err());
        catalog.set_fault_plan(None);
        assert!(catalog.get("w1").unwrap().rows().is_ok());
        assert!(catalog.fault_plan().is_none());
    }

    #[test]
    fn unregister_removes() {
        let mut catalog = WrapperCatalog::new();
        catalog.register(wrapper("w1", "A", 1));
        assert!(catalog.unregister("w1").is_some());
        assert!(catalog.is_empty());
    }
}

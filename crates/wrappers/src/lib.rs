//! # mdm-wrappers
//!
//! The wrapper framework of MDM plus simulated, *versioned* REST data
//! sources.
//!
//! In the paper, a wrapper is "the mechanism enabling access to the sources
//! (e.g., an API request or a database query)" with a signature
//! `w(a1, …, an)` exposing a flat 1NF relation (§2.2). The definition of the
//! wrapper body (a MongoDB query, a Spark job, …) is out of MDM's scope —
//! but a reproduction needs runnable sources, so this crate simulates them:
//!
//! * [`rest`] — an in-process REST-API stand-in: named endpoints serving
//!   JSON/XML/CSV payloads, with multiple *releases* (schema versions) per
//!   endpoint, replacing the external APIs (Facebook Graph API, football
//!   data providers) the paper ingests;
//! * [`wrapper`] — [`Wrapper`]: signature + payload bindings; parses the
//!   payload, flattens it to 1NF and exposes it as a
//!   [`RelationProvider`](mdm_relational::RelationProvider);
//! * [`registry`] — a catalog of wrappers for the federated executor;
//! * [`football`] — the motivational use case: Players (JSON), Teams (XML),
//!   Leagues (JSON), Countries (CSV) APIs, including the breaking v2 release
//!   of the Players API used in the "governance of evolution" demo scenario;
//! * [`evolution`] — a deterministic schema-evolution generator (rename /
//!   remove / add / nest / type-change) for robustness experiments;
//! * [`workload`] — parameterised synthetic ecosystems (N sources × M
//!   versions × R rows) for the scaling benches.

pub mod config;
pub mod diff;
pub mod evolution;
pub mod fault;
pub mod football;
pub mod registry;
pub mod rest;
pub mod workload;
pub mod wrapper;

pub use fault::{FaultPlan, InjectedFault};
pub use registry::WrapperCatalog;
pub use rest::{Format, Release, RestSource};
pub use wrapper::{Signature, Wrapper, WrapperError};

//! Deterministic fault injection for simulated REST sources.
//!
//! Real wrappers front external APIs that fail, stall, and ship malformed
//! payloads; our simulated [`crate::RestSource`] layer is perfectly
//! reliable, so the resilient execution path needs a way to *manufacture*
//! failure on demand. A [`FaultPlan`] is a seeded schedule of injected
//! faults: every fetch attempt a wrapper makes draws its fate from a
//! SplitMix64 stream keyed by `(seed, wrapper name, attempt number)` — the
//! same plan replayed against the same wrappers produces the same faults
//! in the same order, so every flaky-network scenario in the test suite is
//! reproducible from a single `u64`.
//!
//! Fault classes (mirroring what live REST APIs do):
//!
//! * **transient errors** — HTTP 503-style hiccups, drawn at a rate that
//!   can change as attempts accumulate ([`FaultPlan::transient_window`]);
//!   a retry is expected to succeed eventually;
//! * **terminal errors** — the source is gone ([`FaultPlan::kill`]) or
//!   dies after a number of fetches ([`FaultPlan::kill_after`]); retrying
//!   is pointless;
//! * **malformed payloads** — the body is truncated mid-stream, so the
//!   parser (not the transport) fails;
//! * **latency** — the response arrives, slowly; pure added delay.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a single injected fault does to one fetch attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// Sleep this long, then serve the payload normally.
    Latency(Duration),
    /// Fail this attempt with a retryable transport error.
    Transient,
    /// Fail every attempt from now on; the source is dead.
    Terminal,
    /// Serve a truncated body so payload parsing fails.
    Malformed,
}

/// One segment of a transient-error-rate schedule: `rate` applies to
/// attempt numbers `>= from_attempt` (1-based), until a later window
/// takes over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateWindow {
    pub from_attempt: u64,
    pub rate: f64,
}

/// A seeded, deterministic fault schedule shared by every wrapper it is
/// attached to. Cheap to clone behind an `Arc`; attempt counters are
/// interior-mutable so `&self` fetches from many threads stay consistent.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    transient: Vec<RateWindow>,
    malformed_rate: f64,
    latency: Option<(Duration, f64)>,
    /// wrapper → attempt number (1-based) from which every fetch fails
    /// terminally. `1` means dead on arrival.
    killed: BTreeMap<String, u64>,
    counters: Mutex<BTreeMap<String, u64>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) drawing from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The seed this plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets a flat transient-error rate for every attempt.
    pub fn transient_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate out of range");
        self.transient = vec![RateWindow {
            from_attempt: 1,
            rate,
        }];
        self
    }

    /// Appends a schedule window: from attempt `from_attempt` (1-based)
    /// onward, transient errors are drawn at `rate` — e.g. a source that
    /// is healthy for its first 10 fetches and flaky afterwards.
    pub fn transient_window(mut self, from_attempt: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate out of range");
        self.transient.push(RateWindow { from_attempt, rate });
        self.transient.sort_by_key(|w| w.from_attempt);
        self
    }

    /// Sets the probability that a served payload is truncated.
    pub fn malformed_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate out of range");
        self.malformed_rate = rate;
        self
    }

    /// Injects `delay` of extra latency with probability `rate`.
    pub fn latency(mut self, delay: Duration, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate out of range");
        self.latency = Some((delay, rate));
        self
    }

    /// Kills `wrapper` outright: every fetch fails terminally.
    pub fn kill(self, wrapper: impl Into<String>) -> Self {
        self.kill_after(wrapper, 0)
    }

    /// Lets `wrapper` serve `healthy_fetches` successful-eligible attempts,
    /// then kills it.
    pub fn kill_after(mut self, wrapper: impl Into<String>, healthy_fetches: u64) -> Self {
        self.killed.insert(wrapper.into(), healthy_fetches + 1);
        self
    }

    /// Number of fetch attempts `wrapper` has made under this plan.
    pub fn attempts(&self, wrapper: &str) -> u64 {
        *self
            .counters
            .lock()
            .expect("fault counters poisoned")
            .get(wrapper)
            .unwrap_or(&0)
    }

    /// Registers one fetch attempt by `wrapper` and draws its fate.
    /// `None` means the attempt succeeds unimpeded.
    pub fn next_fault(&self, wrapper: &str) -> Option<InjectedFault> {
        let attempt = {
            let mut counters = self.counters.lock().expect("fault counters poisoned");
            let counter = counters.entry(wrapper.to_string()).or_insert(0);
            *counter += 1;
            *counter
        };
        if let Some(&dead_from) = self.killed.get(wrapper) {
            if attempt >= dead_from {
                return Some(InjectedFault::Terminal);
            }
        }
        let mut rng = self.rng_for(wrapper, attempt);
        let rate = self
            .transient
            .iter()
            .rev()
            .find(|w| attempt >= w.from_attempt)
            .map_or(0.0, |w| w.rate);
        if rate > 0.0 && rng.gen_bool(rate) {
            return Some(InjectedFault::Transient);
        }
        if self.malformed_rate > 0.0 && rng.gen_bool(self.malformed_rate) {
            return Some(InjectedFault::Malformed);
        }
        if let Some((delay, rate)) = self.latency {
            if rate > 0.0 && rng.gen_bool(rate) {
                return Some(InjectedFault::Latency(delay));
            }
        }
        None
    }

    /// Forgets all attempt counters (a fresh run of the same schedule).
    pub fn reset(&self) {
        self.counters
            .lock()
            .expect("fault counters poisoned")
            .clear();
    }

    fn rng_for(&self, wrapper: &str, attempt: u64) -> StdRng {
        // FNV-1a over the wrapper name, mixed with the seed and attempt, so
        // each (wrapper, attempt) pair gets an independent draw stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in wrapper.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(
            self.seed
                .wrapping_add(hash)
                .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

/// Truncates a payload body the way a dropped connection does: keeps the
/// first half (at least one byte) on a UTF-8 boundary.
pub fn truncate_body(body: &str) -> String {
    let mut cut = (body.len() / 2).max(1).min(body.len());
    while cut < body.len() && !body.is_char_boundary(cut) {
        cut += 1;
    }
    body[..cut].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::seeded(42);
        for _ in 0..100 {
            assert_eq!(plan.next_fault("w1"), None);
        }
        assert_eq!(plan.attempts("w1"), 100);
        assert_eq!(plan.attempts("w2"), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::seeded(7).transient_rate(0.4).malformed_rate(0.2);
        let b = FaultPlan::seeded(7).transient_rate(0.4).malformed_rate(0.2);
        let draws_a: Vec<_> = (0..200).map(|_| a.next_fault("w1")).collect();
        let draws_b: Vec<_> = (0..200).map(|_| b.next_fault("w1")).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|f| f == &Some(InjectedFault::Transient)));
        assert!(draws_a.iter().any(|f| f == &Some(InjectedFault::Malformed)));
        assert!(draws_a.iter().any(Option::is_none));
    }

    #[test]
    fn different_wrappers_draw_independently() {
        let plan = FaultPlan::seeded(9).transient_rate(0.5);
        let w1: Vec<_> = (0..64).map(|_| plan.next_fault("w1")).collect();
        plan.reset();
        let w2: Vec<_> = (0..64).map(|_| plan.next_fault("w2")).collect();
        assert_ne!(w1, w2, "streams should be keyed by wrapper name");
    }

    #[test]
    fn kill_is_terminal_forever() {
        let plan = FaultPlan::seeded(1).kill("w3");
        for _ in 0..5 {
            assert_eq!(plan.next_fault("w3"), Some(InjectedFault::Terminal));
        }
        assert_eq!(plan.next_fault("w1"), None);
    }

    #[test]
    fn kill_after_allows_healthy_fetches_first() {
        let plan = FaultPlan::seeded(1).kill_after("w1", 2);
        assert_eq!(plan.next_fault("w1"), None);
        assert_eq!(plan.next_fault("w1"), None);
        assert_eq!(plan.next_fault("w1"), Some(InjectedFault::Terminal));
        assert_eq!(plan.next_fault("w1"), Some(InjectedFault::Terminal));
    }

    #[test]
    fn rate_schedule_switches_windows() {
        // 0% for the first 50 attempts, 100% afterwards.
        let plan = FaultPlan::seeded(3)
            .transient_window(1, 0.0)
            .transient_window(51, 1.0);
        for _ in 0..50 {
            assert_eq!(plan.next_fault("w"), None);
        }
        for _ in 0..10 {
            assert_eq!(plan.next_fault("w"), Some(InjectedFault::Transient));
        }
    }

    #[test]
    fn latency_fault_carries_delay() {
        let plan = FaultPlan::seeded(5).latency(Duration::from_millis(40), 1.0);
        assert_eq!(
            plan.next_fault("w"),
            Some(InjectedFault::Latency(Duration::from_millis(40)))
        );
    }

    #[test]
    fn truncation_breaks_json() {
        let body = r#"[{"id":1,"name":"Messi"},{"id":2,"name":"Ramos"}]"#;
        let cut = truncate_body(body);
        assert!(cut.len() < body.len());
        assert!(mdm_dataform::json::parse(&cut).is_err());
        assert_eq!(truncate_body("ab"), "a");
    }
}

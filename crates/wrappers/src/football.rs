//! The motivational use case: European football data served by four
//! independent REST APIs (paper §1, Figures 1–2).
//!
//! * **Players API** — JSON. v1 has the flat schema of Figure 2; the v2
//!   release introduces the breaking changes of the demo's
//!   "governance of evolution" scenario (§3): `name` → `full_name`,
//!   `preferred_foot` → `foot`, `rating` dropped, the team reference nested
//!   under `team.id`, and a new `nationality` field. Crucially, **v1 and v2
//!   serve disjoint subsets of the players** (old records stay on the old
//!   endpoint), so only a query spanning *both* versions is complete —
//!   exactly the situation MDM's LAV rewriting is built to handle.
//! * **Teams API** — XML (Figure 2's `<team>` payload), with league links.
//! * **Leagues API** — JSON.
//! * **Countries API** — CSV.
//!
//! The well-known rows of the paper's Table 1 (Messi / Lewandowski /
//! Ibrahimovic and their teams) are always present; additional synthetic
//! rows are generated deterministically from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rest::{Format, Release, RestSource};
use crate::wrapper::{Signature, Wrapper};

/// Sizing and seeding for the generated ecosystem.
#[derive(Clone, Debug)]
pub struct FootballConfig {
    /// Synthetic teams beyond the three from Table 1.
    pub extra_teams: usize,
    /// Players generated per team (the three famous players are extra).
    pub players_per_team: usize,
    /// RNG seed; equal seeds give byte-identical payloads.
    pub seed: u64,
}

impl Default for FootballConfig {
    fn default() -> Self {
        FootballConfig {
            extra_teams: 5,
            players_per_team: 4,
            seed: 2018, // EDBT 2018
        }
    }
}

/// One generated player record (pre-serialisation).
#[derive(Clone, Debug)]
pub struct PlayerRecord {
    pub id: i64,
    pub name: String,
    pub height: f64,
    pub weight: i64,
    pub rating: i64,
    pub preferred_foot: &'static str,
    pub team_id: i64,
    pub country_id: i64,
}

/// One generated team record.
#[derive(Clone, Debug)]
pub struct TeamRecord {
    pub id: i64,
    pub name: String,
    pub short_name: String,
    pub league_id: i64,
}

impl FootballEcosystem {
    /// True when the player record is served by the v1 endpoint (older
    /// records stay there; newer ones — including Zlatan — moved to v2).
    pub fn served_on_v1(&self, player_id: i64) -> bool {
        player_id < self.version_split_id && player_id != 6178
    }
}

/// The full generated dataset plus the four endpoints.
#[derive(Clone, Debug)]
pub struct FootballEcosystem {
    pub players_api: RestSource,
    pub teams_api: RestSource,
    pub leagues_api: RestSource,
    pub countries_api: RestSource,
    pub players: Vec<PlayerRecord>,
    pub teams: Vec<TeamRecord>,
    /// `(id, name, country_id)` per league.
    pub leagues: Vec<(i64, String, i64)>,
    /// `(id, name)` per country.
    pub countries: Vec<(i64, String)>,
    /// Players with id below this ship on the v1 endpoint; the rest on v2.
    pub version_split_id: i64,
}

const COUNTRIES: &[&str] = &["Spain", "Germany", "England", "Italy", "France", "Sweden"];
const LEAGUES: &[(&str, usize)] = &[
    ("La Liga", 0),
    ("Bundesliga", 1),
    ("Premier League", 2),
    ("Serie A", 3),
    ("Ligue 1", 4),
    ("Allsvenskan", 5),
];
const FAMOUS: &[(&str, f64, i64, i64, &str, usize, usize)] = &[
    // (name, height, weight, rating, foot, team index, country index)
    ("Lionel Messi", 170.18, 159, 94, "left", 0, 0),
    ("Robert Lewandowski", 184.0, 176, 92, "right", 1, 1),
    ("Zlatan Ibrahimovic", 195.0, 209, 90, "right", 2, 5),
];
const BASE_TEAMS: &[(&str, &str, usize)] = &[
    // (name, short name, league index)
    ("FC Barcelona", "FCB", 0),
    ("Bayern Munich", "FCB2", 1),
    ("Manchester United", "MU", 2),
];
const FIRST_NAMES: &[&str] = &[
    "Andres",
    "Xavi",
    "Sergio",
    "Thomas",
    "Manuel",
    "Marcus",
    "David",
    "Paolo",
    "Gianluigi",
    "Antoine",
    "Olivier",
    "Henrik",
    "Fredrik",
    "Karim",
    "Luka",
    "Pedri",
];
const LAST_NAMES: &[&str] = &[
    "Iniesta",
    "Hernandez",
    "Ramos",
    "Muller",
    "Neuer",
    "Rashford",
    "Silva",
    "Maldini",
    "Buffon",
    "Griezmann",
    "Giroud",
    "Larsson",
    "Ljungberg",
    "Benzema",
    "Modric",
    "Gonzalez",
];

/// Builds the ecosystem with [`FootballConfig::default`].
pub fn build_default() -> FootballEcosystem {
    build(&FootballConfig::default())
}

/// Builds the four endpoints and all records.
pub fn build(config: &FootballConfig) -> FootballEcosystem {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let countries: Vec<(i64, String)> = COUNTRIES
        .iter()
        .enumerate()
        .map(|(i, name)| (i as i64 + 1, (*name).to_string()))
        .collect();
    let leagues: Vec<(i64, String, i64)> = LEAGUES
        .iter()
        .enumerate()
        .map(|(i, (name, country))| (i as i64 + 1, (*name).to_string(), *country as i64 + 1))
        .collect();

    let mut teams: Vec<TeamRecord> = BASE_TEAMS
        .iter()
        .enumerate()
        .map(|(i, (name, short, league))| TeamRecord {
            id: 25 + i as i64 * 2, // 25, 27, 29 — FCB keeps the paper's id 25
            name: (*name).to_string(),
            short_name: (*short).to_string(),
            league_id: *league as i64 + 1,
        })
        .collect();
    for i in 0..config.extra_teams {
        let league = rng.gen_range(0..leagues.len());
        let id = 100 + i as i64;
        teams.push(TeamRecord {
            id,
            name: format!("{} FC {}", COUNTRIES[league % COUNTRIES.len()], id),
            short_name: format!("T{id}"),
            league_id: leagues[league].0,
        });
    }

    let mut players: Vec<PlayerRecord> = Vec::new();
    for (i, (name, height, weight, rating, foot, team_index, country_index)) in
        FAMOUS.iter().enumerate()
    {
        players.push(PlayerRecord {
            id: 6176 + i as i64, // Messi keeps the paper's id 6176
            name: (*name).to_string(),
            height: *height,
            weight: *weight,
            rating: *rating,
            preferred_foot: foot,
            team_id: teams[*team_index].id,
            country_id: *country_index as i64 + 1,
        });
    }
    let mut next_id = 7000;
    for team in &teams {
        for _ in 0..config.players_per_team {
            let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
            let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
            players.push(PlayerRecord {
                id: next_id,
                name: format!("{first} {last}"),
                height: 165.0 + rng.gen_range(0..300) as f64 / 10.0,
                weight: 130 + rng.gen_range(0..90),
                rating: 60 + rng.gen_range(0..35),
                preferred_foot: if rng.gen_bool(0.25) { "left" } else { "right" },
                team_id: team.id,
                country_id: countries[rng.gen_range(0..countries.len())].0,
            });
            next_id += 1;
        }
    }

    // Old players stay on v1, newer ids move to the v2 endpoint. Zlatan
    // (id 6178) moves too: his record only exists on the new version, so
    // Table 1 is only complete when the rewriting spans both versions.
    let version_split_id = 7000 + (players.len() as i64 - 3) / 2;
    let on_v2 = |p: &&PlayerRecord| p.id >= version_split_id || p.id == 6178;
    let on_v1 = |p: &&PlayerRecord| !(p.id >= version_split_id || p.id == 6178);

    let mut players_api = RestSource::new("PlayersAPI");
    players_api.publish(Release {
        version: 1,
        format: Format::Json,
        body: players_v1_payload(players.iter().filter(on_v1)),
        notes: "initial schema (Figure 2)".to_string(),
    });
    players_api.publish(Release {
        version: 2,
        format: Format::Json,
        body: players_v2_payload(players.iter().filter(on_v2)),
        notes: "BREAKING: name→full_name, preferred_foot→foot, rating removed, \
                team_id nested under team.id, nationality added"
            .to_string(),
    });

    let mut teams_api = RestSource::new("TeamsAPI");
    teams_api.publish(Release {
        version: 1,
        format: Format::Xml,
        body: teams_payload(&teams),
        notes: "initial schema (Figure 2)".to_string(),
    });

    let mut leagues_api = RestSource::new("LeaguesAPI");
    leagues_api.publish(Release {
        version: 1,
        format: Format::Json,
        body: leagues_payload(&leagues),
        notes: "initial schema".to_string(),
    });

    let mut countries_api = RestSource::new("CountriesAPI");
    countries_api.publish(Release {
        version: 1,
        format: Format::Csv,
        body: countries_payload(&countries),
        notes: "initial schema".to_string(),
    });

    FootballEcosystem {
        players_api,
        teams_api,
        leagues_api,
        countries_api,
        players,
        teams,
        leagues,
        countries,
        version_split_id,
    }
}

fn players_v1_payload<'a>(players: impl Iterator<Item = &'a PlayerRecord>) -> String {
    let items: Vec<String> = players
        .map(|p| {
            format!(
                r#"{{"id":{},"name":"{}","height":{},"weight":{},"rating":{},"preferred_foot":"{}","team_id":{},"country_id":{}}}"#,
                p.id, p.name, p.height, p.weight, p.rating, p.preferred_foot, p.team_id,
                p.country_id
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn players_v2_payload<'a>(players: impl Iterator<Item = &'a PlayerRecord>) -> String {
    let items: Vec<String> = players
        .map(|p| {
            format!(
                r#"{{"id":{},"full_name":"{}","height":{},"weight":{},"foot":"{}","team":{{"id":{}}},"nationality":{}}}"#,
                p.id, p.name, p.height, p.weight, p.preferred_foot, p.team_id, p.country_id
            )
        })
        .collect();
    format!(r#"{{"players":[{}]}}"#, items.join(","))
}

fn teams_payload(teams: &[TeamRecord]) -> String {
    let mut out = String::from("<teams>");
    for t in teams {
        out.push_str(&format!(
            "<team><id>{}</id><name>{}</name><shortName>{}</shortName><leagueId>{}</leagueId></team>",
            t.id, t.name, t.short_name, t.league_id
        ));
    }
    out.push_str("</teams>");
    out
}

fn leagues_payload(leagues: &[(i64, String, i64)]) -> String {
    let items: Vec<String> = leagues
        .iter()
        .map(|(id, name, country)| {
            format!(r#"{{"id":{id},"name":"{name}","country_id":{country}}}"#)
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn countries_payload(countries: &[(i64, String)]) -> String {
    let mut out = String::from("id,name\n");
    for (id, name) in countries {
        out.push_str(&format!("{id},{name}\n"));
    }
    out
}

// ---------------------------------------------------------------------------
// The use case's wrappers
// ---------------------------------------------------------------------------

/// `w1(id, pName, height, weight, score, foot, teamId)` over Players v1 —
/// the exact signature of the paper's Figure 6, renames included.
pub fn w1_players_v1(eco: &FootballEcosystem) -> Wrapper {
    Wrapper::over_release(
        Signature::new(
            "w1",
            ["id", "pName", "height", "weight", "score", "foot", "teamId"],
        )
        .expect("static signature"),
        "PlayersAPI",
        eco.players_api.release(1).expect("v1 published").clone(),
        [
            ("id", "id"),
            ("pName", "name"),
            ("height", "height"),
            ("weight", "weight"),
            ("score", "rating"),
            ("foot", "preferred_foot"),
            ("teamId", "team_id"),
        ],
    )
    .expect("static bindings")
}

/// `w2(id, name, shortName)` over Teams v1 — Figure 6's second wrapper.
pub fn w2_teams(eco: &FootballEcosystem) -> Wrapper {
    Wrapper::over_release(
        Signature::new("w2", ["id", "name", "shortName"]).expect("static signature"),
        "TeamsAPI",
        eco.teams_api.release(1).expect("v1 published").clone(),
        [
            ("id", "team_id"),
            ("name", "team_name"),
            ("shortName", "team_shortName"),
        ],
    )
    .expect("static bindings")
}

/// `w3(id, pName, height, weight, foot, teamId, nationality)` over Players
/// v2 — registered in the governance-of-evolution scenario. Note the
/// *breaking* payload differences handled purely in bindings.
pub fn w3_players_v2(eco: &FootballEcosystem) -> Wrapper {
    Wrapper::over_release(
        Signature::new(
            "w3",
            [
                "id",
                "pName",
                "height",
                "weight",
                "foot",
                "teamId",
                "nationality",
            ],
        )
        .expect("static signature"),
        "PlayersAPI",
        eco.players_api.release(2).expect("v2 published").clone(),
        [
            ("id", "players_id"),
            ("pName", "players_full_name"),
            ("height", "players_height"),
            ("weight", "players_weight"),
            ("foot", "players_foot"),
            ("teamId", "players_team_id"),
            ("nationality", "players_nationality"),
        ],
    )
    .expect("static bindings")
}

/// `w4(id, name, countryId)` over Leagues v1.
pub fn w4_leagues(eco: &FootballEcosystem) -> Wrapper {
    Wrapper::over_release(
        Signature::new("w4", ["id", "name", "countryId"]).expect("static signature"),
        "LeaguesAPI",
        eco.leagues_api.release(1).expect("v1 published").clone(),
        [("id", "id"), ("name", "name"), ("countryId", "country_id")],
    )
    .expect("static bindings")
}

/// `w5(id, name)` over Countries v1.
pub fn w5_countries(eco: &FootballEcosystem) -> Wrapper {
    Wrapper::over_release(
        Signature::new("w5", ["id", "name"]).expect("static signature"),
        "CountriesAPI",
        eco.countries_api.release(1).expect("v1 published").clone(),
        [("id", "id"), ("name", "name")],
    )
    .expect("static bindings")
}

/// `w6(id, teamLeagueId)` over Teams v1 — a second wrapper over the Teams
/// source exposing the league link ("regardless of the number of wrappers
/// per source", §1).
pub fn w6_team_league(eco: &FootballEcosystem) -> Wrapper {
    Wrapper::over_release(
        Signature::new("w6", ["id", "leagueId"]).expect("static signature"),
        "TeamsAPI",
        eco.teams_api.release(1).expect("v1 published").clone(),
        [("id", "team_id"), ("leagueId", "team_leagueId")],
    )
    .expect("static bindings")
}

/// `w7(id, countryId)` over Players v1 — player nationality under the v1
/// schema, used by the "league of their nationality" exemplary query.
pub fn w7_player_country_v1(eco: &FootballEcosystem) -> Wrapper {
    Wrapper::over_release(
        Signature::new("w7", ["id", "countryId"]).expect("static signature"),
        "PlayersAPI",
        eco.players_api.release(1).expect("v1 published").clone(),
        [("id", "id"), ("countryId", "country_id")],
    )
    .expect("static bindings")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_relational::Value;

    #[test]
    fn generation_is_deterministic() {
        let a = build_default();
        let b = build_default();
        assert_eq!(
            a.players_api.release(1).unwrap().body,
            b.players_api.release(1).unwrap().body
        );
        assert_eq!(
            a.teams_api.release(1).unwrap().body,
            b.teams_api.release(1).unwrap().body
        );
    }

    #[test]
    fn famous_rows_are_present() {
        let eco = build_default();
        let names: Vec<&str> = eco.players.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"Lionel Messi"));
        assert!(names.contains(&"Robert Lewandowski"));
        assert!(names.contains(&"Zlatan Ibrahimovic"));
        let messi = eco
            .players
            .iter()
            .find(|p| p.name == "Lionel Messi")
            .unwrap();
        assert_eq!(messi.id, 6176);
        assert_eq!(messi.height, 170.18);
        assert_eq!(messi.team_id, 25);
    }

    #[test]
    fn w1_produces_figure6_rows() {
        let eco = build_default();
        let w1 = w1_players_v1(&eco);
        assert_eq!(
            w1.signature().to_string(),
            "w1(id, pName, height, weight, score, foot, teamId)"
        );
        let rows = w1.rows().unwrap();
        let messi = rows.iter().find(|r| r[0] == Value::Int(6176)).unwrap();
        assert_eq!(messi[1], Value::str("Lionel Messi"));
        assert_eq!(messi[5], Value::str("left"));
        assert_eq!(messi[6], Value::Int(25));
    }

    #[test]
    fn w2_reads_xml_teams() {
        let eco = build_default();
        let w2 = w2_teams(&eco);
        let rows = w2.rows().unwrap();
        let fcb = rows.iter().find(|r| r[0] == Value::Int(25)).unwrap();
        assert_eq!(fcb[1], Value::str("FC Barcelona"));
        assert_eq!(fcb[2], Value::str("FCB"));
    }

    #[test]
    fn version_split_is_disjoint_and_complete() {
        let eco = build_default();
        let v1_rows = w1_players_v1(&eco).rows().unwrap().len();
        let v2_rows = w3_players_v2(&eco).rows().unwrap().len();
        assert!(v1_rows > 0 && v2_rows > 0);
        assert_eq!(v1_rows + v2_rows, eco.players.len());
    }

    #[test]
    fn v2_wrapper_handles_breaking_changes() {
        let eco = build_default();
        let w3 = w3_players_v2(&eco);
        let rows = w3.rows().unwrap();
        assert!(!rows.is_empty());
        // Every row has a non-null name (bound to full_name) and teamId
        // (bound to the nested team.id).
        for row in rows {
            assert!(!row[1].is_null(), "pName null in {row:?}");
            assert!(!row[5].is_null(), "teamId null in {row:?}");
            assert!(!row[6].is_null(), "nationality null in {row:?}");
        }
        assert!(w3.dangling_bindings().unwrap().is_empty());
    }

    #[test]
    fn old_wrapper_over_new_release_dangles() {
        // The failure MDM governs: pointing w1's bindings at the v2 payload
        // leaves most of them dangling.
        let eco = build_default();
        let broken = Wrapper::over_release(
            Signature::new(
                "w1_broken",
                ["id", "pName", "height", "weight", "score", "foot", "teamId"],
            )
            .unwrap(),
            "PlayersAPI",
            eco.players_api.release(2).unwrap().clone(),
            [
                ("id", "id"),
                ("pName", "name"),
                ("height", "height"),
                ("weight", "weight"),
                ("score", "rating"),
                ("foot", "preferred_foot"),
                ("teamId", "team_id"),
            ],
        )
        .unwrap();
        let dangling = broken.dangling_bindings().unwrap();
        assert!(dangling.contains(&"pName"));
        assert!(dangling.contains(&"score"));
        assert!(dangling.contains(&"teamId"));
    }

    #[test]
    fn league_and_country_wrappers() {
        let eco = build_default();
        assert_eq!(w4_leagues(&eco).rows().unwrap().len(), eco.leagues.len());
        assert_eq!(
            w5_countries(&eco).rows().unwrap().len(),
            eco.countries.len()
        );
        let w6 = w6_team_league(&eco);
        let rows = w6.rows().unwrap();
        assert_eq!(rows.len(), eco.teams.len());
        assert!(rows.iter().all(|r| !r[1].is_null()));
    }

    #[test]
    fn sizes_scale_with_config() {
        let small = build(&FootballConfig {
            extra_teams: 0,
            players_per_team: 1,
            seed: 1,
        });
        let large = build(&FootballConfig {
            extra_teams: 20,
            players_per_team: 10,
            seed: 1,
        });
        assert!(large.players.len() > small.players.len());
        assert_eq!(small.teams.len(), 3);
        assert_eq!(large.teams.len(), 23);
    }
}

//! The schema-evolution generator.
//!
//! Models what the paper observes in the wild ("in the last year Facebook's
//! Graph API released four major versions affecting more than twenty
//! endpoints each, many of them breaking changes"): a stream of schema
//! changes applied to a source, each producing a new [`Release`].
//!
//! A [`SchemaSpec`] describes a flat record type; [`ChangeKind`]s transform
//! it. [`EvolvingSource`] owns the spec, applies a change, regenerates the
//! payload and publishes the next version — while remembering, per field,
//! the *lineage* (which original field a current field descends from), which
//! is what a data steward uses to re-bind wrappers after a release.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rest::{Format, Release, RestSource};

/// The primitive type of a field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldType {
    Int,
    Float,
    Text,
    Bool,
}

/// One field of a record schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldSpec {
    pub name: String,
    pub field_type: FieldType,
    /// The name this field had in version 1 (`None` for fields added later).
    pub origin: Option<String>,
}

/// A flat record schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaSpec {
    pub fields: Vec<FieldSpec>,
}

impl SchemaSpec {
    /// Builds a v1 schema; every field is its own origin.
    pub fn new(fields: impl IntoIterator<Item = (impl Into<String>, FieldType)>) -> Self {
        SchemaSpec {
            fields: fields
                .into_iter()
                .map(|(name, field_type)| {
                    let name = name.into();
                    FieldSpec {
                        origin: Some(name.clone()),
                        name,
                        field_type,
                    }
                })
                .collect(),
        }
    }

    /// The current field names.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldSpec> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// One schema change. Breaking-ness follows the survey taxonomy the paper
/// cites (Caruccio et al., *Synchronization of Queries and Views Upon Schema
/// Evolutions*): additions are non-breaking; renames, removals and type
/// changes break consumers bound to the old shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChangeKind {
    /// Add a new field (non-breaking).
    AddField { name: String, field_type: FieldType },
    /// Remove an existing field (breaking).
    RemoveField { name: String },
    /// Rename a field (breaking).
    RenameField { from: String, to: String },
    /// Change a field's type, e.g. Int → Text ids (breaking).
    ChangeType { name: String, to: FieldType },
}

impl ChangeKind {
    /// True when the change breaks consumers of the previous version.
    pub fn is_breaking(&self) -> bool {
        !matches!(self, ChangeKind::AddField { .. })
    }

    /// Applies the change to a schema.
    pub fn apply(&self, schema: &mut SchemaSpec) -> Result<(), EvolutionError> {
        match self {
            ChangeKind::AddField { name, field_type } => {
                if schema.field(name).is_some() {
                    return Err(EvolutionError(format!("field '{name}' already exists")));
                }
                schema.fields.push(FieldSpec {
                    name: name.clone(),
                    field_type: *field_type,
                    origin: None,
                });
                Ok(())
            }
            ChangeKind::RemoveField { name } => {
                let before = schema.fields.len();
                schema.fields.retain(|f| f.name != *name);
                if schema.fields.len() == before {
                    return Err(EvolutionError(format!("field '{name}' does not exist")));
                }
                Ok(())
            }
            ChangeKind::RenameField { from, to } => {
                if schema.field(to).is_some() {
                    return Err(EvolutionError(format!("field '{to}' already exists")));
                }
                match schema.fields.iter_mut().find(|f| f.name == *from) {
                    Some(field) => {
                        field.name = to.clone();
                        Ok(())
                    }
                    None => Err(EvolutionError(format!("field '{from}' does not exist"))),
                }
            }
            ChangeKind::ChangeType { name, to } => {
                match schema.fields.iter_mut().find(|f| f.name == *name) {
                    Some(field) => {
                        field.field_type = *to;
                        Ok(())
                    }
                    None => Err(EvolutionError(format!("field '{name}' does not exist"))),
                }
            }
        }
    }
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangeKind::AddField { name, .. } => write!(f, "ADD {name}"),
            ChangeKind::RemoveField { name } => write!(f, "REMOVE {name}"),
            ChangeKind::RenameField { from, to } => write!(f, "RENAME {from} → {to}"),
            ChangeKind::ChangeType { name, to } => write!(f, "RETYPE {name} → {to:?}"),
        }
    }
}

/// An error applying a change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvolutionError(pub String);

impl fmt::Display for EvolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evolution error: {}", self.0)
    }
}

impl std::error::Error for EvolutionError {}

/// A source whose schema evolves release by release.
#[derive(Clone, Debug)]
pub struct EvolvingSource {
    pub endpoint: RestSource,
    schema: SchemaSpec,
    version: u32,
    rows: usize,
    seed: u64,
    /// The change log: `(version introduced, change)`.
    pub history: Vec<(u32, ChangeKind)>,
}

impl EvolvingSource {
    /// Creates the source and publishes v1.
    pub fn new(name: impl Into<String>, schema: SchemaSpec, rows: usize, seed: u64) -> Self {
        let mut source = EvolvingSource {
            endpoint: RestSource::new(name),
            schema,
            version: 1,
            rows,
            seed,
            history: Vec::new(),
        };
        source.publish_current("initial release");
        source
    }

    /// The current schema.
    pub fn schema(&self) -> &SchemaSpec {
        &self.schema
    }

    /// The current version number.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Applies a change and publishes the next version.
    pub fn evolve(&mut self, change: ChangeKind) -> Result<&Release, EvolutionError> {
        change.apply(&mut self.schema)?;
        self.version += 1;
        self.history.push((self.version, change.clone()));
        self.publish_current(&change.to_string());
        Ok(self.endpoint.release(self.version).expect("just published"))
    }

    fn publish_current(&mut self, notes: &str) {
        let body = generate_payload(&self.schema, self.rows, self.seed ^ self.version as u64);
        self.endpoint.publish(Release {
            version: self.version,
            format: Format::Json,
            body,
            notes: notes.to_string(),
        });
    }

    /// For each current field, the v1 field it descends from (renames
    /// tracked through [`FieldSpec::origin`]). Added fields map to `None`.
    pub fn lineage(&self) -> BTreeMap<String, Option<String>> {
        self.schema
            .fields
            .iter()
            .map(|f| (f.name.clone(), f.origin.clone()))
            .collect()
    }
}

/// Generates a deterministic JSON array payload for a schema.
pub fn generate_payload(schema: &SchemaSpec, rows: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(rows);
    for i in 0..rows {
        let mut fields = Vec::with_capacity(schema.fields.len());
        for field in &schema.fields {
            let value = match field.field_type {
                // The field named "id" (or originating from it) is the key:
                // sequential so joins across versions line up.
                FieldType::Int if is_key(field) => i.to_string(),
                FieldType::Int => rng.gen_range(0..1000).to_string(),
                FieldType::Float => format!("{:.2}", rng.gen_range(0..10000) as f64 / 100.0),
                FieldType::Text if is_key(field) => format!("\"k{i}\""),
                FieldType::Text => format!("\"{}-{}\"", field.name, rng.gen_range(0..1000)),
                FieldType::Bool => rng.gen_bool(0.5).to_string(),
            };
            fields.push(format!("\"{}\":{}", field.name, value));
        }
        items.push(format!("{{{}}}", fields.join(",")));
    }
    format!("[{}]", items.join(","))
}

/// Key-like fields generate sequential values (row `i` gets value `i`) so
/// identifiers and foreign keys (`*_next` in the synthetic chain workloads)
/// join positionally across sources and versions. They are also protected
/// from destructive random changes.
fn is_key(field: &FieldSpec) -> bool {
    let key_name = |name: &str| name == "id" || name.ends_with("_next");
    key_name(&field.name) || field.origin.as_deref().is_some_and(key_name)
}

/// Draws a random applicable change for `schema`, never touching the key
/// field `id` (sources keep their identifiers; MDM requires joinable ids).
pub fn random_change(schema: &SchemaSpec, rng: &mut StdRng) -> ChangeKind {
    let non_key: Vec<&FieldSpec> = schema.fields.iter().filter(|f| !is_key(f)).collect();
    let choices = if non_key.is_empty() { 1 } else { 4 };
    match rng.gen_range(0..choices) {
        0 => ChangeKind::AddField {
            name: format!("f{}", rng.gen_range(10_000..100_000)),
            field_type: [FieldType::Int, FieldType::Float, FieldType::Text][rng.gen_range(0..3)],
        },
        1 => ChangeKind::RenameField {
            from: non_key[rng.gen_range(0..non_key.len())].name.clone(),
            to: format!("r{}", rng.gen_range(10_000..100_000)),
        },
        2 => ChangeKind::RemoveField {
            name: non_key[rng.gen_range(0..non_key.len())].name.clone(),
        },
        _ => ChangeKind::ChangeType {
            name: non_key[rng.gen_range(0..non_key.len())].name.clone(),
            to: FieldType::Text,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn player_schema() -> SchemaSpec {
        SchemaSpec::new([
            ("id", FieldType::Int),
            ("name", FieldType::Text),
            ("height", FieldType::Float),
            ("rating", FieldType::Int),
        ])
    }

    #[test]
    fn changes_apply() {
        let mut schema = player_schema();
        ChangeKind::RenameField {
            from: "name".to_string(),
            to: "full_name".to_string(),
        }
        .apply(&mut schema)
        .unwrap();
        ChangeKind::RemoveField {
            name: "rating".to_string(),
        }
        .apply(&mut schema)
        .unwrap();
        ChangeKind::AddField {
            name: "nationality".to_string(),
            field_type: FieldType::Int,
        }
        .apply(&mut schema)
        .unwrap();
        assert_eq!(
            schema.field_names(),
            vec!["id", "full_name", "height", "nationality"]
        );
        // Lineage survives the rename.
        assert_eq!(
            schema.field("full_name").unwrap().origin.as_deref(),
            Some("name")
        );
        assert_eq!(schema.field("nationality").unwrap().origin, None);
    }

    #[test]
    fn invalid_changes_rejected() {
        let mut schema = player_schema();
        assert!(ChangeKind::RemoveField {
            name: "nope".to_string()
        }
        .apply(&mut schema)
        .is_err());
        assert!(ChangeKind::RenameField {
            from: "nope".to_string(),
            to: "x".to_string()
        }
        .apply(&mut schema)
        .is_err());
        assert!(ChangeKind::RenameField {
            from: "name".to_string(),
            to: "height".to_string()
        }
        .apply(&mut schema)
        .is_err());
        assert!(ChangeKind::AddField {
            name: "name".to_string(),
            field_type: FieldType::Text
        }
        .apply(&mut schema)
        .is_err());
    }

    #[test]
    fn breaking_classification() {
        assert!(!ChangeKind::AddField {
            name: "x".to_string(),
            field_type: FieldType::Int
        }
        .is_breaking());
        assert!(ChangeKind::RemoveField {
            name: "x".to_string()
        }
        .is_breaking());
        assert!(ChangeKind::RenameField {
            from: "a".to_string(),
            to: "b".to_string()
        }
        .is_breaking());
    }

    #[test]
    fn evolving_source_publishes_versions() {
        let mut source = EvolvingSource::new("API", player_schema(), 10, 42);
        assert_eq!(source.version(), 1);
        source
            .evolve(ChangeKind::RenameField {
                from: "name".to_string(),
                to: "full_name".to_string(),
            })
            .unwrap();
        assert_eq!(source.version(), 2);
        assert_eq!(source.endpoint.versions(), vec![1, 2]);
        let v2 = source.endpoint.release(2).unwrap();
        assert!(v2.body.contains("full_name"));
        assert!(!v2.body.contains("\"name\""));
        assert_eq!(source.history.len(), 1);
    }

    #[test]
    fn lineage_maps_current_to_origin() {
        let mut source = EvolvingSource::new("API", player_schema(), 5, 1);
        source
            .evolve(ChangeKind::RenameField {
                from: "height".to_string(),
                to: "height_cm".to_string(),
            })
            .unwrap();
        let lineage = source.lineage();
        assert_eq!(lineage["height_cm"].as_deref(), Some("height"));
        assert_eq!(lineage["id"].as_deref(), Some("id"));
    }

    #[test]
    fn payload_is_deterministic_and_keyed() {
        let schema = player_schema();
        let a = generate_payload(&schema, 5, 7);
        let b = generate_payload(&schema, 5, 7);
        assert_eq!(a, b);
        let parsed = mdm_dataform::json::parse(&a).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), 5);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.get("id").unwrap().as_number().unwrap().as_i64(),
                Some(i as i64)
            );
        }
    }

    #[test]
    fn random_changes_always_apply() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut schema = player_schema();
        let mut applied = 0;
        for _ in 0..100 {
            let change = random_change(&schema, &mut rng);
            if change.apply(&mut schema).is_ok() {
                applied += 1;
            }
            // id must survive every change.
            assert!(schema.field("id").is_some());
        }
        assert!(applied > 50, "only {applied}/100 random changes applied");
    }
}

//! P15 — evolution churn: sustained analyst traffic over the head of a
//! long concept chain while the steward releases new wrapper versions over
//! the tail. A/B per cell: legacy coarse (epoch-equality) invalidation vs
//! surgical footprint-interval invalidation.
//!
//! Two cells:
//!
//! * **disjoint** — releases land ≥ 2 concepts away from anything the hot
//!   walks read. Coarse invalidation recompiles every plan after every
//!   release (hit rate ~0); surgical invalidation keeps them all hot
//!   (hit rate ≥ 0.95).
//! * **overlap** — mapping-only releases over a concept the hot walks DO
//!   read. Coarse recompiles from scratch; surgical repairs the cached
//!   plan by incremental UCQ extension (full rewrites stay at the warm-up
//!   count).
//!
//! Every cell asserts the served plan is byte-identical to a cold rewrite
//! before reporting. A final micro-bench times `PlanCache` insert+evict at
//! capacity 256 (the O(log n) LRU heap-order check of the satellite task).

use std::sync::Arc;
use std::time::Instant;

use mdm_core::synthetic::{chain_walk, concept_iri, feature_iri, register_synthetic_wrapper};
use mdm_core::{InvalidationMode, Mdm, PlanCache};
use mdm_wrappers::workload::{build, SyntheticEcosystem, WorkloadConfig};

/// Chain length; hot walks read concepts 0..3, releases land on 5..7.
const CONCEPTS: usize = 8;
/// Steward releases per cell.
const ROUNDS: usize = 24;
/// Hot walks replayed after every release (k = 1, 2, 3).
const HOT_WALKS: usize = 3;

fn ecosystem() -> SyntheticEcosystem {
    build(&WorkloadConfig {
        concepts: CONCEPTS,
        features_per_concept: 3,
        // v1 seeds the base system; the rest is the release supply for the
        // two churned sources (ROUNDS / 2 each).
        versions_per_source: 1 + ROUNDS / 2,
        rows_per_wrapper: 1,
        seed: 42,
    })
}

/// The ecosystem's global graph and sources with only the v1 wrapper of
/// each source registered — later versions are released during the run.
fn base_mdm(eco: &SyntheticEcosystem) -> Mdm {
    let mut mdm = Mdm::new();
    for c in 0..eco.config.concepts {
        let concept = concept_iri(c);
        mdm.define_concept(&concept).unwrap();
        for attribute in eco.concept_attributes(c) {
            let feature = feature_iri(c, &attribute);
            if attribute == "id" {
                mdm.define_identifier(&concept, &feature).unwrap();
            } else {
                mdm.define_feature(&concept, &feature).unwrap();
            }
        }
    }
    for c in 0..eco.config.concepts.saturating_sub(1) {
        mdm.define_relation(
            &concept_iri(c),
            &mdm_core::synthetic::relation_iri(c),
            &concept_iri(c + 1),
        )
        .unwrap();
    }
    for source in &eco.sources {
        mdm.add_source(source.source.endpoint.name()).unwrap();
        register_synthetic_wrapper(&mut mdm, eco, source.concept, source.wrappers[0].clone())
            .unwrap();
    }
    mdm
}

struct CellResult {
    hit_rate: f64,
    full_rewrites: u64,
    incremental_extensions: u64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[rank] as f64
}

/// One churn cell: warm the hot walks, then alternate releases over
/// `churned` sources with replays of every hot walk, timing each
/// `rewrite_cached`. The hit rate covers only the post-warm-up window.
fn run_cell(
    eco: &SyntheticEcosystem,
    mode: InvalidationMode,
    churned: &[usize],
    rounds: usize,
) -> CellResult {
    let mut mdm = base_mdm(eco);
    mdm.set_invalidation_mode(mode);
    for k in 1..=HOT_WALKS {
        mdm.rewrite_cached(&chain_walk(eco, k)).unwrap();
    }
    let warm = mdm.cache_stats();

    let mut next_version = vec![1usize; eco.config.concepts];
    let mut latencies_us: Vec<u64> = Vec::with_capacity(rounds * HOT_WALKS);
    for round in 0..rounds {
        let c = churned[round % churned.len()];
        let wrapper = eco.sources[c].wrappers[next_version[c]].clone();
        next_version[c] += 1;
        register_synthetic_wrapper(&mut mdm, eco, c, wrapper).unwrap();
        for k in 1..=HOT_WALKS {
            let walk = chain_walk(eco, k);
            let started = Instant::now();
            let served = mdm.rewrite_cached(&walk).unwrap();
            latencies_us.push(started.elapsed().as_micros() as u64);
            // No stale unions, ever: whatever the cache served matches a
            // cold rewrite at this very epoch.
            assert_eq!(
                format!("{:?}", *served),
                format!("{:?}", mdm.rewrite(&walk).unwrap()),
                "cached plan diverged from cold rewrite (mode {mode:?}, round {round}, k {k})"
            );
        }
    }

    let stats = mdm.cache_stats();
    let hits = stats.hits - warm.hits;
    let misses = stats.misses - warm.misses;
    latencies_us.sort_unstable();
    CellResult {
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        full_rewrites: stats.full_rewrites,
        incremental_extensions: stats.incremental_extensions,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    }
}

fn report(cell: &str, mode: &str, r: &CellResult) {
    println!(
        "{cell:<9} {mode:<9} {:>8.3} {:>9} {:>11} {:>9.1} {:>9.1}",
        r.hit_rate, r.full_rewrites, r.incremental_extensions, r.p50_us, r.p99_us
    );
}

/// Insert+evict and hot-lookup throughput of the plan cache at the default
/// capacity 256 — the regression guard for the O(log n) LRU order.
fn lru_micro_bench(eco: &SyntheticEcosystem) {
    let mdm = base_mdm(eco);
    let plan = Arc::new(mdm.rewrite(&chain_walk(eco, 2)).unwrap());
    let cache = PlanCache::new(256);
    const INSERTS: usize = 50_000;
    let started = Instant::now();
    for i in 0..INSERTS {
        cache.insert(format!("walk-{i}"), 1, Arc::clone(&plan));
    }
    let insert_ns = started.elapsed().as_nanos() as f64 / INSERTS as f64;
    let evictions = cache.stats().evictions;
    assert_eq!(evictions as usize, INSERTS - 256, "steady-state eviction");

    const LOOKUPS: usize = 200_000;
    let hot = format!("walk-{}", INSERTS - 1);
    let started = Instant::now();
    for _ in 0..LOOKUPS {
        assert!(cache.lookup(&hot, 1).hit().is_some());
    }
    let lookup_ns = started.elapsed().as_nanos() as f64 / LOOKUPS as f64;
    println!(
        "lru@256: insert+evict {insert_ns:.0} ns/op ({INSERTS} inserts), hot lookup {lookup_ns:.0} ns/op"
    );
}

fn main() {
    // `cargo bench` passes harness flags; a bare `--list` must not hang.
    if std::env::args().any(|a| a == "--list") {
        println!("evolution_churn_p15: bench");
        return;
    }

    println!(
        "P15: {CONCEPTS}-concept chain, {ROUNDS} releases/cell, hot walks k=1..={HOT_WALKS}, \
         rewrite_cached latency per replay"
    );
    println!(
        "{:<9} {:<9} {:>8} {:>9} {:>11} {:>9} {:>9}",
        "cell", "mode", "hit_rate", "full_rw", "incr_ext", "p50_us", "p99_us"
    );

    let eco = ecosystem();

    // Disjoint: releases over sources 5 and 6 (mappings reach 6 and 7) —
    // a gap of ≥ 2 from the hot walks' {C0, C1, C2}.
    let coarse = run_cell(&eco, InvalidationMode::Coarse, &[5, 6], ROUNDS);
    report("disjoint", "coarse", &coarse);
    let surgical = run_cell(&eco, InvalidationMode::Surgical, &[5, 6], ROUNDS);
    report("disjoint", "surgical", &surgical);
    assert!(
        coarse.hit_rate <= 0.05,
        "coarse invalidation must recompile after every release (hit rate {})",
        coarse.hit_rate
    );
    assert!(
        surgical.hit_rate >= 0.95,
        "surgical invalidation must keep disjoint plans hot (hit rate {})",
        surgical.hit_rate
    );

    // Overlap: mapping-only releases over source 1, which the k≥2 hot
    // walks read — surgical repairs by incremental extension. Half the
    // rounds: one source's version supply feeds the whole cell.
    let coarse = run_cell(&eco, InvalidationMode::Coarse, &[1], ROUNDS / 2);
    report("overlap", "coarse", &coarse);
    let surgical = run_cell(&eco, InvalidationMode::Surgical, &[1], ROUNDS / 2);
    report("overlap", "surgical", &surgical);
    assert_eq!(coarse.incremental_extensions, 0, "coarse never extends");
    assert!(
        surgical.incremental_extensions > 0,
        "overlapping mapping releases must extend incrementally"
    );
    assert!(
        surgical.full_rewrites < coarse.full_rewrites,
        "extension must avoid full rewrites ({} vs {})",
        surgical.full_rewrites,
        coarse.full_rewrites
    );

    lru_micro_bench(&eco);
}

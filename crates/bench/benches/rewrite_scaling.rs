//! P1/P2 — query-rewriting latency.
//!
//! P1: rewriting time vs. the number of coexisting wrapper versions of one
//!     source (the UCQ width grows linearly with versions).
//! P2: rewriting time vs. walk size (concepts in a chain, one version each).
//!
//! The demo paper reports no numbers; these benches characterise the
//! algorithm the paper demonstrates. Expected shape: near-linear in the
//! union width for P1, low-polynomial in walk size for P2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdm_bench::{chain_system, versions_system};

fn p1_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_rewrite_vs_versions");
    for versions in [1usize, 2, 4, 8, 16, 32, 64] {
        let system = versions_system(versions, 5);
        // Sanity: the rewriting really widens with versions.
        let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
        assert_eq!(rewriting.branch_count(), versions);
        group.bench_with_input(
            BenchmarkId::from_parameter(versions),
            &system,
            |b, system| {
                b.iter(|| std::hint::black_box(system.mdm.rewrite(&system.walk).expect("rewrites")))
            },
        );
    }
    group.finish();
}

fn p2_walk_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_rewrite_vs_walk_size");
    for concepts in [1usize, 2, 4, 8, 12, 16] {
        let system = chain_system(concepts, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(concepts),
            &system,
            |b, system| {
                b.iter(|| std::hint::black_box(system.mdm.rewrite(&system.walk).expect("rewrites")))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, p1_versions, p2_walk_size);
criterion_main!(benches);

//! P12 — replica scale-out under open-loop load (ISSUE 6).
//!
//! Questions this bench answers:
//!
//! 1. With thousands of idle keep-alive connections parked on the poll
//!    loop, what p50/p99 latency and shed-rate does a single node sustain
//!    at a fixed offered rate — and what does 1 primary + 2 WAL-shipping
//!    replicas sustain at the *same per-node shed threshold*?
//! 2. Does routing analyst traffic to replicas yield strictly more
//!    successful queries/sec than the single node once the offered rate
//!    passes the single node's shed knee?
//!
//! Methodology: an *open-loop* generator. A scheduler thread stamps
//! arrival deadlines at a fixed rate; sender threads pick jobs up and
//! issue the Figure 8 walk over keep-alive connections, round-robining
//! across the analyst-serving nodes. Latency is measured from the
//! *scheduled arrival*, not from send — so queueing delay when the
//! system falls behind is part of the number, as in any open-loop
//! harness. A steward churn thread re-defines a concept on the primary
//! every CHURN_INTERVAL, bumping the epoch (plan-cache invalidation +
//! replication records for the replicas to replay) for realism.
//!
//! Caveats: the whole cluster, the load generator and the idle
//! connections share one container CPU, so absolute numbers are noisy
//! and the replicas steal cycles from the primary. The issue asks for
//! 1k/10k-connection cells; both socket halves live in this process and
//! the container caps fds at 20 000, so the large cell holds 8k
//! connections (16k fds) — the honest maximum here.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mdm_core::{usecase, FsyncPolicy};
use mdm_replica::{ReplicaConfig, ReplicaNode};
use mdm_server::{client, serve, ServerConfig, ServerHandle};
use mdm_wrappers::football;

const FIG8_WALK_BODY: &str = r#"{"walk": "ex:Player { ex:playerName }\nsc:SportsTeam { ex:teamName }\nex:Player -ex:hasTeam-> sc:SportsTeam"}"#;
const CHURN_BODY: &str = r#"{"concept": "ex:Player"}"#;

/// Per-node shed threshold — identical across scenarios (the acceptance
/// criterion compares successful q/s "at the same shed threshold").
const MAX_PENDING: usize = 32;
/// Route workers per node, also identical across scenarios.
const WORKERS: usize = 2;
/// Steward churn cadence on the primary. Deliberately aggressive: each
/// mutation bumps the epoch, so a single mixed-workload node replans the
/// walk after *every* churn, while replicas receive the same mutations
/// batched by the long-poll and amortize the invalidation per batch.
const CHURN_INTERVAL: Duration = Duration::from_millis(5);
/// Measured window per cell.
const DURATION: Duration = Duration::from_secs(4);
/// Open-loop sender threads (shared by all nodes of a scenario). Chosen
/// so the in-flight concurrency the generator can aim at one node trips
/// the single node's `queued >= max_pending` check (90 >> 32) while the
/// same demand divided across three nodes stays just under each node's
/// threshold (30 < 32) — the quantity scale-out actually divides.
const SENDERS: usize = 90;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdm-p12-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn primary_server(tag: &str) -> ServerHandle {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).expect("use case builds");
    let config = ServerConfig {
        workers: WORKERS,
        max_pending: MAX_PENDING,
        data_dir: Some(temp_dir(tag)),
        fsync: FsyncPolicy::Never,
        ..ServerConfig::default()
    };
    serve(config, mdm).expect("primary binds")
}

fn start_replica(primary: &ServerHandle) -> mdm_replica::ReplicaHandle {
    let mut config = ReplicaConfig::new(primary.addr().to_string());
    config.server.workers = WORKERS;
    config.server.max_pending = MAX_PENDING;
    config.wait_ms = 200;
    config.min_backoff = Duration::from_millis(20);
    config.max_backoff = Duration::from_millis(200);
    ReplicaNode::start(config).expect("replica starts")
}

#[derive(Default)]
struct CellStats {
    issued: u64,
    latencies_us: Vec<u64>, // successful requests only
    shed: u64,
    errors: u64,
}

impl CellStats {
    fn absorb(&mut self, other: CellStats) {
        self.issued += other.issued;
        self.shed += other.shed;
        self.errors += other.errors;
        self.latencies_us.extend(other.latencies_us);
    }

    fn percentile(&mut self, p: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return f64::NAN;
        }
        self.latencies_us.sort_unstable();
        let rank = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        self.latencies_us[rank] as f64 / 1000.0
    }
}

/// Drives `DURATION` of open-loop load at `offered_rps` against
/// `analyst_nodes`, while a churn thread hammers `primary_addr`.
fn run_cell(
    primary_addr: std::net::SocketAddr,
    analyst_nodes: &[std::net::SocketAddr],
    offered_rps: u64,
) -> (CellStats, Duration) {
    // Warm each node's plan cache so the measured window starts cached.
    for node in analyst_nodes {
        let response = client::post_json(*node, "/analyst/query", FIG8_WALK_BODY)
            .expect("warm-up query sends");
        assert_eq!(response.status, 200, "warm-up failed: {}", response.body);
    }

    let stop_churn = Arc::new(AtomicBool::new(false));
    let churn = {
        let stop = Arc::clone(&stop_churn);
        std::thread::spawn(move || {
            let mut conn = client::Connection::open(primary_addr).expect("churn connects");
            while !stop.load(Ordering::Relaxed) {
                // Idempotent re-define: bumps the epoch, journals a record.
                if conn
                    .send("POST", "/steward/concepts", Some(CHURN_BODY))
                    .is_err()
                {
                    // Shed or dropped — reopen and keep churning.
                    if let Ok(fresh) = client::Connection::open(primary_addr) {
                        conn = fresh;
                    }
                }
                std::thread::sleep(CHURN_INTERVAL);
            }
        })
    };

    let total_jobs = offered_rps * DURATION.as_secs();
    let interval = Duration::from_nanos(1_000_000_000 / offered_rps);
    let (tx, rx) = mpsc::channel::<(u64, Instant)>();
    let rx = Arc::new(Mutex::new(rx));

    let start = Instant::now();
    let scheduler = std::thread::spawn(move || {
        for i in 0..total_jobs {
            let due = start + interval * i as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            // Open loop: deadlines never re-anchor; if the scheduler
            // stalls, the backlog is sent immediately and the latency
            // accounting charges the wait to the system under test.
            if tx.send((i, due)).is_err() {
                break;
            }
        }
    });

    let senders: Vec<_> = (0..SENDERS)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let nodes = analyst_nodes.to_vec();
            std::thread::spawn(move || {
                let mut conns: Vec<Option<client::Connection>> =
                    nodes.iter().map(|_| None).collect();
                let mut stats = CellStats::default();
                loop {
                    let job = { rx.lock().unwrap().recv() };
                    let Ok((i, due)) = job else { break };
                    let which = (i as usize) % nodes.len();
                    stats.issued += 1;
                    let conn = match conns[which].take() {
                        Some(conn) => conn,
                        None => match client::Connection::open(nodes[which]) {
                            Ok(conn) => conn,
                            Err(_) => {
                                stats.errors += 1;
                                continue;
                            }
                        },
                    };
                    let mut conn = conn;
                    match conn.send("POST", "/analyst/query", Some(FIG8_WALK_BODY)) {
                        Ok(response) if response.status == 200 => {
                            stats.latencies_us.push(due.elapsed().as_micros() as u64);
                            conns[which] = Some(conn); // keep-alive
                        }
                        Ok(response) if response.status == 503 => {
                            stats.shed += 1; // shed responses close the socket
                        }
                        Ok(_) => stats.errors += 1,
                        Err(_) => stats.errors += 1,
                    }
                }
                stats
            })
        })
        .collect();

    scheduler.join().unwrap();
    let mut stats = CellStats::default();
    for sender in senders {
        stats.absorb(sender.join().unwrap());
    }
    let elapsed = start.elapsed();
    stop_churn.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    (stats, elapsed)
}

/// Parks `count` idle keep-alive connections across `nodes`, returning the
/// streams so they stay open for the cell's duration.
fn park_idle_connections(nodes: &[std::net::SocketAddr], count: usize) -> Vec<TcpStream> {
    (0..count)
        .map(|i| TcpStream::connect(nodes[i % nodes.len()]).expect("idle connection opens"))
        .collect()
}

fn report(scenario: &str, conns: usize, offered_rps: u64, mut stats: CellStats, elapsed: Duration) {
    let ok = stats.latencies_us.len() as u64;
    let ok_rps = ok as f64 / elapsed.as_secs_f64();
    let shed_rate = stats.shed as f64 / stats.issued.max(1) as f64 * 100.0;
    let p50 = stats.percentile(0.50);
    let p99 = stats.percentile(0.99);
    println!(
        "{scenario:<11} {conns:>6} {offered_rps:>8} {issued:>8} {ok:>8} {shed:>6} {err:>5} {ok_rps:>9.0} {shed_rate:>7.1}% {p50:>8.2} {p99:>8.2}",
        issued = stats.issued,
        shed = stats.shed,
        err = stats.errors,
    );
}

fn main() {
    // `cargo bench` passes harness flags; a bare `--list` must not hang.
    if std::env::args().any(|a| a == "--list") {
        println!("replication_p12: bench");
        return;
    }

    println!(
        "P12: open-loop Figure-8 load, steward churn every {}ms, {} senders, {}s/cell",
        CHURN_INTERVAL.as_millis(),
        SENDERS,
        DURATION.as_secs()
    );
    println!(
        "per-node config: workers={WORKERS} max_pending={MAX_PENDING} (same shed threshold everywhere)"
    );
    println!(
        "{:<11} {:>6} {:>8} {:>8} {:>8} {:>6} {:>5} {:>9} {:>8} {:>8} {:>8}",
        "scenario",
        "conns",
        "offered",
        "issued",
        "ok",
        "shed",
        "err",
        "ok_rps",
        "shedpct",
        "p50_ms",
        "p99_ms"
    );

    // MDM_P12_RPS=6000,8000 overrides the per-cell offered rates.
    let rates: Vec<u64> = std::env::var("MDM_P12_RPS")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|r| r.trim().parse().ok())
                .collect()
        })
        .filter(|rates: &Vec<u64>| rates.len() == 2)
        .unwrap_or_else(|| vec![10_000, 10_000]);

    for (conns, offered_rps) in [(1_000usize, rates[0]), (8_000, rates[1])] {
        // --- single node: analysts and steward share the primary ---
        {
            let primary = primary_server("single");
            let nodes = vec![primary.addr()];
            let idle = park_idle_connections(&nodes, conns);
            let (stats, elapsed) = run_cell(primary.addr(), &nodes, offered_rps);
            report("single", conns, offered_rps, stats, elapsed);
            drop(idle);
            primary.shutdown();
        }

        // --- 1 primary + 2 replicas: analysts routed to the replicas ---
        {
            let primary = primary_server("repl");
            let r1 = start_replica(&primary);
            let r2 = start_replica(&primary);
            for replica in [&r1, &r2] {
                assert!(
                    replica.wait_for_epoch(1, Duration::from_secs(10)),
                    "replica bootstraps before the measured window"
                );
            }
            let nodes = vec![primary.addr(), r1.addr(), r2.addr()];
            let idle = park_idle_connections(&nodes, conns);
            let (stats, elapsed) = run_cell(primary.addr(), &nodes, offered_rps);
            report("replicated", conns, offered_rps, stats, elapsed);
            drop(idle);
            r1.shutdown();
            r2.shutdown();
            primary.shutdown();
        }
    }
}

//! P14 — optimizer scaling: cost-based vs. unoptimized execution of the
//! rewritten UCQ on synthetic ecosystems with 10–40× the wrappers/versions
//! of the paper's Table 1 use case (3 wrappers, ≤2 versions per source).
//!
//! The ecosystems are skewed — concept 0's source is small, the rest are
//! large — so the walk's natural join order puts the big input on the
//! hash-join build side, which is exactly what the cost pass reorders
//! (plus π-pruning the wide scans down to the joined/projected columns).
//!
//! Each point builds one system per optimize mode, runs a warm-up query so
//! the scan caches fill and the stats catalog observes real cardinalities,
//! then refreshes the stats epoch so the cost pipeline re-optimizes the
//! cached plan against those observations — the production flow. Outputs
//! are asserted byte-identical across modes before sampling.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdm_bench::{skewed_system, BenchSystem};
use mdm_core::RewriteOptions;
use mdm_relational::{OptimizeMode, StatsCatalog};

/// (concepts, versions per source, rows in source 0, rows per later
/// source): 15–40 coexisting wrapper versions against Table 1's three.
const POINTS: &[(usize, usize, usize, usize)] = &[
    (2, 10, 500, 50_000),
    (2, 20, 300, 20_000),
    (3, 5, 200, 20_000),
];

fn prepared(point: (usize, usize, usize, usize), mode: OptimizeMode) -> BenchSystem {
    let (concepts, versions, small, large) = point;
    let mut system = skewed_system(concepts, versions, small, large);
    // Wide ecosystems rewrite to thousands of union branches.
    system.mdm.set_options(RewriteOptions {
        max_branches: 10_000,
        ..RewriteOptions::default()
    });
    // An isolated catalog so parallel bench binaries can't cross-feed the
    // process-wide one.
    system.mdm.set_stats_catalog(Arc::new(StatsCatalog::new()));
    system.mdm.set_optimize(mode);
    system
}

fn optimizer_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("p14_optimizer_scaling");
    group.sample_size(10);
    for &point in POINTS {
        let (concepts, versions, small, large) = point;
        let label = format!("c{concepts}_v{versions}_r{small}x{large}");
        let mut renders: Vec<String> = Vec::new();
        for mode in [OptimizeMode::Off, OptimizeMode::Cost] {
            let system = prepared(point, mode);
            let warm = system
                .mdm
                .query_cached(&system.walk)
                .expect("query answers");
            renders.push(warm.table.sorted().render());
            system.mdm.refresh_stats();
            group.bench_with_input(
                BenchmarkId::new(mode.as_str(), &label),
                &system,
                |b, system| {
                    b.iter(|| {
                        std::hint::black_box(
                            system
                                .mdm
                                .query_cached(&system.walk)
                                .expect("query answers"),
                        )
                    })
                },
            );
        }
        assert_eq!(
            renders[0], renders[1],
            "optimized output must be byte-identical ({label})"
        );
    }
    group.finish();
}

criterion_group!(benches, optimizer_scaling);
criterion_main!(benches);

//! P10 — durability cost and recovery time of the metadata journal.
//!
//! Two questions the `mdm-store` WAL raises in practice:
//!
//! 1. **What does an acknowledged steward mutation cost** under each fsync
//!    policy? `always` pays one `fsync` per append (the crash-safe
//!    default), `interval` batches syncs on a timer, `never` leaves
//!    flushing to the OS. The spread between them is the price of the
//!    durability guarantee, not of the journal itself.
//! 2. **How long is restart blocked on recovery** as the journal grows?
//!    Recovery = read snapshot + replay WAL; it is linear in the number of
//!    un-compacted records, which is exactly the argument for compaction.
//!    Measured at 1k / 10k / 100k records.
//!
//! Numbers from a container are noisy: `fsync` latency depends entirely on
//! the host's storage stack (an overlayfs on NVMe behaves nothing like a
//! laptop SSD or a CI tmpfs). Treat relative spreads as meaningful, the
//! absolute microseconds as environment-specific.

use std::path::PathBuf;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdm_core::{FsyncPolicy, Mdm, MetaStore, MutationOp};

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdm-bench-durability-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn concept_op(n: usize) -> MutationOp {
    MutationOp::DefineConcept {
        concept: format!("http://example.org/bench/C{n}"),
    }
}

/// Appends through the full journal path (Mdm mutator → sink → WAL) so the
/// measurement includes encoding, not just the raw file write.
fn p10_append_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("p10_append_latency_vs_fsync");
    group.sample_size(30);
    let policies = [
        ("always", FsyncPolicy::Always),
        (
            "interval_100ms",
            FsyncPolicy::Interval(Duration::from_millis(100)),
        ),
        ("never", FsyncPolicy::Never),
    ];
    for (name, policy) in policies {
        let dir = bench_dir(&format!("append-{name}"));
        let (_meta, mut mdm, _) =
            MetaStore::attach(&dir, policy, Mdm::new()).expect("store attaches");
        let mut serial = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                serial += 1;
                concept_op(serial)
                    .apply(&mut mdm)
                    .expect("mutation applies");
            })
        });
        drop((_meta, mdm));
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Builds a WAL of `records` mutations once, then times cold recovery
/// (`MetaStore::attach` on a fresh `Mdm`) over it.
fn p10_recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("p10_recovery_time_vs_wal_length");
    group.sample_size(10);
    for records in [1_000usize, 10_000, 100_000] {
        let dir = bench_dir(&format!("recover-{records}"));
        {
            // Seed with `never`: we only need the bytes on disk, not the
            // fsync-per-record cost of writing them.
            let (_meta, mut mdm, _) =
                MetaStore::attach(&dir, FsyncPolicy::Never, Mdm::new()).expect("store attaches");
            for n in 0..records {
                concept_op(n).apply(&mut mdm).expect("mutation applies");
            }
            _meta.sync().expect("seed WAL flushes");
        }
        group.bench_with_input(BenchmarkId::from_parameter(records), &dir, |b, dir| {
            b.iter(|| {
                let (_meta, mdm, report) = MetaStore::attach(dir, FsyncPolicy::Never, Mdm::new())
                    .expect("recovery succeeds");
                assert_eq!(report.replayed as usize, records);
                std::hint::black_box(mdm)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, p10_append_latency, p10_recovery_time);
criterion_main!(benches);

//! P5 — SPARQL BGP matching vs. graph size.
//!
//! MDM's metadata introspection (mapping discovery, UI views) runs SPARQL
//! over the BDI ontology itself; this bench sizes that path. The global
//! graph is synthesised as `n` concepts × 5 features; the query is a
//! two-pattern join shaped like the ones `mdm-core` issues.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdm_rdf::{Dataset, Graph, Term};

fn metadata_graph(concepts: usize) -> Dataset {
    let mut graph = Graph::new();
    let rdf_type = mdm_rdf::vocab::rdf::TYPE.term();
    let concept_class = mdm_rdf::vocab::bdi::CONCEPT.term();
    let has_feature = mdm_rdf::vocab::bdi::HAS_FEATURE.term();
    for c in 0..concepts {
        let concept = Term::iri(format!("http://e.x/C{c}"));
        graph.insert((concept.clone(), rdf_type.clone(), concept_class.clone()));
        for f in 0..5 {
            let feature = Term::iri(format!("http://e.x/C{c}/f{f}"));
            graph.insert((concept.clone(), has_feature.clone(), feature));
        }
    }
    let mut dataset = Dataset::new();
    dataset.default_graph_mut().extend_from(&graph);
    dataset
}

const QUERY: &str = "SELECT ?c ?f WHERE { ?c a G:Concept . ?c G:hasFeature ?f . }";

fn p5_bgp_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("p5_sparql_bgp_vs_graph_size");
    for concepts in [20usize, 200, 2_000] {
        let dataset = metadata_graph(concepts);
        // Sanity: result set has concepts × 5 rows.
        let results = mdm_sparql::execute(QUERY, &dataset).expect("evaluates");
        assert_eq!(results.len(), concepts * 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(concepts * 6), // ≈ triples
            &dataset,
            |b, dataset| {
                b.iter(|| std::hint::black_box(mdm_sparql::execute(QUERY, dataset).unwrap()))
            },
        );
    }
    group.finish();
}

fn p5_parse_only(c: &mut Criterion) {
    c.bench_function("p5_sparql_parse", |b| {
        b.iter(|| std::hint::black_box(mdm_sparql::parse_query(QUERY).unwrap()))
    });
}

criterion_group!(benches, p5_bgp_matching, p5_parse_only);
criterion_main!(benches);

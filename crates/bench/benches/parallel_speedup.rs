//! P9 — parallel execution speedup vs. branch count and data size.
//!
//! Executes version-widened UCQs (the P1 shape: one concept, `versions`
//! coexisting wrapper versions, so the union width equals the version
//! count) under worker pools of 1, 2, 4 and 8 threads. Pool size 1 is the
//! sequential baseline; the ratio to it is the speedup reported in
//! EXPERIMENTS.md. Every configuration runs the same plan through the same
//! executor — only the pool differs — and results are byte-identical by
//! construction (asserted once per configuration before sampling).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mdm_bench::versions_system;
use mdm_relational::{ExecOptions, Executor, Pool};

fn p9_parallel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("p9_parallel_speedup");
    group.sample_size(20);
    for branches in [2usize, 4, 8] {
        for rows in [1_000usize, 10_000] {
            let system = versions_system(branches, rows);
            let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
            let baseline = Executor::with_options(system.mdm.catalog(), ExecOptions::sequential())
                .run(&rewriting.plan)
                .expect("executes");
            for pool_size in [1usize, 2, 4, 8] {
                let pool = Arc::new(Pool::new(pool_size));
                let options = ExecOptions {
                    pool: Some(Arc::clone(&pool)),
                    ..ExecOptions::default()
                };
                let parallel = Executor::with_options(system.mdm.catalog(), options.clone())
                    .run(&rewriting.plan)
                    .expect("executes");
                assert_eq!(baseline, parallel, "pool must not change the answer");
                group.throughput(Throughput::Elements((branches * rows) as u64));
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("branches={branches}/rows={rows}"),
                        format!("pool={pool_size}"),
                    ),
                    &options,
                    |b, options| {
                        b.iter(|| {
                            std::hint::black_box(
                                Executor::with_options(system.mdm.catalog(), options.clone())
                                    .run(&rewriting.plan)
                                    .expect("executes"),
                            )
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, p9_parallel_speedup);
criterion_main!(benches);

//! P4 — federated execution cost vs. data size.
//!
//! Executes the Figure 8-shaped two-concept UCQ (two versions per source,
//! i.e. a 4-branch union of joins) while the rows-per-wrapper grow. The
//! paper stages wrapper outputs in SQLite; this measures our native engine
//! on the same plan shape. Expected: near-linear in total input rows (hash
//! joins dominate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mdm_bench::mixed_system;

fn p4_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("p4_execution_vs_rows");
    group.sample_size(20);
    for rows in [100usize, 1_000, 10_000, 100_000] {
        let system = mixed_system(2, 2, rows);
        let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(rows),
            &(&system, rewriting),
            |b, (system, rewriting)| {
                b.iter(|| {
                    std::hint::black_box(
                        mdm_relational::Executor::new(system.mdm.catalog())
                            .run(&rewriting.plan)
                            .expect("executes"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, p4_execution);
criterion_main!(benches);

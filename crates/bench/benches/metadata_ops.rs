//! P7 — metadata-management operations at scale.
//!
//! MDM is a *metadata* management system: registration, mapping suggestion
//! and snapshot/restore are its hottest steward paths. This bench sizes
//! them on ecosystems of growing wrapper counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdm_core::synthetic::mdm_from_synthetic;
use mdm_core::Mdm;
use mdm_wrappers::workload::{build, WorkloadConfig};

fn config(versions: usize) -> WorkloadConfig {
    WorkloadConfig {
        concepts: 4,
        features_per_concept: 4,
        versions_per_source: versions,
        rows_per_wrapper: 1, // metadata benches don't need data
        seed: 3,
    }
}

fn registration(c: &mut Criterion) {
    let mut group = c.benchmark_group("p7_full_registration");
    for versions in [1usize, 4, 8] {
        let eco = build(&config(versions));
        group.bench_with_input(BenchmarkId::from_parameter(versions * 4), &eco, |b, eco| {
            b.iter(|| std::hint::black_box(mdm_from_synthetic(eco).expect("registers")))
        });
    }
    group.finish();
}

fn snapshot_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("p7_snapshot_restore");
    for versions in [1usize, 4, 8] {
        let eco = build(&config(versions));
        let mdm = mdm_from_synthetic(&eco).expect("registers");
        let document = mdm.snapshot();
        group.bench_with_input(
            BenchmarkId::new("snapshot", versions * 4),
            &mdm,
            |b, mdm| b.iter(|| std::hint::black_box(mdm.snapshot())),
        );
        group.bench_with_input(
            BenchmarkId::new("restore", versions * 4),
            &document,
            |b, document| {
                b.iter(|| std::hint::black_box(Mdm::restore_metadata(document).expect("restores")))
            },
        );
    }
    group.finish();
}

fn suggestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("p7_mapping_suggestion");
    for versions in [1usize, 4, 8] {
        let eco = build(&config(versions));
        let mdm = mdm_from_synthetic(&eco).expect("registers");
        let wrapper = mdm.ontology().wrappers()[0].local_name().to_string();
        group.bench_with_input(
            BenchmarkId::from_parameter(versions * 4),
            &(mdm, wrapper),
            |b, (mdm, wrapper)| {
                b.iter(|| {
                    std::hint::black_box(
                        mdm_core::assist::suggest_mapping(mdm.ontology(), wrapper)
                            .expect("suggests"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, registration, snapshot_restore, suggestion);
criterion_main!(benches);

//! P11 — zero-copy data-plane microbenchmarks.
//!
//! Three questions, all over the E6 shape (2 chained concepts × 2
//! coexisting versions → a 4-branch UCQ with joins, σ, π and δ):
//!
//! 1. **Batched vs. row-at-a-time** — the same plan drained with the
//!    default operator batch width against `batch_size = 1`, which
//!    degenerates every `next_block` into one-tuple batches. The batched
//!    path must never be slower, including at 1k rows where the adaptive
//!    width clamps down.
//! 2. **End-to-end UCQ throughput** — rows/sec through
//!    scan→join→σ→π→∪→δ at 1k and 10k rows per wrapper, the numbers
//!    recorded in EXPERIMENTS.md P11 (the 100k point is sampled with the
//!    `p4_point` bin, which is quicker to re-run back-to-back).
//! 3. **Intern-pool effectiveness** — the hit rate of the global string
//!    pool after warming, printed once per run for the P11 table.
//!
//! P13 adds the layout sweep: the same E6 plan drained through the columnar
//! plane (fixed-width term columns, vectorized kernels) against the
//! row-at-a-time plane at 1k/10k/100k rows per wrapper, the numbers recorded
//! in EXPERIMENTS.md P13.
//!
//! Outputs are asserted identical across drain widths and layouts before
//! sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mdm_bench::mixed_system;
use mdm_relational::{metrics, ExecOptions, Executor, Layout};

fn p11_data_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("p11_data_plane");
    group.sample_size(15);
    for rows in [1_000usize, 10_000] {
        let system = mixed_system(2, 2, rows);
        let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
        let batched = ExecOptions::sequential();
        let row_at_a_time = ExecOptions {
            batch_size: 1,
            ..ExecOptions::sequential()
        };
        // Warm the wrapper payload caches and prove the drain width does
        // not change a byte of the answer.
        let warm = Executor::with_options(system.mdm.catalog(), batched.clone())
            .run(&rewriting.plan)
            .expect("executes");
        let narrow = Executor::with_options(system.mdm.catalog(), row_at_a_time.clone())
            .run(&rewriting.plan)
            .expect("executes");
        assert_eq!(warm, narrow, "drain width must not change the answer");
        group.throughput(Throughput::Elements(warm.len() as u64));
        for (label, options) in [("batched", &batched), ("row_at_a_time", &row_at_a_time)] {
            group.bench_with_input(
                BenchmarkId::new(format!("e6_rows={rows}"), label),
                options,
                |b, options| {
                    b.iter(|| {
                        std::hint::black_box(
                            Executor::with_options(system.mdm.catalog(), options.clone())
                                .run(&rewriting.plan)
                                .expect("executes"),
                        )
                    })
                },
            );
        }
    }
    group.finish();

    // Intern-pool effectiveness after the warmed runs above: one line for
    // the EXPERIMENTS.md P11 table.
    let stats = metrics::snapshot();
    let lookups = stats.intern.hits + stats.intern.misses;
    let hit_rate = if lookups > 0 {
        100.0 * stats.intern.hits as f64 / lookups as f64
    } else {
        0.0
    };
    eprintln!(
        "p11 intern pool: {lookups} lookups, {hit_rate:.1}% hits, {} live entries, \
         {} bytes interned (0 lookups ⇒ every string fit the 22-byte inline buffer)",
        stats.intern.entries, stats.intern.interned_bytes,
    );
}

/// P13 — columnar vs. row layout over the E6 UCQ shape.
fn p13_layout_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("p13_layout_sweep");
    group.sample_size(10);
    for rows in [1_000usize, 10_000, 100_000] {
        let system = mixed_system(2, 2, rows);
        let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
        let columnar = ExecOptions {
            layout: Layout::Columnar,
            ..ExecOptions::default()
        };
        let row = ExecOptions {
            layout: Layout::Row,
            ..ExecOptions::default()
        };
        // Warm scan caches under both layouts and prove the layout does not
        // change a byte of the answer.
        let col_table = Executor::with_options(system.mdm.catalog(), columnar.clone())
            .run(&rewriting.plan)
            .expect("executes");
        let row_table = Executor::with_options(system.mdm.catalog(), row.clone())
            .run(&rewriting.plan)
            .expect("executes");
        assert_eq!(
            col_table.render(),
            row_table.render(),
            "layout must not change the answer"
        );
        group.throughput(Throughput::Elements(col_table.len() as u64));
        for (label, options) in [("columnar", &columnar), ("row", &row)] {
            group.bench_with_input(
                BenchmarkId::new(format!("e6_rows={rows}"), label),
                options,
                |b, options| {
                    b.iter(|| {
                        std::hint::black_box(
                            Executor::with_options(system.mdm.catalog(), options.clone())
                                .run(&rewriting.plan)
                                .expect("executes"),
                        )
                    })
                },
            );
        }
    }
    group.finish();

    let stats = metrics::snapshot();
    eprintln!(
        "p13 columnar plane: {} terms encoded, {} decoded, {} column bytes, \
         {} kernel invocations; dict {} entries / {} bytes",
        stats.columnar.encodes,
        stats.columnar.decodes,
        stats.columnar.column_bytes,
        stats.columnar.kernel_invocations,
        stats.dict.entries,
        stats.dict.bytes,
    );
}

criterion_group!(benches, p11_data_plane, p13_layout_sweep);
criterion_main!(benches);

//! Server throughput over loopback TCP: requests per second end to end
//! (parse → route → lock → answer → serialize), and the plan cache's
//! effect on OMQ latency — a cached query skips the three-phase rewriting
//! and only pays lock + execution + JSON, while every steward mutation
//! bumps the epoch and forces the next query to replan.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mdm_core::usecase;
use mdm_server::{client, serve, ServerConfig};
use mdm_wrappers::football;

const FIG8_WALK_BODY: &str = r#"{"walk": "ex:Player { ex:playerName }\nsc:SportsTeam { ex:teamName }\nex:Player -ex:hasTeam-> sc:SportsTeam"}"#;

fn football_server() -> mdm_server::ServerHandle {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).expect("use case builds");
    serve(ServerConfig::default(), mdm).expect("server binds")
}

fn server_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));

    // Floor: the cheapest route over a keep-alive connection.
    let server = football_server();
    let mut connection = client::Connection::open(server.addr()).expect("connects");
    group.bench_function("healthz", |b| {
        b.iter(|| {
            let response = connection.send("GET", "/healthz", None).expect("responds");
            assert_eq!(response.status, 200);
            std::hint::black_box(response.body.len())
        })
    });
    drop(connection);
    server.shutdown();

    // The Figure 8 OMQ with a warm plan cache: every request after the
    // first reuses the compiled UCQ.
    let server = football_server();
    let mut connection = client::Connection::open(server.addr()).expect("connects");
    connection
        .send("POST", "/analyst/query", Some(FIG8_WALK_BODY))
        .expect("warm-up query");
    group.bench_function("query_fig8_cached", |b| {
        b.iter(|| {
            let response = connection
                .send("POST", "/analyst/query", Some(FIG8_WALK_BODY))
                .expect("responds");
            assert_eq!(response.status, 200);
            std::hint::black_box(response.body.len())
        })
    });
    drop(connection);
    server.shutdown();

    // The same OMQ against a cold cache: an (idempotent) steward mutation
    // bumps the epoch before each query, so every request replans the
    // three rewriting phases before executing.
    let server = football_server();
    let mut connection = client::Connection::open(server.addr()).expect("connects");
    group.bench_function("query_fig8_uncached", |b| {
        b.iter(|| {
            connection
                .send(
                    "POST",
                    "/steward/concepts",
                    Some(r#"{"concept": "ex:Player"}"#),
                )
                .expect("epoch bump");
            let response = connection
                .send("POST", "/analyst/query", Some(FIG8_WALK_BODY))
                .expect("responds");
            assert_eq!(response.status, 200);
            std::hint::black_box(response.body.len())
        })
    });
    drop(connection);
    server.shutdown();

    group.finish();
}

criterion_group!(benches, server_throughput);
criterion_main!(benches);

//! P6 — ablations of the design choices DESIGN.md calls out.
//!
//! * **distinct on/off**: the δ wrapper of the UCQ (set vs bag semantics);
//! * **optimizer on/off**: predicate pushdown + join input ordering on the
//!   rewritten plan with a selective filter stacked on top;
//! * **minimal-cover pruning**: phase (b) with the minimality filter is
//!   compared against executing a deliberately redundant union.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdm_bench::mixed_system;
use mdm_core::RewriteOptions;
use mdm_relational::optimizer::{Optimizer, Statistics};
use mdm_relational::{Catalog, Executor, Expr, Plan};

fn distinct_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("p6_distinct_on_off");
    for distinct in [true, false] {
        let mut system = mixed_system(2, 2, 5_000);
        system.mdm.set_options(RewriteOptions {
            distinct,
            ..RewriteOptions::default()
        });
        let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
        group.bench_with_input(
            BenchmarkId::from_parameter(if distinct { "distinct" } else { "bag" }),
            &(&system, rewriting),
            |b, (system, rewriting)| {
                b.iter(|| {
                    std::hint::black_box(
                        Executor::new(system.mdm.catalog())
                            .run(&rewriting.plan)
                            .expect("executes"),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Statistics that know the wrapper row counts exactly.
struct ExactStats<'a> {
    catalog: &'a dyn Catalog,
}

impl Statistics for ExactStats<'_> {
    fn estimated_rows(&self, relation: &str) -> Option<usize> {
        self.catalog
            .provider(relation)
            .and_then(|p| p.rows().ok())
            .map(|rows| rows.len())
    }
}

fn optimizer_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("p6_optimizer_on_off");
    group.sample_size(20);
    let system = mixed_system(2, 1, 20_000);
    let catalog = system.mdm.catalog();
    let resolve = |name: &str| catalog.relation_schema(name);

    // A selective filter on a *base* wrapper column stacked above the join
    // — exactly what predicate pushdown exists to sink. (A filter on the
    // final projected names cannot sink through the π, so that variant
    // would measure nothing; cf. the unit tests in `relational::optimizer`.)
    use mdm_relational::schema::ColumnRef;
    let join = Plan::scan("s0_v1").join(
        Plan::scan("s1_v1"),
        vec![(
            ColumnRef::qualified("s0_v1", "c0_next"),
            ColumnRef::qualified("s1_v1", "id"),
        )],
    );
    let filtered = join.filter(Expr::col("s0_v1.c0_f0").eq(Expr::lit("c0_f0-1")));

    group.bench_function("unoptimized", |b| {
        b.iter(|| std::hint::black_box(Executor::new(catalog).run(&filtered).expect("runs")))
    });
    let stats = ExactStats { catalog };
    let optimized = Optimizer::new(&stats, &resolve).optimize(filtered.clone());
    assert_ne!(
        format!("{optimized}"),
        format!("{filtered}"),
        "pushdown must change the plan"
    );
    group.bench_function("optimized", |b| {
        b.iter(|| std::hint::black_box(Executor::new(catalog).run(&optimized).expect("runs")))
    });
    // Semantics check: both produce identical sorted results.
    let a = Executor::new(catalog)
        .run(&filtered)
        .expect("runs")
        .sorted();
    let b = Executor::new(catalog)
        .run(&optimized)
        .expect("runs")
        .sorted();
    assert_eq!(a, b);
    group.finish();
}

fn redundant_union_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("p6_minimal_covers_vs_redundant_union");
    let system = mixed_system(1, 2, 10_000);
    let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
    group.bench_function("minimal_ucq", |b| {
        b.iter(|| {
            std::hint::black_box(
                Executor::new(system.mdm.catalog())
                    .run(&rewriting.plan)
                    .expect("runs"),
            )
        })
    });
    // Without minimality, a cover could also join both versions — simulate
    // the redundant branch the pruning avoids.
    let redundant = Plan::union(vec![rewriting.plan.clone(), rewriting.plan.clone()]).distinct();
    group.bench_function("redundant_union", |b| {
        b.iter(|| {
            std::hint::black_box(
                Executor::new(system.mdm.catalog())
                    .run(&redundant)
                    .expect("runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    distinct_ablation,
    optimizer_ablation,
    redundant_union_ablation
);
criterion_main!(benches);

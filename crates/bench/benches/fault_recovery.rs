//! P8 — degraded-mode execution cost vs. transient-fault rate.
//!
//! Runs the evolved football UCQ (4 branches over w1/w2/w3) through
//! [`mdm_core::Mdm::query_degraded`] while the injected transient-error
//! rate grows: 0% (the fault-free baseline, measuring the pure overhead of
//! the retry/breaker plumbing), 10% and 30%. Backoff sleeps are zeroed so
//! the numbers isolate the *computational* cost of fault recovery —
//! re-fetching, re-parsing and completeness accounting — from wall-clock
//! sleeping. Expected: cost grows roughly with 1/(1-rate) (the expected
//! number of attempts per fetch).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdm_core::usecase;
use mdm_core::Mdm;
use mdm_relational::{Deadline, RetryPolicy};
use mdm_wrappers::football;
use mdm_wrappers::FaultPlan;

fn evolved_mdm() -> Mdm {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).expect("use case builds");
    usecase::register_players_v2(&mut mdm, &eco).expect("v2 registers");
    mdm
}

fn p8_fault_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("p8_fault_recovery_vs_rate");
    group.sample_size(20);
    let walk = usecase::figure8_walk();
    for rate_pct in [0u32, 10, 30] {
        let mut mdm = evolved_mdm();
        mdm.set_retry_policy(RetryPolicy {
            max_attempts: 16,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0xbe7c,
        });
        if rate_pct > 0 {
            mdm.set_fault_plan(Some(Arc::new(
                FaultPlan::seeded(0xfa17).transient_rate(f64::from(rate_pct) / 100.0),
            )));
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rate_pct}pct")),
            &mdm,
            |b, mdm| {
                b.iter(|| {
                    let answer = mdm
                        .query_degraded(&walk, Deadline::none())
                        .expect("transient faults are absorbed");
                    assert!(answer.completeness.is_complete());
                    std::hint::black_box(answer)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, p8_fault_recovery);
criterion_main!(benches);

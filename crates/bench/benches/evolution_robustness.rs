//! P3 — LAV vs GAV under schema evolution (latency side).
//!
//! The robustness *quality* numbers (completeness/survival rates) are
//! produced by `evaluation --exp p3`; this bench measures the latency cost
//! LAV pays for its robustness: LAV rewriting + execution vs the frozen GAV
//! unfolding, as release counts grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mdm_core::synthetic::{chain_walk, mdm_from_synthetic};
use mdm_relational::Executor;
use mdm_wrappers::workload::{build, evolve_all, WorkloadConfig};

fn lav_vs_gav(c: &mut Criterion) {
    let mut group = c.benchmark_group("p3_lav_vs_gav_latency");
    for releases in [0usize, 2, 4, 8] {
        let config = WorkloadConfig {
            concepts: 2,
            features_per_concept: 3,
            versions_per_source: 1,
            rows_per_wrapper: 100,
            seed: 7,
        };
        let mut eco = build(&config);
        evolve_all(&mut eco, releases, 1234);
        let mdm = mdm_from_synthetic(&eco).expect("builds");
        let walk = chain_walk(&eco, 2);
        // LAV may legitimately refuse over-wide unions; skip those points.
        if mdm.rewrite(&walk).is_err() {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("lav_rewrite_execute", releases),
            &(&mdm, &walk),
            |b, (mdm, walk)| b.iter(|| std::hint::black_box(mdm.query(walk).expect("answers"))),
        );
        let gav = mdm.derive_gav().expect("derives");
        group.bench_with_input(
            BenchmarkId::new("gav_rewrite_execute", releases),
            &(&mdm, &walk, &gav),
            |b, (mdm, walk, gav)| {
                b.iter(|| {
                    let (_, plan, _) = gav.rewrite(mdm.ontology(), walk).expect("unfolds");
                    std::hint::black_box(Executor::new(mdm.catalog()).run(&plan).expect("executes"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, lav_vs_gav);
criterion_main!(benches);

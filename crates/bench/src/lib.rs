//! Shared helpers for the MDM benchmark harness.
//!
//! Each bench (P1–P6 in DESIGN.md) needs configured systems of controlled
//! shape; these builders centralise that so the Criterion benches and the
//! `evaluation` binary agree on workloads.

use mdm_core::synthetic::{chain_walk, mdm_from_synthetic};
use mdm_core::{Mdm, Walk};
use mdm_wrappers::workload::{build, build_with_rows, WorkloadConfig};

/// A configured system plus the walk the experiment poses.
pub struct BenchSystem {
    pub mdm: Mdm,
    pub walk: Walk,
    pub label: String,
}

/// P1: one concept, `versions` wrapper versions — UCQ width scales with the
/// number of coexisting schema versions.
pub fn versions_system(versions: usize, rows: usize) -> BenchSystem {
    let config = WorkloadConfig {
        concepts: 1,
        features_per_concept: 3,
        versions_per_source: versions,
        rows_per_wrapper: rows,
        seed: 42,
    };
    let eco = build(&config);
    let mdm = mdm_from_synthetic(&eco).expect("synthetic system builds");
    let walk = chain_walk(&eco, 1);
    BenchSystem {
        mdm,
        walk,
        label: format!("versions={versions}"),
    }
}

/// P2: a chain of `concepts` single-version sources — rewriting cost scales
/// with walk size.
pub fn chain_system(concepts: usize, rows: usize) -> BenchSystem {
    let config = WorkloadConfig {
        concepts,
        features_per_concept: 3,
        versions_per_source: 1,
        rows_per_wrapper: rows,
        seed: 42,
    };
    let eco = build(&config);
    let mdm = mdm_from_synthetic(&eco).expect("synthetic system builds");
    let walk = chain_walk(&eco, concepts);
    BenchSystem {
        mdm,
        walk,
        label: format!("concepts={concepts}"),
    }
}

/// A mixed system for ablations: `concepts` chain, `versions` per source.
pub fn mixed_system(concepts: usize, versions: usize, rows: usize) -> BenchSystem {
    let config = WorkloadConfig {
        concepts,
        features_per_concept: 3,
        versions_per_source: versions,
        rows_per_wrapper: rows,
        seed: 42,
    };
    let eco = build(&config);
    let mdm = mdm_from_synthetic(&eco).expect("synthetic system builds");
    let walk = chain_walk(&eco, concepts);
    BenchSystem {
        mdm,
        walk,
        label: format!("c{concepts}v{versions}"),
    }
}

/// P14: a skewed chain — concept 0's source holds `small` rows, every
/// later source holds `large`. The walk's natural join order (concept 0
/// first, so the big side lands on the hash-join build side) is exactly
/// what cost-based reordering exists to fix.
pub fn skewed_system(concepts: usize, versions: usize, small: usize, large: usize) -> BenchSystem {
    let config = WorkloadConfig {
        concepts,
        features_per_concept: 3,
        versions_per_source: versions,
        rows_per_wrapper: large,
        seed: 42,
    };
    let eco = build_with_rows(&config, |c| if c == 0 { small } else { large });
    let mdm = mdm_from_synthetic(&eco).expect("synthetic system builds");
    let walk = chain_walk(&eco, concepts);
    BenchSystem {
        mdm,
        walk,
        label: format!("c{concepts}v{versions}s{small}l{large}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_answerable_systems() {
        for system in [
            versions_system(2, 10),
            chain_system(2, 10),
            mixed_system(2, 2, 10),
        ] {
            let answer = system.mdm.query(&system.walk).expect(&system.label);
            assert!(!answer.table.is_empty(), "{}", system.label);
        }
    }
}

//! One P4 measurement point, for back-to-back old-vs-new comparisons.
//!
//! `p4_point <rows> [reps] [layout]` builds the E6-shaped 4-branch UCQ
//! system at `rows` rows per wrapper and prints the median execution latency
//! over `reps` runs (default 10) under `layout` (`row` or `columnar`;
//! default columnar, the engine default). Kept as a bin (not a Criterion
//! bench) so a single point can be sampled quickly when re-recording
//! EXPERIMENTS.md, and so the two layouts can be compared back-to-back.

use std::time::Instant;

use mdm_relational::{ExecOptions, Executor, Layout};

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let layout = args
        .next()
        .map(|s| Layout::parse(&s).expect("layout is 'row' or 'columnar'"))
        .unwrap_or_default();
    let options = ExecOptions {
        layout,
        ..ExecOptions::default()
    };
    let system = mdm_bench::mixed_system(2, 2, rows);
    let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
    // Warm the wrapper payload caches so the medians measure execution.
    let warm = Executor::with_options(system.mdm.catalog(), options.clone())
        .run(&rewriting.plan)
        .expect("executes");
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let table = Executor::with_options(system.mdm.catalog(), options.clone())
            .run(&rewriting.plan)
            .expect("executes");
        samples.push(start.elapsed());
        assert_eq!(table.len(), warm.len());
    }
    samples.sort();
    println!(
        "rows={rows} reps={reps} layout={} median={:?} min={:?} result_rows={}",
        layout.label(),
        samples[reps / 2],
        samples[0],
        warm.len()
    );
}

//! The evaluation harness: regenerates every figure and table of the paper
//! (E1–E8) from the running system, and reports the measured statistics of
//! the implied performance study (P1–P4 summaries; full distributions come
//! from `cargo bench`).
//!
//! Usage: `evaluation [--exp <id>]` where `<id>` ∈
//! {e1,e2,e3,e4,e5,e6,e7,e8,p1,p2,p3,p4,all}. Default: all.

use std::time::Instant;

use mdm_bench::{chain_system, versions_system};
use mdm_core::synthetic::{chain_walk, mdm_from_synthetic};
use mdm_core::usecase;
use mdm_relational::Executor;
use mdm_wrappers::football;
use mdm_wrappers::workload::{build, evolve_all, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let selected = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all")
        .to_lowercase();
    let want = |id: &str| selected == "all" || selected == id;

    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).expect("use case builds");

    if want("e1") {
        banner("E1 — Figure 1: UML of the motivational use case");
        println!("{}", uml_text());
    }
    if want("e2") {
        banner("E2 — Figure 2: sample source payloads");
        let players = eco.players_api.release(1).expect("v1");
        println!("Players API ({}):", players.format);
        println!("{}\n", &players.body[..220.min(players.body.len())]);
        let teams = eco.teams_api.release(1).expect("v1");
        println!("Teams API ({}):", teams.format);
        println!("{}\n", &teams.body[..220.min(teams.body.len())]);
    }
    if want("e3") {
        banner("E3 — Figure 5: the global graph");
        println!("{}", mdm.render_global_graph());
    }
    if want("e4") {
        banner("E4 — Figure 6: the source graph");
        println!("{}", mdm.render_source_graph());
    }
    if want("e5") {
        banner("E5 — Figure 7: the LAV mappings");
        println!("{}", mdm.render_mappings());
    }
    if want("e6") {
        banner("E6 — Figure 8: OMQ → SPARQL + relational algebra");
        let rewriting = mdm.rewrite(&usecase::figure8_walk()).expect("rewrites");
        println!("-- SPARQL --\n{}\n", rewriting.sparql);
        println!("-- relational algebra --\n{}\n", rewriting.algebra());
    }
    if want("e7") {
        banner("E7 — Table 1: sample query output");
        let answer = mdm.query(&usecase::figure8_walk()).expect("answers");
        // Print the three famous rows first, as the paper samples them.
        let famous = ["Lionel Messi", "Robert Lewandowski", "Zlatan Ibrahimovic"];
        let rendered = answer.render();
        let mut lines = rendered.lines();
        println!("{}", lines.next().unwrap_or_default());
        println!("{}", lines.next().unwrap_or_default());
        for line in rendered.lines().skip(2) {
            if famous.iter().any(|f| line.contains(f)) {
                println!("{line}");
            }
        }
        println!("({} rows total under v1 wrappers)\n", answer.table.len());
    }
    if want("e8") {
        banner("E8 — §3 governance of evolution");
        let walk = usecase::figure8_walk();
        let before = mdm.query(&walk).expect("v1 answers");
        println!(
            "before release: {} branches, {} rows, Zlatan present: {}",
            before.rewriting.branch_count(),
            before.table.len(),
            before.render().contains("Zlatan Ibrahimovic"),
        );
        usecase::register_players_v2(&mut mdm, &eco).expect("v2 registers");
        let after = mdm.query(&walk).expect("v1+v2 answers");
        println!(
            "after release:  {} branches, {} rows, Zlatan present: {}",
            after.rewriting.branch_count(),
            after.table.len(),
            after.render().contains("Zlatan Ibrahimovic"),
        );
        println!(
            "algebra now spans both versions:\n{}\n",
            after.rewriting.algebra()
        );
    }

    if want("p1") {
        banner("P1 — rewriting latency vs coexisting versions (medians of 100 runs)");
        println!("{:>9} {:>10} {:>12}", "versions", "branches", "median");
        for versions in [1usize, 2, 4, 8, 16, 32, 64] {
            let system = versions_system(versions, 5);
            let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
            let t = median_time(|| {
                let _ = system.mdm.rewrite(&system.walk).expect("rewrites");
            });
            println!(
                "{versions:>9} {:>10} {:>12}",
                rewriting.branch_count(),
                fmt_dur(t)
            );
        }
        println!();
    }
    if want("p2") {
        banner("P2 — rewriting latency vs walk size (medians of 100 runs)");
        println!("{:>9} {:>10} {:>12}", "concepts", "plan nodes", "median");
        for concepts in [1usize, 2, 4, 8, 12, 16] {
            let system = chain_system(concepts, 5);
            let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
            let t = median_time(|| {
                let _ = system.mdm.rewrite(&system.walk).expect("rewrites");
            });
            println!(
                "{concepts:>9} {:>10} {:>12}",
                rewriting.plan.node_count(),
                fmt_dur(t)
            );
        }
        println!();
    }
    if want("p3") {
        banner("P3 — LAV vs GAV completeness under an evolution stream");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>12}",
            "releases", "total", "lav rows", "gav rows", "gav recall"
        );
        let config = WorkloadConfig {
            concepts: 2,
            features_per_concept: 3,
            versions_per_source: 1,
            rows_per_wrapper: 100,
            seed: 7,
        };
        for releases in [0usize, 1, 2, 4, 8] {
            let mut eco = build(&config);
            evolve_all(&mut eco, releases, 99);
            let mdm = mdm_from_synthetic(&eco).expect("builds");
            // GAV frozen at v1 metadata (before the releases).
            let v1_eco = build(&config);
            let v1_mdm = mdm_from_synthetic(&v1_eco).expect("builds");
            let gav = v1_mdm.derive_gav().expect("derives");
            let walk = chain_walk(&eco, 2);
            let Ok(lav) = mdm.query(&walk) else {
                println!("{releases:>8}  rewriting refused (union-width guard)");
                continue;
            };
            let gav_rows = gav
                .rewrite(mdm.ontology(), &walk)
                .ok()
                .and_then(|(_, plan, _)| Executor::new(mdm.catalog()).run(&plan).ok())
                .map(|t| t.len());
            let lav_rows = lav.table.len();
            match gav_rows {
                Some(g) => println!(
                    "{releases:>8} {lav_rows:>10} {lav_rows:>10} {g:>10} {:>11.1}%",
                    100.0 * g as f64 / lav_rows.max(1) as f64
                ),
                None => println!(
                    "{releases:>8} {lav_rows:>10} {lav_rows:>10} {:>10} {:>12}",
                    "CRASH", "0.0%"
                ),
            }
        }
        println!("\n(lav rows is the reference: the union over all versions)\n");
    }
    if want("p4") {
        banner("P4 — federated execution latency vs rows (medians of 10 runs)");
        println!("{:>9} {:>12}", "rows", "median");
        for rows in [100usize, 1_000, 10_000] {
            let system = mdm_bench::mixed_system(2, 2, rows);
            let rewriting = system.mdm.rewrite(&system.walk).expect("rewrites");
            let t = median_time_n(10, || {
                let _ = Executor::new(system.mdm.catalog())
                    .run(&rewriting.plan)
                    .expect("executes");
            });
            println!("{rows:>9} {:>12}", fmt_dur(t));
        }
        println!();
    }
}

fn banner(title: &str) {
    println!("==========================================================");
    println!("{title}");
    println!("==========================================================");
}

fn median_time(f: impl FnMut()) -> std::time::Duration {
    median_time_n(100, f)
}

fn median_time_n(n: usize, mut f: impl FnMut()) -> std::time::Duration {
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn fmt_dur(d: std::time::Duration) -> String {
    if d.as_micros() < 1000 {
        format!("{:.1}µs", d.as_nanos() as f64 / 1000.0)
    } else if d.as_millis() < 1000 {
        format!("{:.2}ms", d.as_micros() as f64 / 1000.0)
    } else {
        format!("{:.2}s", d.as_millis() as f64 / 1000.0)
    }
}

fn uml_text() -> &'static str {
    r#"
+-----------+ hasNationality +-----------+
|  Player   |--------------->|  Country  |
|-----------|                |-----------|
| playerId  |                | countryId |
| playerName|                | countryName
| height    |                +-----------+
| weight    |                      ^
| score     |                      | ofCountry
| foot      |                +-----------+
+-----------+                |  League   |
      | hasTeam              |-----------|
      v                      | leagueId  |
+-----------+   playsIn      | leagueName|
|SportsTeam |--------------->+-----------+
|-----------|
| teamId    |
| teamName  |
| shortName |
+-----------+
"#
}

//! Edge-case tests for the relational engine: NULL semantics through whole
//! pipelines, empty inputs, duplicate-heavy joins, and plan-level errors.

use mdm_relational::algebra::Plan;
use mdm_relational::expr::{BinOp, Expr};
use mdm_relational::schema::{ColumnRef, Schema};
use mdm_relational::{Executor, MemoryCatalog, Table, Value};

fn register(catalog: &mut MemoryCatalog, name: &str, columns: &[&str], rows: Vec<Vec<Value>>) {
    catalog.register(
        name,
        Table::new(Schema::qualified(name, columns.to_vec()), rows).unwrap(),
    );
}

#[test]
fn empty_inputs_flow_through_every_operator() {
    let mut catalog = MemoryCatalog::new();
    register(&mut catalog, "e", &["k", "v"], vec![]);
    register(
        &mut catalog,
        "f",
        &["k", "v"],
        vec![vec![Value::Int(1), Value::str("x")]],
    );
    let executor = Executor::new(&catalog);
    let join = Plan::scan("e").join(
        Plan::scan("f"),
        vec![(
            ColumnRef::qualified("e", "k"),
            ColumnRef::qualified("f", "k"),
        )],
    );
    assert!(executor.run(&join).unwrap().is_empty());
    let union = Plan::union(vec![Plan::scan("e"), Plan::scan("f")]);
    assert_eq!(executor.run(&union).unwrap().len(), 1);
    let chained = Plan::scan("e")
        .filter(Expr::col("v").eq(Expr::lit("x")))
        .distinct()
        .sort_by(&["e.k"])
        .limit(10)
        .project_named(&[("e.v", "out")]);
    assert!(executor.run(&chained).unwrap().is_empty());
}

#[test]
fn null_keys_never_join_but_null_payloads_pass_through() {
    let mut catalog = MemoryCatalog::new();
    register(
        &mut catalog,
        "l",
        &["k", "v"],
        vec![
            vec![Value::Null, Value::str("null-key")],
            vec![Value::Int(1), Value::Null],
        ],
    );
    register(
        &mut catalog,
        "r",
        &["k", "w"],
        vec![
            vec![Value::Null, Value::str("also-null")],
            vec![Value::Int(1), Value::str("matched")],
        ],
    );
    let plan = Plan::scan("l").join(
        Plan::scan("r"),
        vec![(
            ColumnRef::qualified("l", "k"),
            ColumnRef::qualified("r", "k"),
        )],
    );
    let table = Executor::new(&catalog).run(&plan).unwrap();
    // Only the k=1 pair joins; NULL=NULL does not.
    assert_eq!(table.len(), 1);
    assert!(table.rows()[0][1].is_null()); // the NULL payload survives
    assert_eq!(table.rows()[0][3], Value::str("matched"));
}

#[test]
fn duplicate_heavy_join_produces_cross_products_per_key() {
    let mut catalog = MemoryCatalog::new();
    let threes = vec![
        vec![Value::Int(7), Value::str("a")],
        vec![Value::Int(7), Value::str("b")],
        vec![Value::Int(7), Value::str("c")],
    ];
    register(&mut catalog, "x", &["k", "v"], threes.clone());
    register(&mut catalog, "y", &["k", "v"], threes);
    let plan = Plan::scan("x").join(
        Plan::scan("y"),
        vec![(
            ColumnRef::qualified("x", "k"),
            ColumnRef::qualified("y", "k"),
        )],
    );
    assert_eq!(Executor::new(&catalog).run(&plan).unwrap().len(), 9);
}

#[test]
fn multi_key_join_requires_all_keys() {
    let mut catalog = MemoryCatalog::new();
    register(
        &mut catalog,
        "a",
        &["k1", "k2", "v"],
        vec![
            vec![Value::Int(1), Value::Int(1), Value::str("both")],
            vec![Value::Int(1), Value::Int(2), Value::str("half")],
        ],
    );
    register(
        &mut catalog,
        "b",
        &["k1", "k2"],
        vec![vec![Value::Int(1), Value::Int(1)]],
    );
    let plan = Plan::scan("a").join(
        Plan::scan("b"),
        vec![
            (
                ColumnRef::qualified("a", "k1"),
                ColumnRef::qualified("b", "k1"),
            ),
            (
                ColumnRef::qualified("a", "k2"),
                ColumnRef::qualified("b", "k2"),
            ),
        ],
    );
    let table = Executor::new(&catalog).run(&plan).unwrap();
    assert_eq!(table.len(), 1);
    assert_eq!(table.rows()[0][2], Value::str("both"));
}

#[test]
fn projection_expressions_compute() {
    let mut catalog = MemoryCatalog::new();
    register(
        &mut catalog,
        "m",
        &["height_cm"],
        vec![vec![Value::Float(170.18)], vec![Value::Int(184)]],
    );
    let plan = Plan::scan("m").project(vec![(
        Expr::col("height_cm").binary(BinOp::Div, Expr::lit(100.0)),
        ColumnRef::bare("height_m"),
    )]);
    let table = Executor::new(&catalog).run(&plan).unwrap();
    assert_eq!(table.rows()[0][0], Value::Float(1.7018));
    assert_eq!(table.rows()[1][0], Value::Float(1.84));
}

#[test]
fn filter_type_error_surfaces_not_panics() {
    let mut catalog = MemoryCatalog::new();
    register(&mut catalog, "t", &["v"], vec![vec![Value::str("text")]]);
    // v + 1 on a string is an evaluation error.
    let plan = Plan::scan("t").filter(
        Expr::col("v")
            .binary(BinOp::Add, Expr::lit(1i64))
            .eq(Expr::lit(2i64)),
    );
    let err = Executor::new(&catalog).run(&plan).unwrap_err();
    assert!(err.message.contains("arithmetic"), "{err}");
}

#[test]
fn union_of_projections_with_matching_width() {
    let mut catalog = MemoryCatalog::new();
    register(
        &mut catalog,
        "p",
        &["a", "b"],
        vec![vec![Value::Int(1), Value::Int(2)]],
    );
    register(&mut catalog, "q", &["c"], vec![vec![Value::Int(3)]]);
    // Arms with different base widths unify after projection.
    let plan = Plan::union(vec![
        Plan::scan("p").project_named(&[("p.a", "out")]),
        Plan::scan("q").project_named(&[("q.c", "out")]),
    ]);
    let table = Executor::new(&catalog).run(&plan).unwrap();
    assert_eq!(table.len(), 2);
}

#[test]
fn deep_plan_nesting_executes() {
    let mut catalog = MemoryCatalog::new();
    register(
        &mut catalog,
        "base",
        &["k"],
        (0..50).map(|i| vec![Value::Int(i)]).collect(),
    );
    // 20 stacked filters.
    let mut plan = Plan::scan("base");
    for i in 0..20 {
        plan = plan.filter(Expr::col("k").binary(BinOp::Ne, Expr::lit(i as i64)));
    }
    let table = Executor::new(&catalog).run(&plan).unwrap();
    assert_eq!(table.len(), 30);
}

#[test]
fn sort_with_mixed_types_is_total() {
    let mut catalog = MemoryCatalog::new();
    register(
        &mut catalog,
        "mixed",
        &["v"],
        vec![
            vec![Value::str("z")],
            vec![Value::Int(5)],
            vec![Value::Null],
            vec![Value::Bool(true)],
            vec![Value::Float(2.5)],
        ],
    );
    let table = Executor::new(&catalog)
        .run(&Plan::scan("mixed").sort_by(&["mixed.v"]))
        .unwrap();
    // Rank order: null < bool < numeric < string.
    assert!(table.rows()[0][0].is_null());
    assert_eq!(table.rows()[1][0], Value::Bool(true));
    assert_eq!(table.rows()[4][0], Value::str("z"));
}

#[test]
fn table_render_handles_wide_values() {
    let table = Table::new(Schema::bare(["a"]), vec![vec![Value::str("x".repeat(200))]]).unwrap();
    let rendered = table.render();
    assert!(rendered.lines().nth(2).unwrap().len() >= 200);
}

//! Property tests for the cost-based optimizer: for random plans, random
//! data, and random statistics, optimized plans render byte-identically to
//! unoptimized execution — in every optimize mode, both physical layouts,
//! and both the parallel and sequential execution paths.

use proptest::prelude::*;

use mdm_relational::algebra::Plan;
use mdm_relational::expr::{BinOp, Expr};
use mdm_relational::optimizer::{OptimizeMode, Optimizer};
use mdm_relational::schema::{ColumnRef, Schema};
use mdm_relational::stats::StatsCatalog;
use mdm_relational::{pool, Catalog, ExecOptions, Executor, Layout, MemoryCatalog, Table, Value};

/// A random table with columns (k, v) — k from a small domain so joins hit.
fn arb_table(relation: &'static str) -> impl Strategy<Value = Table> {
    proptest::collection::vec((0i64..8, -50i64..50), 0..20).prop_map(move |rows| {
        Table::new(
            Schema::qualified(relation, ["k", "v"]),
            rows.into_iter()
                .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
                .collect(),
        )
        .expect("arity matches")
    })
}

/// Shape knobs for a random π-topped plan over relations a, b, c: an
/// optional third join (exercises reordering), optional filters (exercise
/// pushdown), an optional second union arm (exercises branch dedup), and
/// an optional distinct on top.
#[derive(Debug, Clone)]
struct Shape {
    three_way: bool,
    filter_a: Option<i64>,
    filter_b: Option<i64>,
    distinct: bool,
    union_arm: Option<i64>,
}

/// An optional filter threshold (None roughly a third of the time).
fn arb_threshold() -> BoxedStrategy<Option<i64>> {
    prop_oneof![
        1 => Just(None),
        2 => (-50i64..50).prop_map(Some),
    ]
    .boxed()
}

fn arb_shape() -> BoxedStrategy<Shape> {
    (
        any::<bool>(),
        arb_threshold(),
        arb_threshold(),
        any::<bool>(),
        arb_threshold(),
    )
        .prop_map(
            |(three_way, filter_a, filter_b, distinct, union_arm)| Shape {
                three_way,
                filter_a,
                filter_b,
                distinct,
                union_arm,
            },
        )
}

/// One union arm: joins, then filters, then a π to the bare (k, bv) schema
/// shared by every arm.
fn arm(shape: &Shape, threshold: Option<i64>) -> Plan {
    let mut plan = Plan::scan("a").join(
        Plan::scan("b"),
        vec![(
            ColumnRef::qualified("a", "k"),
            ColumnRef::qualified("b", "k"),
        )],
    );
    if shape.three_way {
        plan = plan.join(
            Plan::scan("c"),
            vec![(
                ColumnRef::qualified("b", "k"),
                ColumnRef::qualified("c", "k"),
            )],
        );
    }
    if let Some(t) = threshold {
        plan = plan.filter(Expr::col("a.v").binary(BinOp::Gt, Expr::lit(t)));
    }
    if let Some(t) = shape.filter_b {
        plan = plan.filter(Expr::col("b.v").binary(BinOp::Le, Expr::lit(t)));
    }
    plan.project(vec![
        (Expr::col("a.k"), ColumnRef::bare("k")),
        (Expr::col("b.v"), ColumnRef::bare("bv")),
    ])
}

fn build(shape: &Shape) -> Plan {
    let first = arm(shape, shape.filter_a);
    let plan = match shape.union_arm {
        // Equal thresholds make the arms identical — exactly the case
        // branch dedup folds away.
        Some(t) => Plan::union(vec![first, arm(shape, Some(t))]),
        None => first,
    };
    if shape.distinct {
        plan.distinct()
    } else {
        plan
    }
}

fn options(layout: Layout, parallel: bool) -> ExecOptions {
    ExecOptions {
        layout,
        pool: if parallel { Some(pool::global()) } else { None },
        // Keep the process-wide catalog out of it: stats here are the
        // random ones fed explicitly below.
        stats: None,
        ..ExecOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cost-based and heuristic pipelines never change results: for
    /// every random plan, dataset, and (possibly partial) stats catalog,
    /// the sorted render is byte-identical to unoptimized execution under
    /// every layout × execution-path combination.
    #[test]
    fn optimized_plans_render_identically(
        a in arb_table("a"),
        b in arb_table("b"),
        c in arb_table("c"),
        shape in arb_shape(),
        profile in (any::<bool>(), any::<bool>(), any::<bool>()),
    ) {
        // Random statistics: each relation is independently profiled or
        // left unknown, so the optimizer sees every mix of present and
        // missing estimates.
        let stats = StatsCatalog::new();
        for (keep, (name, table)) in [profile.0, profile.1, profile.2]
            .iter()
            .zip([("a", &a), ("b", &b), ("c", &c)])
        {
            if *keep {
                stats.observe(name, 1, table.schema(), table.rows());
            }
        }
        let mut catalog = MemoryCatalog::new();
        catalog.register("a", a);
        catalog.register("b", b);
        catalog.register("c", c);
        let resolve = |name: &str| catalog.relation_schema(name);
        let optimizer = Optimizer::new(&stats, &resolve);
        let plan = build(&shape);
        for layout in [Layout::Columnar, Layout::Row] {
            for parallel in [false, true] {
                let executor =
                    Executor::with_options(&catalog, options(layout, parallel));
                let baseline = executor.run(&plan).unwrap().sorted().render();
                for mode in [OptimizeMode::Heuristic, OptimizeMode::Cost] {
                    let optimized = optimizer.optimize_with(mode, plan.clone());
                    let rendered =
                        executor.run(&optimized).unwrap().sorted().render();
                    prop_assert_eq!(
                        &baseline,
                        &rendered,
                        "mode={} layout={:?} parallel={}",
                        mode.as_str(),
                        layout,
                        parallel
                    );
                }
            }
        }
    }

    /// Re-optimizing an already-optimized plan still renders identically:
    /// the pipeline may pick a different (equally valid) join shape on a
    /// second pass, but results never drift.
    #[test]
    fn double_optimization_preserves_results(
        a in arb_table("a"),
        b in arb_table("b"),
        c in arb_table("c"),
        shape in arb_shape(),
    ) {
        let stats = StatsCatalog::new();
        for (name, table) in [("a", &a), ("b", &b), ("c", &c)] {
            stats.observe(name, 1, table.schema(), table.rows());
        }
        let mut catalog = MemoryCatalog::new();
        catalog.register("a", a);
        catalog.register("b", b);
        catalog.register("c", c);
        let resolve = |name: &str| catalog.relation_schema(name);
        let optimizer = Optimizer::new(&stats, &resolve);
        let once = optimizer.optimize_with(OptimizeMode::Cost, build(&shape));
        let twice = optimizer.optimize_with(OptimizeMode::Cost, once.clone());
        let executor = Executor::with_options(&catalog, options(Layout::Columnar, false));
        prop_assert_eq!(
            executor.run(&once).unwrap().sorted().render(),
            executor.run(&twice).unwrap().sorted().render()
        );
    }
}

//! Byte-identity oracle for the columnar data plane.
//!
//! The fixed-width term encoding and vectorized kernels must be
//! observationally identical to the row-at-a-time operators: same rows, same
//! order, same rendered bytes, same errors. This file property-checks
//! [`Layout::Columnar`] against [`Layout::Row`] over random plans and data —
//! NULLs (which never match as join keys), Int/Float keys that only join
//! under numeric coercion, inline (≤ 22 byte) and pooled (`Arc<str>`)
//! strings, batch widths {1, 2, 1024}, and both the parallel and the
//! sequential drain.

use std::collections::HashMap;

use proptest::prelude::*;

use mdm_relational::algebra::{JoinKind, Plan};
use mdm_relational::expr::{BinOp, Expr};
use mdm_relational::schema::{ColumnRef, Schema};
use mdm_relational::{ExecOptions, Executor, Layout, MemoryCatalog, Table, Value};

// ---------------------------------------------------------------------------
// Random data: inline strings, pooled strings, NULLs, coercing numerics
// ---------------------------------------------------------------------------

/// Long join-key strings (> 22 bytes) take the shared intern-pool path and
/// therefore the dictionary-id fast path in the columnar plane.
const LONG_KEYS: [&str; 2] = [
    "columnar-dictionary-key-alpha-0001",
    "columnar-dictionary-key-omega-0002",
];
const SHORT_KEYS: [&str; 2] = ["x", "y"];

/// A join key: NULL, coercible Int/Float, inline string, or pooled string —
/// all from a small domain so joins actually hit.
fn arb_key() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        4 => (-3i64..3).prop_map(Value::Int),
        2 => (-3i64..3).prop_map(|i| Value::Float(i as f64)),
        2 => (0usize..SHORT_KEYS.len()).prop_map(|i| Value::str(SHORT_KEYS[i])),
        1 => (0usize..LONG_KEYS.len()).prop_map(|i| Value::str(LONG_KEYS[i])),
    ]
}

/// A payload string column mixing inline and pooled representations, with
/// repeats so distinct paths dedup across the two encodings.
fn arb_text() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        3 => (0u8..4, 0usize..8).prop_map(|(c, len)| {
            Value::str(char::from(b'a' + c).to_string().repeat(len))
        }),
        2 => (0u8..3, 23usize..40).prop_map(|(c, len)| {
            Value::str(char::from(b'p' + c).to_string().repeat(len))
        }),
    ]
}

/// A random (k, s, v) table under the given relation qualifier.
fn arb_table(relation: &'static str) -> impl Strategy<Value = Table> {
    proptest::collection::vec((arb_key(), arb_text(), -20i64..20), 0..24).prop_map(move |rows| {
        Table::new(
            Schema::qualified(relation, ["k", "s", "v"]),
            rows.into_iter()
                .map(|(k, s, v)| vec![k, s, Value::Int(v)])
                .collect(),
        )
        .expect("arity matches")
    })
}

// ---------------------------------------------------------------------------
// Harness: columnar vs. row under every execution mode
// ---------------------------------------------------------------------------

/// The execution modes each layout runs under.
fn modes(layout: Layout) -> Vec<(&'static str, ExecOptions)> {
    vec![
        (
            "parallel",
            ExecOptions {
                layout,
                ..ExecOptions::default()
            },
        ),
        (
            "sequential",
            ExecOptions {
                layout,
                ..ExecOptions::sequential()
            },
        ),
        (
            "batch=1",
            ExecOptions {
                layout,
                batch_size: 1,
                ..ExecOptions::default()
            },
        ),
        (
            "batch=2",
            ExecOptions {
                layout,
                batch_size: 2,
                ..ExecOptions::sequential()
            },
        ),
        (
            "batch=1024",
            ExecOptions {
                layout,
                batch_size: 1024,
                ..ExecOptions::default()
            },
        ),
    ]
}

/// Runs `plan` under the row plane (the oracle) and the columnar plane, over
/// parallel/sequential drains and batch widths {1, 2, 1024}, asserting every
/// columnar rendering is byte-identical to its row-plane counterpart — and
/// that errors, when they happen, carry identical messages.
fn check(plan: &Plan, tables: Vec<(&'static str, Table)>) -> Result<(), TestCaseError> {
    let mut catalog = MemoryCatalog::new();
    let mut map = HashMap::new();
    for (name, table) in tables {
        catalog.register(name, table.clone());
        map.insert(name, table);
    }
    for ((mode, row_options), (_, col_options)) in
        modes(Layout::Row).into_iter().zip(modes(Layout::Columnar))
    {
        let row = Executor::with_options(&catalog, row_options).run(plan);
        let col = Executor::with_options(&catalog, col_options).run(plan);
        match (row, col) {
            (Ok(row), Ok(col)) => prop_assert_eq!(
                col.render(),
                row.render(),
                "columnar diverged from row plane in mode {}",
                mode
            ),
            (Err(row), Err(col)) => prop_assert_eq!(
                col.to_string(),
                row.to_string(),
                "columnar error diverged from row plane in mode {}",
                mode
            ),
            (row, col) => prop_assert!(
                false,
                "mode {}: row plane {:?} but columnar {:?}",
                mode,
                row.map(|t| t.len()),
                col.map(|t| t.len())
            ),
        }
    }
    Ok(())
}

fn join_on_k() -> Vec<(ColumnRef, ColumnRef)> {
    vec![(
        ColumnRef::qualified("a", "k"),
        ColumnRef::qualified("b", "k"),
    )]
}

proptest! {
    /// σ and π (including computed projections, which take the vectorized
    /// arithmetic kernel) match the row plane byte for byte.
    #[test]
    fn filter_project_matches_row_plane(a in arb_table("a"), threshold in -20i64..20) {
        let plan = Plan::scan("a")
            .filter(Expr::col("a.v").binary(BinOp::Gt, Expr::lit(threshold)))
            .project_named(&[("a.s", "s"), ("a.k", "k"), ("a.v", "v")]);
        check(&plan, vec![("a", a)])?;
    }

    /// Computed projections with possible division-by-zero: the columnar
    /// plane must fall back to row-order evaluation and report the exact
    /// same first error (or the same values when no row errors).
    #[test]
    fn computed_projection_matches_row_plane(a in arb_table("a"), divisor in -2i64..3) {
        let plan = Plan::scan("a").project(vec![
            (
                Expr::col("a.v").binary(BinOp::Add, Expr::lit(1i64)),
                ColumnRef::bare("v1"),
            ),
            (
                Expr::col("a.v").binary(BinOp::Div, Expr::lit(divisor)),
                ColumnRef::bare("q"),
            ),
        ]);
        check(&plan, vec![("a", a)])?;
    }

    /// Inner and left hash joins — dictionary-id key comparison, coercing
    /// Int/Float keys, NULL-key skips, probe × build emission order — match
    /// the row-plane join exactly.
    #[test]
    fn join_matches_row_plane(a in arb_table("a"), b in arb_table("b"), left in any::<bool>()) {
        let plan = Plan::Join {
            kind: if left { JoinKind::Left } else { JoinKind::Inner },
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            on: join_on_k(),
        };
        check(&plan, vec![("a", a), ("b", b)])?;
    }

    /// Full UCQ shells — union, distinct, sort, limit — render identically
    /// under both layouts (sort crosses back into the row plane; the decode
    /// boundary must not reorder or rewrite anything).
    #[test]
    fn ucq_matches_row_plane(
        a in arb_table("a"),
        b in arb_table("b"),
        threshold in -20i64..20,
        n in 0usize..40,
    ) {
        let join_branch = Plan::scan("a")
            .join(Plan::scan("b"), join_on_k())
            .filter(Expr::col("a.v").binary(BinOp::Gt, Expr::lit(threshold)))
            .project_named(&[("a.k", "k"), ("b.s", "s"), ("a.v", "v")]);
        let scan_branch = Plan::scan("a").project_named(&[("a.k", "k"), ("a.s", "s"), ("a.v", "v")]);
        let plan = Plan::union(vec![join_branch, scan_branch])
            .distinct()
            .sort_by(&["k", "v", "s"])
            .limit(n);
        check(&plan, vec![("a", a), ("b", b)])?;
    }

    /// First-occurrence distinct over a self-union dedups identically:
    /// term-id equality must match Value equality for every encoding (NaN,
    /// -0.0, coerced Int/Float, inline vs pooled strings).
    #[test]
    fn distinct_matches_row_plane(a in arb_table("a")) {
        let plan = Plan::union(vec![Plan::scan("a"), Plan::scan("a")]).distinct();
        check(&plan, vec![("a", a)])?;
    }
}

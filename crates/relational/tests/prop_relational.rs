//! Property tests for the relational engine: algebraic laws of the physical
//! operators and semantics preservation by the optimizer.

use proptest::prelude::*;

use mdm_relational::algebra::Plan;
use mdm_relational::expr::{BinOp, Expr};
use mdm_relational::optimizer::{Optimizer, Statistics};
use mdm_relational::schema::{ColumnRef, Schema};
use mdm_relational::{Catalog, Executor, MemoryCatalog, Table, Value};

/// A random table with columns (k, v) — k from a small domain so joins hit.
fn arb_table(relation: &'static str) -> impl Strategy<Value = Table> {
    proptest::collection::vec((0i64..8, -50i64..50), 0..20).prop_map(move |rows| {
        Table::new(
            Schema::qualified(relation, ["k", "v"]),
            rows.into_iter()
                .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
                .collect(),
        )
        .expect("arity matches")
    })
}

fn catalog(a: Table, b: Table) -> MemoryCatalog {
    let mut catalog = MemoryCatalog::new();
    catalog.register("a", a);
    catalog.register("b", b);
    catalog
}

/// Projects a result to a sorted multiset of strings for order-insensitive
/// comparison.
fn canonical(table: &Table, columns: &[&str]) -> Vec<Vec<String>> {
    let indexes: Vec<usize> = columns
        .iter()
        .map(|c| table.schema().index_of(&ColumnRef::parse(c)).unwrap())
        .collect();
    let mut rows: Vec<Vec<String>> = table
        .rows()
        .iter()
        .map(|row| indexes.iter().map(|&i| row[i].to_string()).collect())
        .collect();
    rows.sort();
    rows
}

proptest! {
    /// Join is commutative (modulo column order).
    #[test]
    fn join_commutes(a in arb_table("a"), b in arb_table("b")) {
        let catalog = catalog(a, b);
        let executor = Executor::new(&catalog);
        let ab = Plan::scan("a").join(
            Plan::scan("b"),
            vec![(ColumnRef::qualified("a", "k"), ColumnRef::qualified("b", "k"))],
        );
        let ba = Plan::scan("b").join(
            Plan::scan("a"),
            vec![(ColumnRef::qualified("b", "k"), ColumnRef::qualified("a", "k"))],
        );
        let left = executor.run(&ab).unwrap();
        let right = executor.run(&ba).unwrap();
        prop_assert_eq!(
            canonical(&left, &["a.k", "a.v", "b.v"]),
            canonical(&right, &["a.k", "a.v", "b.v"])
        );
    }

    /// |A ⋈ B| equals the sum over keys of |A_k|·|B_k|.
    #[test]
    fn join_cardinality_formula(a in arb_table("a"), b in arb_table("b")) {
        use std::collections::HashMap;
        let mut a_hist: HashMap<i64, usize> = HashMap::new();
        for row in a.rows() {
            if let Value::Int(k) = row[0] {
                *a_hist.entry(k).or_default() += 1;
            }
        }
        let mut expected = 0usize;
        for row in b.rows() {
            if let Value::Int(k) = row[0] {
                expected += a_hist.get(&k).copied().unwrap_or(0);
            }
        }
        let catalog = catalog(a, b);
        let plan = Plan::scan("a").join(
            Plan::scan("b"),
            vec![(ColumnRef::qualified("a", "k"), ColumnRef::qualified("b", "k"))],
        );
        let result = Executor::new(&catalog).run(&plan).unwrap();
        prop_assert_eq!(result.len(), expected);
    }

    /// Union length is the sum; distinct is idempotent and ≤ input.
    #[test]
    fn union_and_distinct_laws(a in arb_table("a"), b in arb_table("b")) {
        let a_len = a.len();
        let b_len = b.len();
        let catalog = {
            // Same schema for both arms: re-qualify b's columns as "a".
            let b_rows = b.rows().to_vec();
            let b_as_a = Table::new(Schema::qualified("a", ["k", "v"]), b_rows).unwrap();
            let mut c = MemoryCatalog::new();
            c.register("a", a);
            c.register("b", b_as_a);
            c
        };
        let executor = Executor::new(&catalog);
        let union = Plan::union(vec![Plan::scan("a"), Plan::scan("b")]);
        let all = executor.run(&union).unwrap();
        prop_assert_eq!(all.len(), a_len + b_len);
        let d1 = executor.run(&union.clone().distinct()).unwrap();
        let d2 = executor.run(&union.distinct().distinct()).unwrap();
        prop_assert!(d1.len() <= all.len());
        prop_assert_eq!(d1.len(), d2.len());
    }

    /// σ commutes with itself and conjunction splits.
    #[test]
    fn filter_laws(a in arb_table("a"), threshold in -50i64..50) {
        let catalog = {
            let mut c = MemoryCatalog::new();
            c.register("a", a);
            c
        };
        let executor = Executor::new(&catalog);
        let p1 = Expr::col("a.v").binary(BinOp::Gt, Expr::lit(threshold));
        let p2 = Expr::col("a.k").binary(BinOp::Le, Expr::lit(4i64));
        let seq = Plan::scan("a").filter(p1.clone()).filter(p2.clone());
        let swapped = Plan::scan("a").filter(p2.clone()).filter(p1.clone());
        let conj = Plan::scan("a").filter(p1.and(p2));
        let r_seq = executor.run(&seq).unwrap();
        let r_swapped = executor.run(&swapped).unwrap();
        let r_conj = executor.run(&conj).unwrap();
        prop_assert_eq!(canonical(&r_seq, &["a.k", "a.v"]), canonical(&r_swapped, &["a.k", "a.v"]));
        prop_assert_eq!(canonical(&r_seq, &["a.k", "a.v"]), canonical(&r_conj, &["a.k", "a.v"]));
    }

    /// The optimizer never changes results.
    #[test]
    fn optimizer_preserves_semantics(
        a in arb_table("a"),
        b in arb_table("b"),
        threshold in -50i64..50,
    ) {
        let catalog = catalog(a, b);
        let resolve = |name: &str| catalog.relation_schema(name);
        let plan = Plan::scan("a")
            .join(
                Plan::scan("b"),
                vec![(ColumnRef::qualified("a", "k"), ColumnRef::qualified("b", "k"))],
            )
            .filter(Expr::col("a.v").binary(BinOp::Gt, Expr::lit(threshold)))
            .project(vec![
                (Expr::col("a.k"), ColumnRef::bare("k")),
                (Expr::col("b.v"), ColumnRef::bare("bv")),
            ]);
        struct NoStats;
        impl Statistics for NoStats {
            fn estimated_rows(&self, _relation: &str) -> Option<usize> {
                None
            }
        }
        let optimizer = Optimizer::new(&NoStats, &resolve);
        let optimized = optimizer.optimize(plan.clone());
        let executor = Executor::new(&catalog);
        let before = executor.run(&plan).unwrap();
        let after = executor.run(&optimized).unwrap();
        prop_assert_eq!(canonical(&before, &["k", "bv"]), canonical(&after, &["k", "bv"]));
    }

    /// Sort is stable w.r.t. the full-row order and limit truncates.
    #[test]
    fn sort_limit_laws(a in arb_table("a"), n in 0usize..25) {
        let a_len = a.len();
        let catalog = {
            let mut c = MemoryCatalog::new();
            c.register("a", a);
            c
        };
        let executor = Executor::new(&catalog);
        let sorted = executor
            .run(&Plan::scan("a").sort_by(&["a.v", "a.k"]))
            .unwrap();
        for pair in sorted.rows().windows(2) {
            prop_assert!(pair[0][1] <= pair[1][1]);
        }
        let limited = executor
            .run(&Plan::scan("a").sort_by(&["a.v"]).limit(n))
            .unwrap();
        prop_assert_eq!(limited.len(), n.min(a_len));
    }
}

//! Byte-identity oracle for the zero-copy data plane.
//!
//! The interned-string + shared-batch execution path must be observationally
//! identical to naive row-at-a-time relational algebra. This file implements
//! an independent reference interpreter over [`Plan`] — nested-loop joins in
//! probe × build order, first-occurrence distinct, branch-order union,
//! stable sort — and property-checks that [`Executor::run`] renders the
//! exact same table under the parallel path, the sequential path, and a
//! spread of batch widths (including width 1, the degenerate row-at-a-time
//! drain).
//!
//! Random data deliberately mixes inline strings (≤ 22 bytes, stored in the
//! `Sym` small-string buffer), long strings (pooled `Arc<str>`), NULLs, and
//! Int/Float join keys that only match under numeric coercion.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use mdm_relational::algebra::{JoinKind, Plan, SortOrder};
use mdm_relational::expr::{BinOp, Expr};
use mdm_relational::schema::{ColumnRef, Schema};
use mdm_relational::{ExecOptions, Executor, MemoryCatalog, Table, Value};

type Tuple = Vec<Value>;

// ---------------------------------------------------------------------------
// Reference interpreter
// ---------------------------------------------------------------------------

/// Evaluates `plan` row-at-a-time against in-memory tables. Mirrors the
/// engine's documented semantics exactly; shares no code with the physical
/// operators.
fn eval(plan: &Plan, tables: &HashMap<&str, Table>) -> Result<(Schema, Vec<Tuple>), String> {
    match plan {
        Plan::Scan { relation } => {
            let table = tables
                .get(relation.as_str())
                .ok_or_else(|| format!("unknown relation {relation}"))?;
            Ok((table.schema().clone(), table.rows().to_vec()))
        }
        Plan::Filter { input, predicate } => {
            let (schema, rows) = eval(input, tables)?;
            let mut out = Vec::new();
            for row in rows {
                if predicate.eval_predicate(&schema, &row).map_err(|e| e.0)? {
                    out.push(row);
                }
            }
            Ok((schema, out))
        }
        Plan::Project { input, columns } => {
            let (schema, rows) = eval(input, tables)?;
            let out_schema = Schema::new(columns.iter().map(|(_, name)| name.clone()).collect());
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut tuple = Vec::with_capacity(columns.len());
                for (expr, _) in columns {
                    tuple.push(expr.eval(&schema, &row).map_err(|e| e.0)?);
                }
                out.push(tuple);
            }
            Ok((out_schema, out))
        }
        Plan::Join {
            kind,
            left,
            right,
            on,
        } => {
            let (left_schema, left_rows) = eval(left, tables)?;
            let (right_schema, right_rows) = eval(right, tables)?;
            let schema = left_schema.concat(&right_schema);
            let left_keys: Vec<usize> = on
                .iter()
                .map(|(l, _)| left_schema.index_of(l))
                .collect::<Result<_, _>>()?;
            let right_keys: Vec<usize> = on
                .iter()
                .map(|(_, r)| right_schema.index_of(r))
                .collect::<Result<_, _>>()?;
            let mut out = Vec::new();
            // Probe × build order: each left row scans right rows in their
            // original order. NULL keys never match on either side; a left
            // join pads unmatched probe rows with NULLs.
            for left_row in &left_rows {
                let mut matched = false;
                if !left_keys.iter().any(|&i| left_row[i].is_null()) {
                    for right_row in &right_rows {
                        if right_keys.iter().any(|&i| right_row[i].is_null()) {
                            continue;
                        }
                        if left_keys
                            .iter()
                            .zip(&right_keys)
                            .all(|(&l, &r)| left_row[l] == right_row[r])
                        {
                            matched = true;
                            let mut combined = left_row.clone();
                            combined.extend(right_row.iter().cloned());
                            out.push(combined);
                        }
                    }
                }
                if !matched && *kind == JoinKind::Left {
                    let mut combined = left_row.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_schema.len()));
                    out.push(combined);
                }
            }
            Ok((schema, out))
        }
        Plan::Union { inputs } => {
            let mut iter = inputs.iter();
            let first = iter.next().ok_or_else(|| "empty union".to_string())?;
            let (schema, mut rows) = eval(first, tables)?;
            for input in iter {
                let (s, r) = eval(input, tables)?;
                if s.len() != schema.len() {
                    return Err("union arms have different arities".to_string());
                }
                rows.extend(r);
            }
            Ok((schema, rows))
        }
        Plan::Distinct { input } => {
            let (schema, rows) = eval(input, tables)?;
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok((schema, out))
        }
        Plan::Sort { input, keys } => {
            let (schema, mut rows) = eval(input, tables)?;
            let resolved: Vec<(usize, bool)> = keys
                .iter()
                .map(|(c, order)| schema.index_of(c).map(|i| (i, *order == SortOrder::Desc)))
                .collect::<Result<_, _>>()?;
            rows.sort_by(|a, b| {
                for &(index, descending) in &resolved {
                    let ordering = a[index].cmp(&b[index]);
                    let ordering = if descending {
                        ordering.reverse()
                    } else {
                        ordering
                    };
                    if !ordering.is_eq() {
                        return ordering;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok((schema, rows))
        }
        Plan::Limit { input, count } => {
            let (schema, mut rows) = eval(input, tables)?;
            rows.truncate(*count);
            Ok((schema, rows))
        }
    }
}

fn reference(plan: &Plan, tables: &HashMap<&str, Table>) -> Result<Table, String> {
    let (schema, rows) = eval(plan, tables)?;
    Table::new(schema, rows)
}

// ---------------------------------------------------------------------------
// Random data: inline strings, pooled strings, NULLs, coercing numerics
// ---------------------------------------------------------------------------

/// Long join-key strings (> 22 bytes) take the shared intern-pool path.
const LONG_KEYS: [&str; 2] = [
    "player-registry-key-alpha-0001",
    "player-registry-key-omega-0002",
];
const SHORT_KEYS: [&str; 2] = ["x", "y"];

/// A join key: NULL, coercible Int/Float, inline string, or pooled string —
/// all from a small domain so joins actually hit.
fn arb_key() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        4 => (-3i64..3).prop_map(Value::Int),
        2 => (-3i64..3).prop_map(|i| Value::Float(i as f64)),
        2 => (0usize..SHORT_KEYS.len()).prop_map(|i| Value::str(SHORT_KEYS[i])),
        1 => (0usize..LONG_KEYS.len()).prop_map(|i| Value::str(LONG_KEYS[i])),
    ]
}

/// A payload string column mixing inline and pooled representations, with
/// repeats so distinct/dedup paths are exercised.
fn arb_text() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        3 => (0u8..4, 0usize..8).prop_map(|(c, len)| {
            Value::str(char::from(b'a' + c).to_string().repeat(len))
        }),
        2 => (0u8..3, 23usize..40).prop_map(|(c, len)| {
            Value::str(char::from(b'p' + c).to_string().repeat(len))
        }),
    ]
}

/// A random (k, s, v) table under the given relation qualifier.
fn arb_table(relation: &'static str) -> impl Strategy<Value = Table> {
    proptest::collection::vec((arb_key(), arb_text(), -20i64..20), 0..24).prop_map(move |rows| {
        Table::new(
            Schema::qualified(relation, ["k", "s", "v"]),
            rows.into_iter()
                .map(|(k, s, v)| vec![k, s, Value::Int(v)])
                .collect(),
        )
        .expect("arity matches")
    })
}

// ---------------------------------------------------------------------------
// Harness: engine under every execution mode vs. the reference
// ---------------------------------------------------------------------------

/// Runs `plan` under the parallel default, the sequential path, and batch
/// widths {1, 2, 1024}, asserting every rendering is byte-identical to the
/// reference interpretation.
fn check(plan: &Plan, tables: Vec<(&'static str, Table)>) -> Result<(), TestCaseError> {
    let mut catalog = MemoryCatalog::new();
    let mut map = HashMap::new();
    for (name, table) in tables {
        catalog.register(name, table.clone());
        map.insert(name, table);
    }
    let expected = reference(plan, &map).expect("reference interpretation succeeds");
    let modes: Vec<(&str, ExecOptions)> = vec![
        ("parallel", ExecOptions::default()),
        ("sequential", ExecOptions::sequential()),
        (
            "batch=1",
            ExecOptions {
                batch_size: 1,
                ..ExecOptions::default()
            },
        ),
        (
            "batch=2",
            ExecOptions {
                batch_size: 2,
                ..ExecOptions::sequential()
            },
        ),
        (
            "batch=1024",
            ExecOptions {
                batch_size: 1024,
                ..ExecOptions::default()
            },
        ),
    ];
    for (mode, options) in modes {
        let got = Executor::with_options(&catalog, options)
            .run(plan)
            .expect("engine execution succeeds");
        prop_assert_eq!(
            got.render(),
            expected.render(),
            "mode {} diverged from the reference interpreter",
            mode
        );
    }
    Ok(())
}

fn join_on_k() -> Vec<(ColumnRef, ColumnRef)> {
    vec![(
        ColumnRef::qualified("a", "k"),
        ColumnRef::qualified("b", "k"),
    )]
}

proptest! {
    /// σ and π over mixed inline/pooled/NULL data match the reference.
    #[test]
    fn filter_project_matches_reference(a in arb_table("a"), threshold in -20i64..20) {
        let plan = Plan::scan("a")
            .filter(Expr::col("a.v").binary(BinOp::Gt, Expr::lit(threshold)))
            .project_named(&[("a.s", "s"), ("a.k", "k"), ("a.v", "v")]);
        check(&plan, vec![("a", a)])?;
    }

    /// Inner and left hash joins (memoized key hashes, coercing Int/Float
    /// keys, NULL-key skips) match nested-loop probe × build order.
    #[test]
    fn join_matches_reference(a in arb_table("a"), b in arb_table("b"), left in any::<bool>()) {
        let plan = Plan::Join {
            kind: if left { JoinKind::Left } else { JoinKind::Inner },
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            on: join_on_k(),
        };
        check(&plan, vec![("a", a), ("b", b)])?;
    }

    /// Full UCQ shells — union (with duplicated branches exercising the
    /// common-subplan sharing), distinct, sort, limit — match the reference.
    #[test]
    fn ucq_matches_reference(
        a in arb_table("a"),
        b in arb_table("b"),
        threshold in -20i64..20,
        duplicate_branches in any::<bool>(),
        n in 0usize..40,
    ) {
        let join_branch = Plan::scan("a")
            .join(Plan::scan("b"), join_on_k())
            .filter(Expr::col("a.v").binary(BinOp::Gt, Expr::lit(threshold)))
            .project_named(&[("a.k", "k"), ("b.s", "s"), ("a.v", "v")]);
        let scan_branch = Plan::scan("a").project_named(&[("a.k", "k"), ("a.s", "s"), ("a.v", "v")]);
        let mut branches = vec![join_branch.clone(), scan_branch];
        if duplicate_branches {
            branches.push(join_branch.clone());
            branches.push(join_branch);
        }
        let plan = Plan::union(branches)
            .distinct()
            .sort_by(&["k", "v", "s"])
            .limit(n);
        check(&plan, vec![("a", a), ("b", b)])?;
    }

    /// Distinct over a self-union halves exact duplicates identically in
    /// every execution mode.
    #[test]
    fn distinct_matches_reference(a in arb_table("a")) {
        let plan = Plan::union(vec![Plan::scan("a"), Plan::scan("a")]).distinct();
        check(&plan, vec![("a", a)])?;
    }
}

/// Duplicated union branches execute once: the shared-branch counter moves
/// and the result stays identical to the sequential (no-dedup) path.
#[test]
fn duplicate_union_branches_are_shared() {
    let rows: Vec<Vec<Value>> = (0..64)
        .map(|i| {
            vec![
                Value::Int(i % 7),
                Value::str(format!("shared-branch-payload-string-{}", i % 5)),
                Value::Int(i),
            ]
        })
        .collect();
    let table = Table::new(Schema::qualified("a", ["k", "s", "v"]), rows).unwrap();
    let mut catalog = MemoryCatalog::new();
    catalog.register("a", table);
    let branch = Plan::scan("a")
        .filter(Expr::col("a.v").binary(BinOp::Gt, Expr::lit(3i64)))
        .project_named(&[("a.k", "k"), ("a.s", "s")]);
    let plan = Plan::union(vec![branch.clone(), branch.clone(), branch.clone(), branch]);

    // An explicit 2-worker pool: branch dedup lives on the fan-out path,
    // and the process-wide default pool may be size 1 on small machines.
    let options = ExecOptions {
        pool: Some(std::sync::Arc::new(mdm_relational::Pool::new(2))),
        ..ExecOptions::default()
    };
    let before = mdm_relational::metrics::snapshot().branches_shared;
    let parallel = Executor::with_options(&catalog, options)
        .run(&plan)
        .unwrap();
    let after = mdm_relational::metrics::snapshot().branches_shared;
    // Four identical branches → three dedup hits (the counter is process
    // wide and monotonic, so concurrent tests can only add to the delta).
    assert!(
        after - before >= 3,
        "expected ≥3 shared branches, counter moved {}",
        after - before
    );

    let sequential = Executor::with_options(&catalog, ExecOptions::sequential())
        .run(&plan)
        .unwrap();
    assert_eq!(parallel.render(), sequential.render());
}

//! Relational values and tuples.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::intern::Sym;

/// A dynamically-typed relational value.
///
/// Wrapper rows are dynamically typed (their source APIs are schemaless JSON
/// and XML), so the engine types values per cell. Integers and floats compare
/// and join across types (`25` joins `25.0`): REST APIs routinely disagree on
/// numeric representation across versions, and joins over identifiers must
/// survive that.
///
/// String cells are interned [`Sym`]s, so cloning a value (and therefore a
/// tuple) never allocates: short strings are inline, long strings are
/// refcounted pool entries.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Sym),
}

impl Value {
    /// Shorthand string constructor.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Sym::new(s.as_ref()))
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to floats); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Parses a scalar from the flat text produced by
    /// `mdm_dataform::flatten`: empty → null, then int, float, bool, string.
    pub fn from_text(text: &str) -> Value {
        if text.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = text.parse::<i64>() {
            if text == i.to_string() {
                return Value::Int(i);
            }
        }
        if text.contains('.') || text.contains('e') || text.contains('E') {
            if let Ok(f) = text.parse::<f64>() {
                return Value::Float(f);
            }
        }
        match text {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::str(text),
        }
    }

    /// A rank for cross-type ordering: null < bool < numeric < string.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            // Cross-type numeric equality via f64.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => {
                if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
                    // total_cmp keeps NaN ordered instead of panicking.
                    x.total_cmp(&y)
                } else {
                    a.type_rank().cmp(&b.type_rank())
                }
            }
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must agree with the coercing equality: every numeric hashes
        // through its f64 bit pattern (ints are exact in f64 up to 2^53;
        // identifier values are far below that).
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(_) | Value::Float(_) => {
                2u8.hash(state);
                let f = self.as_f64().expect("numeric");
                // Normalise -0.0 to 0.0 so they hash identically (they are ==).
                let f = if f == 0.0 { 0.0 } else { f };
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

/// A row: one value per schema column.
pub type Tuple = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(25), Value::Float(25.0));
        assert_ne!(Value::Int(25), Value::Float(25.5));
        assert_ne!(Value::Int(25), Value::str("25"));
    }

    #[test]
    fn hash_agrees_with_coercing_equality() {
        let mut map: HashMap<Value, &str> = HashMap::new();
        map.insert(Value::Int(25), "team");
        assert_eq!(map.get(&Value::Float(25.0)), Some(&"team"));
    }

    #[test]
    fn ordering_is_total_and_ranked() {
        let mut values = [
            Value::str("z"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        values.sort();
        assert!(values[0].is_null());
        assert_eq!(values[1], Value::Bool(true));
        assert_eq!(values[2], Value::Float(0.5));
        assert_eq!(values[3], Value::Int(1));
        assert_eq!(values[4], Value::str("z"));
    }

    #[test]
    fn from_text_types_correctly() {
        assert_eq!(Value::from_text(""), Value::Null);
        assert_eq!(Value::from_text("159"), Value::Int(159));
        assert_eq!(Value::from_text("170.18"), Value::Float(170.18));
        assert_eq!(Value::from_text("true"), Value::Bool(true));
        assert_eq!(Value::from_text("left"), Value::str("left"));
        assert_eq!(Value::from_text("007"), Value::str("007"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Int(25).to_string(), "25");
        assert_eq!(Value::Float(25.0).to_string(), "25.0");
        assert_eq!(Value::str("FCB").to_string(), "FCB");
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        let mut map: HashMap<Value, ()> = HashMap::new();
        map.insert(Value::Float(0.0), ());
        assert!(map.contains_key(&Value::Float(-0.0)));
        assert!(map.contains_key(&Value::Int(0)));
    }
}

//! The per-query scan cache: each relation is fetched once per query.
//!
//! A UCQ rewriting routinely references one wrapper from many branches
//! (every version-pair combination re-scans the shared side), and before
//! this cache each branch paid a full fetch + parse + type pass. Entries
//! are keyed by `(relation, provider version, metadata epoch)` so a stale
//! executor can never serve rows across a version bump or a steward
//! mutation, and the fill is *once-only under concurrency*: branch workers
//! racing for the same wrapper serialise on the entry slot, the first
//! fills it (paying retries and breaker bookkeeping exactly once per
//! wrapper per query), the rest clone the `Arc`.
//!
//! Errors are cached too — deliberately. A wrapper that failed terminally
//! fails every branch that references it with the *same* error, which is
//! what makes degraded-mode completeness reports identical between
//! sequential and parallel execution.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::columnar::{self, TypedColumn};
use crate::executor::ExecError;
use crate::value::Tuple;

/// A relation's rows encoded column-major as shared term columns.
pub type EncodedScan = Arc<Vec<Arc<TypedColumn>>>;

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct ScanKey {
    relation: String,
    version: u64,
    epoch: u64,
}

#[derive(Default)]
struct Slot {
    result: Mutex<Option<Result<Arc<Vec<Tuple>>, ExecError>>>,
    /// Lazily encoded columnar view of `result`'s rows: a relation scanned
    /// by many columnar branches pays the term encoding once per query.
    columns: Mutex<Option<EncodedScan>>,
}

/// Hit/miss counters for one query's cache, for tests and metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanCacheStats {
    /// Fetches answered from the cache.
    pub hits: u64,
    /// Fetches that had to run the provider.
    pub misses: u64,
}

/// A per-query cache of materialised scans. See the module docs.
#[derive(Default)]
pub struct ScanCache {
    entries: Mutex<HashMap<ScanKey, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    rows: AtomicU64,
}

impl ScanCache {
    /// An empty cache (one per query execution).
    pub fn new() -> Self {
        ScanCache::default()
    }

    /// The rows for `relation`, fetching through `fetch` only if no entry
    /// for `(relation, version, epoch)` exists yet. Concurrent callers for
    /// the same key block on the filling one and share its result.
    pub fn fetch_or_insert(
        &self,
        relation: &str,
        version: u64,
        epoch: u64,
        fetch: impl FnOnce() -> Result<Vec<Tuple>, ExecError>,
    ) -> Result<Arc<Vec<Tuple>>, ExecError> {
        let slot = {
            let mut entries = self.entries.lock().expect("scan cache poisoned");
            Arc::clone(
                entries
                    .entry(ScanKey {
                        relation: relation.to_string(),
                        version,
                        epoch,
                    })
                    .or_default(),
            )
        };
        let mut result = slot.result.lock().expect("scan cache slot poisoned");
        match &*result {
            Some(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cached.clone()
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let fetched = fetch().map(Arc::new);
                if let Ok(rows) = &fetched {
                    self.rows.fetch_add(rows.len() as u64, Ordering::Relaxed);
                }
                *result = Some(fetched.clone());
                fetched
            }
        }
    }

    /// Like [`ScanCache::fetch_or_insert`], but returns the rows as
    /// encoded term columns (plus the row count). The row result is cached
    /// exactly as before — a query mixing layouts shares one fetch — and
    /// the encoded columns are cached next to it, so encoding happens once
    /// per `(relation, version, epoch)` per query.
    pub fn fetch_or_insert_columns(
        &self,
        relation: &str,
        version: u64,
        epoch: u64,
        width: usize,
        fetch: impl FnOnce() -> Result<Vec<Tuple>, ExecError>,
    ) -> Result<(EncodedScan, usize), ExecError> {
        let rows = self.fetch_or_insert(relation, version, epoch, fetch)?;
        let slot = {
            let entries = self.entries.lock().expect("scan cache poisoned");
            Arc::clone(
                &entries[&ScanKey {
                    relation: relation.to_string(),
                    version,
                    epoch,
                }],
            )
        };
        let mut columns = slot.columns.lock().expect("scan cache slot poisoned");
        let cols = match &*columns {
            Some(cols) => Arc::clone(cols),
            None => {
                let encoded = Arc::new(columnar::encode_rows(&rows, width));
                *columns = Some(Arc::clone(&encoded));
                encoded
            }
        };
        Ok((cols, rows.len()))
    }

    /// Total rows held across all filled entries — the query's input
    /// cardinality, used to size batches and pre-size join tables.
    pub fn cached_rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Lifetime hit/miss counts.
    pub fn stats(&self) -> ScanCacheStats {
        ScanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(n: i64) -> Tuple {
        vec![Value::Int(n)]
    }

    #[test]
    fn second_fetch_for_same_key_is_a_hit() {
        let cache = ScanCache::new();
        let a = cache
            .fetch_or_insert("w1", 1, 0, || Ok(vec![row(1)]))
            .unwrap();
        let b = cache
            .fetch_or_insert("w1", 1, 0, || panic!("must not refetch"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            ScanCacheStats {
                hits: 1,
                misses: 2 - 1
            }
        );
    }

    #[test]
    fn version_and_epoch_partition_the_key_space() {
        let cache = ScanCache::new();
        cache
            .fetch_or_insert("w1", 1, 0, || Ok(vec![row(1)]))
            .unwrap();
        cache
            .fetch_or_insert("w1", 2, 0, || Ok(vec![row(2)]))
            .unwrap();
        cache
            .fetch_or_insert("w1", 1, 7, || Ok(vec![row(3)]))
            .unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn errors_are_cached_and_replayed() {
        let cache = ScanCache::new();
        let first = cache.fetch_or_insert("dead", 1, 0, || Err(ExecError::permanent("gone")));
        assert!(first.is_err());
        let second = cache.fetch_or_insert("dead", 1, 0, || panic!("must not refetch"));
        assert_eq!(second.unwrap_err(), ExecError::permanent("gone"));
        assert_eq!(cache.stats(), ScanCacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn concurrent_fetchers_fill_once() {
        let cache = ScanCache::new();
        let fetches = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache
                        .fetch_or_insert("w", 1, 0, || {
                            fetches.fetch_add(1, Ordering::Relaxed);
                            Ok(vec![row(9)])
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(fetches.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 7);
    }
}

//! The executor: logical plan + catalog → materialised [`Table`].

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;

use crate::algebra::{JoinKind, Plan, SortOrder};
use crate::expr::Expr;
use crate::physical::{
    DistinctExec, FilterExec, HashJoinExec, LimitExec, Operator, ProjectExec, ScanExec, SortExec,
    UnionExec,
};
use crate::resilience::{Deadline, RetryPolicy, ScanGuard};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Tuple;

/// Classifies an [`ExecError`] by what the caller should do about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Retryable: a hiccup that a later attempt may clear.
    Transient,
    /// Non-retryable: bad plan, unknown relation, dead source.
    Permanent,
    /// The source answered with bytes that do not parse.
    Malformed,
    /// A deadline or time budget was exceeded.
    Timeout,
}

impl ErrorKind {
    /// The lowercase label used in messages and metrics.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Transient => "transient",
            ErrorKind::Permanent => "permanent",
            ErrorKind::Malformed => "malformed",
            ErrorKind::Timeout => "timeout",
        }
    }
}

/// An error raised during plan translation or execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecError {
    /// What went wrong, coarsely: drives retry and degraded-mode decisions.
    pub kind: ErrorKind,
    /// The human-readable description.
    pub message: String,
}

impl ExecError {
    /// An error of the given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ExecError {
            kind,
            message: message.into(),
        }
    }

    /// A retryable error.
    pub fn transient(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Transient, message)
    }

    /// A non-retryable error (the default for plan-shape problems).
    pub fn permanent(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Permanent, message)
    }

    /// An unparseable-payload error.
    pub fn malformed(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Malformed, message)
    }

    /// A deadline-exceeded error.
    pub fn timeout(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Timeout, message)
    }

    /// True when a retry can reasonably be expected to succeed.
    pub fn is_transient(&self) -> bool {
        self.kind == ErrorKind::Transient
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error ({}): {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for ExecError {}

/// A source of rows for one named relation.
///
/// In MDM every wrapper is a `RelationProvider`: its schema is the wrapper
/// signature `w(a1, …, an)` and `rows()` runs the wrapper (API call, file
/// read, …) and flattens the payload to 1NF.
pub trait RelationProvider {
    /// The relation's schema (qualified by the relation name).
    fn provider_schema(&self) -> Schema;
    /// Produces the current rows. May fail — a crashed source is an error
    /// the engine surfaces rather than hides (cf. the paper's motivation:
    /// queries over evolved schemas "crash or return partial results").
    fn rows(&self) -> Result<Vec<Tuple>, ExecError>;
}

/// Resolves relation names to providers.
pub trait Catalog {
    /// The provider registered under `name`.
    fn provider(&self, name: &str) -> Option<&dyn RelationProvider>;

    /// The schema of relation `name`, as a `Result` for plan derivation.
    fn relation_schema(&self, name: &str) -> Result<Schema, String> {
        self.provider(name)
            .map(|p| p.provider_schema())
            .ok_or_else(|| format!("unknown relation '{name}'"))
    }
}

/// A catalog of materialised tables (used by tests, benches and the SQLite-
/// replacement path where wrapper outputs are staged before federation).
#[derive(Default)]
pub struct MemoryCatalog {
    tables: HashMap<String, Table>,
}

impl MemoryCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        MemoryCatalog::default()
    }

    /// Registers `table` under `name`, replacing any previous registration.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort();
        names
    }
}

impl RelationProvider for Table {
    fn provider_schema(&self) -> Schema {
        self.schema().clone()
    }

    fn rows(&self) -> Result<Vec<Tuple>, ExecError> {
        Ok(self.rows().to_vec())
    }
}

impl Catalog for MemoryCatalog {
    fn provider(&self, name: &str) -> Option<&dyn RelationProvider> {
        self.tables.get(name).map(|t| t as &dyn RelationProvider)
    }
}

/// Knobs for one plan execution: how hard to retry transient scan
/// failures, and how long the whole query may take.
#[derive(Clone, Debug, Default)]
pub struct ExecOptions {
    /// Retry policy applied to every relation fetch.
    pub retry: RetryPolicy,
    /// Time budget for the whole plan (fetches, retries, and drains).
    pub deadline: Deadline,
}

/// Executes logical plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a dyn Catalog,
    options: ExecOptions,
    guard: Option<&'a dyn ScanGuard>,
    retries: Cell<u64>,
}

impl<'a> Executor<'a> {
    /// Creates an executor over `catalog` with default options (a small
    /// retry budget, no deadline, no circuit breaking).
    pub fn new(catalog: &'a dyn Catalog) -> Self {
        Executor::with_options(catalog, ExecOptions::default())
    }

    /// An executor with explicit retry/deadline options.
    pub fn with_options(catalog: &'a dyn Catalog, options: ExecOptions) -> Self {
        Executor {
            catalog,
            options,
            guard: None,
            retries: Cell::new(0),
        }
    }

    /// Routes every relation fetch through `guard` (circuit breaking).
    pub fn with_guard(mut self, guard: &'a dyn ScanGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Transient scan failures retried (and absorbed) so far.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Runs `plan` to completion, materialising the result.
    pub fn run(&self, plan: &Plan) -> Result<Table, ExecError> {
        if self.options.deadline.expired() {
            return Err(self.options.deadline.exceeded("starting plan execution"));
        }
        let mut op = self.build(plan)?;
        let schema = op.schema().clone();
        // Drain with a periodic deadline check so a huge (or pathological)
        // result cannot blow past the budget unnoticed.
        let mut rows = Vec::new();
        while let Some(tuple) = op.next() {
            rows.push(tuple?);
            if rows.len() % 1024 == 0 && self.options.deadline.expired() {
                return Err(self.options.deadline.exceeded("draining result rows"));
            }
        }
        Table::new(schema, rows).map_err(ExecError::permanent)
    }

    /// Fetches one relation's rows through the guard, the retry policy and
    /// the deadline — the resilient edge between the engine and a source.
    fn fetch_rows(
        &self,
        relation: &str,
        provider: &dyn RelationProvider,
    ) -> Result<Vec<Tuple>, ExecError> {
        if let Some(guard) = self.guard {
            // A breaker rejection is not a new failure; don't record it.
            guard.admit(relation)?;
        }
        let mut attempt: u32 = 1;
        loop {
            if self.options.deadline.expired() {
                let err = self
                    .options
                    .deadline
                    .exceeded(&format!("fetching relation '{relation}'"));
                if let Some(guard) = self.guard {
                    guard.record_failure(relation, &err);
                }
                return Err(err);
            }
            match provider.rows() {
                Ok(rows) => {
                    if let Some(guard) = self.guard {
                        guard.record_success(relation);
                    }
                    return Ok(rows);
                }
                Err(err) if err.is_transient() && attempt < self.options.retry.max_attempts => {
                    let backoff = self.options.retry.backoff(attempt);
                    if let Some(remaining) = self.options.deadline.remaining() {
                        if backoff >= remaining {
                            let timeout = ExecError::timeout(format!(
                                "deadline exhausted retrying '{relation}' after {attempt} \
                                 attempt(s); last error: {}",
                                err.message
                            ));
                            if let Some(guard) = self.guard {
                                guard.record_failure(relation, &timeout);
                            }
                            return Err(timeout);
                        }
                    }
                    self.retries.set(self.retries.get() + 1);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
                Err(err) => {
                    if let Some(guard) = self.guard {
                        guard.record_failure(relation, &err);
                    }
                    return Err(err);
                }
            }
        }
    }

    /// Translates a logical plan into a physical operator tree.
    fn build(&self, plan: &Plan) -> Result<Box<dyn Operator>, ExecError> {
        match plan {
            Plan::Scan { relation } => {
                let provider = self.catalog.provider(relation).ok_or_else(|| {
                    ExecError::permanent(format!("unknown relation '{relation}' in catalog"))
                })?;
                Ok(Box::new(ScanExec::new(
                    provider.provider_schema(),
                    self.fetch_rows(relation, provider)?,
                )))
            }
            Plan::Filter { input, predicate } => Ok(Box::new(FilterExec::new(
                self.build(input)?,
                predicate.clone(),
            ))),
            Plan::Project { input, columns } => {
                let child = self.build(input)?;
                let exprs: Vec<Expr> = columns.iter().map(|(e, _)| e.clone()).collect();
                let schema = Schema::new(columns.iter().map(|(_, name)| name.clone()).collect());
                Ok(Box::new(ProjectExec::new(child, exprs, schema)))
            }
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => {
                let left_op = self.build(left)?;
                let right_op = self.build(right)?;
                let mut left_keys = Vec::with_capacity(on.len());
                let mut right_keys = Vec::with_capacity(on.len());
                for (l, r) in on {
                    left_keys.push(
                        left_op
                            .schema()
                            .index_of(l)
                            .map_err(|e| ExecError::permanent(format!("join key: {e}")))?,
                    );
                    right_keys.push(
                        right_op
                            .schema()
                            .index_of(r)
                            .map_err(|e| ExecError::permanent(format!("join key: {e}")))?,
                    );
                }
                Ok(Box::new(HashJoinExec::new(
                    left_op,
                    right_op,
                    left_keys,
                    right_keys,
                    matches!(kind, JoinKind::Left),
                )?))
            }
            Plan::Union { inputs } => {
                let ops = inputs
                    .iter()
                    .map(|p| self.build(p))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(UnionExec::new(ops)?))
            }
            Plan::Distinct { input } => Ok(Box::new(DistinctExec::new(self.build(input)?))),
            Plan::Sort { input, keys } => {
                let child = self.build(input)?;
                let resolved = keys
                    .iter()
                    .map(|(column, order)| {
                        child
                            .schema()
                            .index_of(column)
                            .map(|i| (i, matches!(order, SortOrder::Desc)))
                            .map_err(ExecError::permanent)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(SortExec::new(child, resolved)?))
            }
            Plan::Limit { input, count } => {
                Ok(Box::new(LimitExec::new(self.build(input)?, *count)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;
    use crate::value::Value;

    fn catalog() -> MemoryCatalog {
        let mut catalog = MemoryCatalog::new();
        catalog.register(
            "w1",
            Table::new(
                Schema::qualified("w1", ["id", "pName", "teamId"]),
                vec![
                    vec![Value::Int(1), Value::str("Lionel Messi"), Value::Int(25)],
                    vec![
                        Value::Int(2),
                        Value::str("Robert Lewandowski"),
                        Value::Int(27),
                    ],
                    vec![
                        Value::Int(3),
                        Value::str("Zlatan Ibrahimovic"),
                        Value::Int(31),
                    ],
                ],
            )
            .unwrap(),
        );
        catalog.register(
            "w2",
            Table::new(
                Schema::qualified("w2", ["id", "name", "shortName"]),
                vec![
                    vec![
                        Value::Int(25),
                        Value::str("FC Barcelona"),
                        Value::str("FCB"),
                    ],
                    vec![
                        Value::Int(27),
                        Value::str("Bayern Munich"),
                        Value::str("FCB2"),
                    ],
                    vec![
                        Value::Int(31),
                        Value::str("Manchester United"),
                        Value::str("MU"),
                    ],
                ],
            )
            .unwrap(),
        );
        catalog
    }

    /// Runs the paper's Figure 8 query and checks Table 1's rows come out.
    #[test]
    fn figure8_query_produces_table1() {
        let catalog = catalog();
        let plan = Plan::scan("w1")
            .join(
                Plan::scan("w2"),
                vec![(
                    ColumnRef::qualified("w1", "teamId"),
                    ColumnRef::qualified("w2", "id"),
                )],
            )
            .project_named(&[("w2.name", "ex:teamName"), ("w1.pName", "ex:playerName")]);
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 3);
        let rendered = table.render();
        assert!(rendered.contains("FC Barcelona      | Lionel Messi"));
        assert!(rendered.contains("Bayern Munich     | Robert Lewandowski"));
        assert!(rendered.contains("Manchester United | Zlatan Ibrahimovic"));
    }

    #[test]
    fn unknown_relation_is_error() {
        let catalog = catalog();
        let err = Executor::new(&catalog)
            .run(&Plan::scan("nope"))
            .unwrap_err();
        assert!(err.message.contains("unknown relation 'nope'"));
        assert_eq!(err.kind, ErrorKind::Permanent);
    }

    #[test]
    fn union_distinct_pipeline() {
        let catalog = catalog();
        let plan = Plan::union(vec![Plan::scan("w2"), Plan::scan("w2")]).distinct();
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn filter_sort_limit_pipeline() {
        let catalog = catalog();
        let plan = Plan::scan("w1")
            .filter(Expr::col("id").binary(crate::expr::BinOp::Gt, Expr::lit(1i64)))
            .sort_by(&["w1.pName"])
            .limit(1);
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows()[0][1], Value::str("Robert Lewandowski"));
    }

    #[test]
    fn bad_join_key_is_error() {
        let catalog = catalog();
        let plan = Plan::scan("w1").join(
            Plan::scan("w2"),
            vec![(ColumnRef::bare("missing"), ColumnRef::bare("id"))],
        );
        let err = Executor::new(&catalog).run(&plan).unwrap_err();
        assert!(err.message.contains("join key"));
    }

    #[test]
    fn relation_schema_through_catalog() {
        let catalog = catalog();
        assert!(catalog.relation_schema("w1").is_ok());
        assert!(catalog.relation_schema("nope").is_err());
    }

    /// A provider that fails with `kind` for its first `failures` fetches,
    /// then serves one row.
    struct Flaky {
        failures: Cell<u32>,
        kind: ErrorKind,
    }

    impl Flaky {
        fn new(failures: u32, kind: ErrorKind) -> Self {
            Flaky {
                failures: Cell::new(failures),
                kind,
            }
        }
    }

    impl RelationProvider for Flaky {
        fn provider_schema(&self) -> Schema {
            Schema::qualified("f", ["id"])
        }

        fn rows(&self) -> Result<Vec<Tuple>, ExecError> {
            let left = self.failures.get();
            if left > 0 {
                self.failures.set(left - 1);
                return Err(ExecError::new(self.kind, "injected"));
            }
            Ok(vec![vec![Value::Int(1)]])
        }
    }

    struct OneProvider<'p> {
        provider: &'p dyn RelationProvider,
    }

    impl Catalog for OneProvider<'_> {
        fn provider(&self, name: &str) -> Option<&dyn RelationProvider> {
            (name == "f").then_some(self.provider)
        }
    }

    #[test]
    fn transient_failures_absorbed_by_retry() {
        let flaky = Flaky::new(2, ErrorKind::Transient);
        let catalog = OneProvider { provider: &flaky };
        let options = ExecOptions {
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: std::time::Duration::ZERO,
                ..RetryPolicy::default()
            },
            deadline: Deadline::none(),
        };
        let executor = Executor::with_options(&catalog, options);
        let table = executor.run(&Plan::scan("f")).unwrap();
        assert_eq!(table.len(), 1);
        assert_eq!(executor.retries(), 2);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_transient_error() {
        let flaky = Flaky::new(10, ErrorKind::Transient);
        let catalog = OneProvider { provider: &flaky };
        let options = ExecOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: std::time::Duration::ZERO,
                ..RetryPolicy::default()
            },
            deadline: Deadline::none(),
        };
        let executor = Executor::with_options(&catalog, options);
        let err = executor.run(&Plan::scan("f")).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Transient);
        assert_eq!(executor.retries(), 2, "two retries after the first attempt");
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let flaky = Flaky::new(1, ErrorKind::Permanent);
        let catalog = OneProvider { provider: &flaky };
        let executor = Executor::new(&catalog);
        let err = executor.run(&Plan::scan("f")).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Permanent);
        assert_eq!(executor.retries(), 0);
    }

    #[test]
    fn expired_deadline_times_out_before_fetching() {
        let catalog = catalog();
        let options = ExecOptions {
            retry: RetryPolicy::none(),
            deadline: Deadline::after(std::time::Duration::ZERO),
        };
        let err = Executor::with_options(&catalog, options)
            .run(&Plan::scan("w1"))
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Timeout);
    }

    #[test]
    fn guard_records_and_breaks_the_scan() {
        use crate::resilience::{BreakerConfig, BreakerRegistry};
        let flaky = Flaky::new(100, ErrorKind::Permanent);
        let catalog = OneProvider { provider: &flaky };
        let registry = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: std::time::Duration::from_secs(60),
        });
        for _ in 0..2 {
            let executor = Executor::new(&catalog).with_guard(&registry);
            assert!(executor.run(&Plan::scan("f")).is_err());
        }
        // Third run is rejected by the open breaker without touching the
        // provider: the failure count stays at 2.
        let executor = Executor::new(&catalog).with_guard(&registry);
        let err = executor.run(&Plan::scan("f")).unwrap_err();
        assert!(err.message.contains("circuit breaker open"), "{err}");
        let snapshot = registry.snapshot();
        assert_eq!(snapshot[0].state, "open");
        assert_eq!(snapshot[0].failures_total, 2);
    }
}

//! The executor: logical plan + catalog → materialised [`Table`].

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::algebra::{JoinKind, Plan, SortOrder};
use crate::columnar::{
    self, ColDistinct, ColFilter, ColHashJoin, ColLimit, ColOperator, ColProject, ColScan,
    ColUnion, Layout,
};
use crate::expr::Expr;
use crate::metrics;
use crate::optimizer::subtree_fingerprint;
use crate::physical::{
    DecodeExec, DistinctExec, FilterExec, HashJoinExec, LimitExec, Operator, ProjectExec, ScanExec,
    SortExec, UnionExec, DEFAULT_BATCH,
};
use crate::pool::{self, Pool};
use crate::resilience::{Deadline, RetryPolicy, ScanGuard};
use crate::scan_cache::ScanCache;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Tuple;

/// Classifies an [`ExecError`] by what the caller should do about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Retryable: a hiccup that a later attempt may clear.
    Transient,
    /// Non-retryable: bad plan, unknown relation, dead source.
    Permanent,
    /// The source answered with bytes that do not parse.
    Malformed,
    /// A deadline or time budget was exceeded.
    Timeout,
}

impl ErrorKind {
    /// The lowercase label used in messages and metrics.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Transient => "transient",
            ErrorKind::Permanent => "permanent",
            ErrorKind::Malformed => "malformed",
            ErrorKind::Timeout => "timeout",
        }
    }
}

/// An error raised during plan translation or execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecError {
    /// What went wrong, coarsely: drives retry and degraded-mode decisions.
    pub kind: ErrorKind,
    /// The human-readable description.
    pub message: String,
}

impl ExecError {
    /// An error of the given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ExecError {
            kind,
            message: message.into(),
        }
    }

    /// A retryable error.
    pub fn transient(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Transient, message)
    }

    /// A non-retryable error (the default for plan-shape problems).
    pub fn permanent(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Permanent, message)
    }

    /// An unparseable-payload error.
    pub fn malformed(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Malformed, message)
    }

    /// A deadline-exceeded error.
    pub fn timeout(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Timeout, message)
    }

    /// True when a retry can reasonably be expected to succeed.
    pub fn is_transient(&self) -> bool {
        self.kind == ErrorKind::Transient
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution error ({}): {}",
            self.kind.label(),
            self.message
        )
    }
}

impl std::error::Error for ExecError {}

/// A source of rows for one named relation.
///
/// In MDM every wrapper is a `RelationProvider`: its schema is the wrapper
/// signature `w(a1, …, an)` and `rows()` runs the wrapper (API call, file
/// read, …) and flattens the payload to 1NF.
/// `Sync` because union branches executing on pool workers fetch through
/// shared references; providers must tolerate concurrent `rows()` calls.
pub trait RelationProvider: Sync {
    /// The relation's schema (qualified by the relation name).
    fn provider_schema(&self) -> Schema;
    /// Produces the current rows. May fail — a crashed source is an error
    /// the engine surfaces rather than hides (cf. the paper's motivation:
    /// queries over evolved schemas "crash or return partial results").
    fn rows(&self) -> Result<Vec<Tuple>, ExecError>;
    /// A version discriminator for the per-query scan cache key; providers
    /// whose rows never change under one identity may leave the default.
    fn version(&self) -> u64 {
        0
    }
}

/// Resolves relation names to providers. `Sync` for the same reason as
/// [`RelationProvider`]: one catalog serves every parallel branch.
pub trait Catalog: Sync {
    /// The provider registered under `name`.
    fn provider(&self, name: &str) -> Option<&dyn RelationProvider>;

    /// The schema of relation `name`, as a `Result` for plan derivation.
    fn relation_schema(&self, name: &str) -> Result<Schema, String> {
        self.provider(name)
            .map(|p| p.provider_schema())
            .ok_or_else(|| format!("unknown relation '{name}'"))
    }
}

/// A catalog of materialised tables (used by tests, benches and the SQLite-
/// replacement path where wrapper outputs are staged before federation).
#[derive(Default)]
pub struct MemoryCatalog {
    tables: HashMap<String, Table>,
}

impl MemoryCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        MemoryCatalog::default()
    }

    /// Registers `table` under `name`, replacing any previous registration.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort();
        names
    }
}

impl RelationProvider for Table {
    fn provider_schema(&self) -> Schema {
        self.schema().clone()
    }

    fn rows(&self) -> Result<Vec<Tuple>, ExecError> {
        Ok(self.rows().to_vec())
    }
}

impl Catalog for MemoryCatalog {
    fn provider(&self, name: &str) -> Option<&dyn RelationProvider> {
        self.tables.get(name).map(|t| t as &dyn RelationProvider)
    }
}

/// Knobs for one plan execution: how hard to retry transient scan
/// failures, how long the whole query may take, and how wide it may fan
/// out.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Retry policy applied to every relation fetch.
    pub retry: RetryPolicy,
    /// Time budget for the whole plan (fetches, retries, and drains).
    pub deadline: Deadline,
    /// Worker pool for parallel union execution and partitioned join
    /// probes. `None` (or a size-1 pool) forces the legacy sequential
    /// path. Defaults to the process-wide [`pool::global`] pool.
    pub pool: Option<Arc<Pool>>,
    /// Tuples pulled per `next_batch` call while draining operators.
    pub batch_size: usize,
    /// Metadata epoch stamped into scan-cache keys so rows can never leak
    /// across a steward mutation.
    pub epoch: u64,
    /// Physical data layout: columnar (fixed-width term ids, vectorized
    /// kernels — the default) or the row-at-a-time escape hatch.
    pub layout: Layout,
    /// Statistics catalog to feed with scan observations (row counts,
    /// per-column distincts) as relations are fetched. Defaults to the
    /// process-wide [`stats::global`](crate::stats::global) catalog;
    /// `None` disables observation.
    pub stats: Option<Arc<crate::stats::StatsCatalog>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            retry: RetryPolicy::default(),
            deadline: Deadline::none(),
            pool: Some(pool::global()),
            batch_size: DEFAULT_BATCH,
            epoch: 0,
            layout: Layout::default(),
            stats: Some(crate::stats::global()),
        }
    }
}

impl ExecOptions {
    /// Options forcing single-threaded execution (the A/B baseline).
    pub fn sequential() -> Self {
        ExecOptions {
            pool: None,
            ..ExecOptions::default()
        }
    }
}

/// The adaptive drain loop never shrinks batches below this width: at tiny
/// widths the per-block dispatch overhead dominates again.
const MIN_ADAPTIVE_BATCH: usize = 64;

/// True when some relation appears in more than one `Scan` node — the case
/// the per-query scan cache exists for.
fn plan_has_repeated_scans(plan: &Plan) -> bool {
    fn walk<'p>(plan: &'p Plan, seen: &mut HashSet<&'p str>) -> bool {
        match plan {
            Plan::Scan { relation } => !seen.insert(relation.as_str()),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => walk(input, seen),
            Plan::Join { left, right, .. } => walk(left, seen) || walk(right, seen),
            Plan::Union { inputs } => inputs.iter().any(|p| walk(p, seen)),
        }
    }
    walk(plan, &mut HashSet::new())
}

/// Executes logical plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a dyn Catalog,
    options: ExecOptions,
    guard: Option<&'a dyn ScanGuard>,
    retries: AtomicU64,
    /// Rows fetched from providers by this executor, feeding the adaptive
    /// batch width (the result can't be wider than its inputs for the
    /// UCQ shapes MDM emits).
    fetched_rows: AtomicU64,
    shared_cache: Option<&'a ScanCache>,
}

impl<'a> Executor<'a> {
    /// Creates an executor over `catalog` with default options (a small
    /// retry budget, no deadline, no circuit breaking).
    pub fn new(catalog: &'a dyn Catalog) -> Self {
        Executor::with_options(catalog, ExecOptions::default())
    }

    /// An executor with explicit retry/deadline options.
    pub fn with_options(catalog: &'a dyn Catalog, options: ExecOptions) -> Self {
        Executor {
            catalog,
            options,
            guard: None,
            retries: AtomicU64::new(0),
            fetched_rows: AtomicU64::new(0),
            shared_cache: None,
        }
    }

    /// Routes every relation fetch through `guard` (circuit breaking).
    pub fn with_guard(mut self, guard: &'a dyn ScanGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Shares `cache` across executors of one query, so sibling branch
    /// executors (degraded mode runs one per branch) fetch each wrapper
    /// exactly once between them. Without this, `run` uses a private
    /// per-call cache with the same within-query guarantee.
    pub fn with_scan_cache(mut self, cache: &'a ScanCache) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Transient scan failures retried (and absorbed) so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// The pool to fan out on, when parallel execution is enabled at all.
    fn fanout_pool(&self) -> Option<&Arc<Pool>> {
        self.options.pool.as_ref().filter(|p| p.size() > 1)
    }

    /// Runs `plan` to completion, materialising the result.
    ///
    /// When a pool is configured and the plan root is a union (bare or
    /// under the UCQ's δ), branches execute concurrently; the output is
    /// byte-identical to sequential execution because branch results are
    /// merged in branch order and deduplicated in first-occurrence order —
    /// exactly the row stream `UnionExec`/`DistinctExec` would produce.
    pub fn run(&self, plan: &Plan) -> Result<Table, ExecError> {
        match self.shared_cache {
            Some(shared) => self.run_with_cache(plan, shared),
            None => {
                // Single-reference plans (no relation scanned twice, no
                // shared cache to feed) skip the cache's mutex-and-slot
                // bookkeeping entirely: scans fetch straight into an Arc.
                let cache = ScanCache::new();
                if plan_has_repeated_scans(plan) {
                    self.run_with_cache(plan, &cache)
                } else {
                    self.run_bypassing(plan, &cache)
                }
            }
        }
    }

    fn run_with_cache(&self, plan: &Plan, cache: &ScanCache) -> Result<Table, ExecError> {
        self.dispatch(plan, cache, false)
    }

    fn run_bypassing(&self, plan: &Plan, cache: &ScanCache) -> Result<Table, ExecError> {
        self.dispatch(plan, cache, true)
    }

    fn dispatch(&self, plan: &Plan, cache: &ScanCache, bypass: bool) -> Result<Table, ExecError> {
        if self.fanout_pool().is_some() {
            match plan {
                Plan::Distinct { input } => {
                    if let Plan::Union { inputs } = &**input {
                        if inputs.len() > 1 {
                            return self.run_union(inputs, true, cache, bypass);
                        }
                    }
                }
                Plan::Union { inputs } if inputs.len() > 1 => {
                    return self.run_union(inputs, false, cache, bypass);
                }
                _ => {}
            }
        }
        self.run_sequential(plan, cache, bypass)
    }

    /// Executes union branches on the pool and merges them in branch order
    /// (with an optional pre-sized streaming δ), reproducing the
    /// sequential row stream exactly.
    ///
    /// Branches with identical subtrees (frequent when coexisting versions
    /// share the queried attributes) are detected by subtree fingerprint
    /// and executed once; duplicates reuse the representative's result.
    /// This composes with the scan cache — the cache dedupes *fetches*,
    /// this dedupes *operator work* — and it cannot change the output:
    /// the reused table (or error, errors being cached per wrapper) is
    /// exactly what re-running the identical branch would produce.
    fn run_union(
        &self,
        branches: &[Plan],
        distinct: bool,
        cache: &ScanCache,
        bypass: bool,
    ) -> Result<Table, ExecError> {
        let pool = self.fanout_pool().expect("checked by caller");
        // `representative[i]` points at the first branch with the same
        // fingerprint; fingerprint hits are verified by plan equality so a
        // 64-bit collision can never alias two different branches.
        let mut first_by_fp: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut unique: Vec<usize> = Vec::with_capacity(branches.len());
        let mut representative: Vec<usize> = Vec::with_capacity(branches.len());
        for (i, branch) in branches.iter().enumerate() {
            let fp = subtree_fingerprint(branch);
            let candidates = first_by_fp.entry(fp).or_default();
            match candidates.iter().find(|&&u| branches[u] == *branch) {
                Some(&u) => {
                    metrics::record_shared_branch();
                    representative.push(u);
                }
                None => {
                    candidates.push(i);
                    representative.push(i);
                    unique.push(i);
                }
            }
        }
        let mut results: Vec<Option<Result<Table, ExecError>>> = pool
            .run(unique.len(), |j| {
                self.dispatch(&branches[unique[j]], cache, bypass)
            })
            .into_iter()
            .map(Some)
            .collect();
        // Re-expand: branch i takes the result of its representative. The
        // last consumer of a slot moves the table; earlier duplicates clone
        // (cells are interned, so a clone is rows × pointer-sized copies).
        let mut slot_of: HashMap<usize, usize> = HashMap::with_capacity(unique.len());
        for (j, &u) in unique.iter().enumerate() {
            slot_of.insert(u, j);
        }
        let mut uses = vec![0usize; unique.len()];
        for &rep in &representative {
            uses[slot_of[&rep]] += 1;
        }
        let mut tables = Vec::with_capacity(branches.len());
        let mut total = 0;
        for rep in representative {
            let j = slot_of[&rep];
            uses[j] -= 1;
            let result = if uses[j] == 0 {
                results[j].take().expect("each slot taken once")
            } else {
                results[j].clone().expect("slot still live")
            };
            // First error in branch order, matching the sequential
            // depth-first build.
            let table = result?;
            total += table.len();
            tables.push(table);
        }
        let schema = tables
            .first()
            .map(|t| t.schema().clone())
            .ok_or_else(|| ExecError::permanent("union of zero inputs"))?;
        for table in &tables {
            if table.schema().len() != schema.len() {
                return Err(ExecError::permanent(format!(
                    "union arity mismatch: {} vs {}",
                    schema,
                    table.schema()
                )));
            }
        }
        let mut rows = Vec::with_capacity(total);
        if distinct {
            let mut seen: HashSet<Tuple> = HashSet::with_capacity(total);
            for table in tables {
                for row in table.into_rows() {
                    if seen.insert(row.clone()) {
                        rows.push(row);
                    }
                }
                if self.options.deadline.expired() {
                    return Err(self.options.deadline.exceeded("merging union branches"));
                }
            }
        } else {
            for table in tables {
                rows.extend(table.into_rows());
            }
        }
        Table::new(schema, rows).map_err(ExecError::permanent)
    }

    fn run_sequential(
        &self,
        plan: &Plan,
        cache: &ScanCache,
        bypass: bool,
    ) -> Result<Table, ExecError> {
        if self.options.deadline.expired() {
            return Err(self.options.deadline.exceeded("starting plan execution"));
        }
        let built = match self.options.layout {
            Layout::Row => Built::Row(self.build(plan, cache, bypass)?),
            Layout::Columnar => self.build_hybrid(plan, cache, bypass)?,
        };
        let schema = built.schema().clone();
        // Drain block-at-a-time with a deadline check per block so a huge
        // (or pathological) result cannot blow past the budget unnoticed.
        // The batch width adapts downward to the input size (known exactly
        // after `build`, which fetched every scanned relation): a 100-row
        // query should not pay 1024-row drain bookkeeping.
        let fetched = self.fetched_rows.load(Ordering::Relaxed) as usize;
        let batch_size = match fetched {
            0 => self.options.batch_size.max(1),
            n => self
                .options
                .batch_size
                .max(1)
                .min(n.max(MIN_ADAPTIVE_BATCH)),
        };
        match built {
            Built::Row(mut op) => {
                let mut rows = Vec::new();
                while let Some(block) = op.next_block(batch_size) {
                    let block = block?;
                    metrics::record_batch(block.len() as u64);
                    rows.extend(block.into_tuples());
                    if self.options.deadline.expired() {
                        return Err(self.options.deadline.exceeded("draining result rows"));
                    }
                }
                Table::new(schema, rows).map_err(ExecError::permanent)
            }
            Built::Col(mut op) => {
                // Batches stay encoded until the whole result is known;
                // only surviving rows pay decode, in `from_column_batches`.
                let mut batches = Vec::new();
                while let Some(batch) = op.next_cols(batch_size) {
                    let batch = batch?;
                    metrics::record_batch(batch.len() as u64);
                    batches.push(batch);
                    if self.options.deadline.expired() {
                        return Err(self.options.deadline.exceeded("draining result rows"));
                    }
                }
                Table::from_column_batches(schema, &batches).map_err(ExecError::permanent)
            }
        }
    }

    /// Fetches one relation's rows through the guard, the retry policy and
    /// the deadline — the resilient edge between the engine and a source.
    fn fetch_rows(
        &self,
        relation: &str,
        provider: &dyn RelationProvider,
    ) -> Result<Vec<Tuple>, ExecError> {
        if let Some(guard) = self.guard {
            // A breaker rejection is not a new failure; don't record it.
            guard.admit(relation)?;
        }
        let mut attempt: u32 = 1;
        loop {
            if self.options.deadline.expired() {
                let err = self
                    .options
                    .deadline
                    .exceeded(&format!("fetching relation '{relation}'"));
                if let Some(guard) = self.guard {
                    guard.record_failure(relation, &err);
                }
                return Err(err);
            }
            match provider.rows() {
                Ok(rows) => {
                    if let Some(guard) = self.guard {
                        guard.record_success(relation);
                    }
                    self.fetched_rows
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    // Piggyback statistics observation on the fetch we
                    // already paid for: profile the rows unless the
                    // catalog has this (relation, version, row count) at
                    // the current stats epoch already.
                    if let Some(stats) = &self.options.stats {
                        if stats.needs_observation(relation, provider.version(), rows.len()) {
                            stats.observe(
                                relation,
                                provider.version(),
                                &provider.provider_schema(),
                                &rows,
                            );
                        }
                    }
                    return Ok(rows);
                }
                Err(err) if err.is_transient() && attempt < self.options.retry.max_attempts => {
                    let backoff = self.options.retry.backoff(attempt);
                    if let Some(remaining) = self.options.deadline.remaining() {
                        if backoff >= remaining {
                            let timeout = ExecError::timeout(format!(
                                "deadline exhausted retrying '{relation}' after {attempt} \
                                 attempt(s); last error: {}",
                                err.message
                            ));
                            if let Some(guard) = self.guard {
                                guard.record_failure(relation, &timeout);
                            }
                            return Err(timeout);
                        }
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
                Err(err) => {
                    if let Some(guard) = self.guard {
                        guard.record_failure(relation, &err);
                    }
                    return Err(err);
                }
            }
        }
    }

    /// Translates a logical plan into a physical operator tree. Scans go
    /// through the per-query cache: a relation referenced by `k` branches
    /// is fetched (and pays retries/breaker events) once, not `k` times.
    /// With `bypass` (single-reference plans only), the cache's slot
    /// machinery is skipped and scans fetch straight into an `Arc`.
    fn build(
        &self,
        plan: &Plan,
        cache: &ScanCache,
        bypass: bool,
    ) -> Result<Box<dyn Operator>, ExecError> {
        match plan {
            Plan::Scan { relation } => {
                let provider = self.catalog.provider(relation).ok_or_else(|| {
                    ExecError::permanent(format!("unknown relation '{relation}' in catalog"))
                })?;
                let rows = if bypass {
                    Arc::new(self.fetch_rows(relation, provider)?)
                } else {
                    cache.fetch_or_insert(
                        relation,
                        provider.version(),
                        self.options.epoch,
                        || self.fetch_rows(relation, provider),
                    )?
                };
                Ok(Box::new(ScanExec::shared(provider.provider_schema(), rows)))
            }
            Plan::Filter { input, predicate } => Ok(Box::new(FilterExec::new(
                self.build(input, cache, bypass)?,
                predicate.clone(),
            ))),
            Plan::Project { input, columns } => {
                let child = self.build(input, cache, bypass)?;
                let exprs: Vec<Expr> = columns.iter().map(|(e, _)| e.clone()).collect();
                let schema = Schema::new(columns.iter().map(|(_, name)| name.clone()).collect());
                Ok(Box::new(ProjectExec::new(child, exprs, schema)))
            }
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => {
                let left_op = self.build(left, cache, bypass)?;
                let right_op = self.build(right, cache, bypass)?;
                let mut left_keys = Vec::with_capacity(on.len());
                let mut right_keys = Vec::with_capacity(on.len());
                for (l, r) in on {
                    left_keys.push(
                        left_op
                            .schema()
                            .index_of(l)
                            .map_err(|e| ExecError::permanent(format!("join key: {e}")))?,
                    );
                    right_keys.push(
                        right_op
                            .schema()
                            .index_of(r)
                            .map_err(|e| ExecError::permanent(format!("join key: {e}")))?,
                    );
                }
                Ok(Box::new(
                    HashJoinExec::new(
                        left_op,
                        right_op,
                        left_keys,
                        right_keys,
                        matches!(kind, JoinKind::Left),
                    )?
                    .with_pool(self.options.pool.clone()),
                ))
            }
            Plan::Union { inputs } => {
                let ops = inputs
                    .iter()
                    .map(|p| self.build(p, cache, bypass))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(UnionExec::new(ops)?))
            }
            Plan::Distinct { input } => Ok(Box::new(DistinctExec::new(
                self.build(input, cache, bypass)?,
            ))),
            Plan::Sort { input, keys } => {
                let child = self.build(input, cache, bypass)?;
                let resolved = keys
                    .iter()
                    .map(|(column, order)| {
                        child
                            .schema()
                            .index_of(column)
                            .map(|i| (i, matches!(order, SortOrder::Desc)))
                            .map_err(ExecError::permanent)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(SortExec::new(child, resolved)?))
            }
            Plan::Limit { input, count } => Ok(Box::new(LimitExec::new(
                self.build(input, cache, bypass)?,
                *count,
            ))),
        }
    }

    /// Translates a logical plan into a hybrid operator tree: columnar
    /// wherever the plan shape allows (scan/filter/project/join/union/
    /// distinct/limit), dropping to the row plane through [`DecodeExec`]
    /// at the first stage that only exists row-wise (sort) or when a
    /// subtree is degenerate (zero-width schema, empty projection). The
    /// resulting row stream is byte-identical to [`Executor::build`]'s.
    fn build_hybrid(
        &self,
        plan: &Plan,
        cache: &ScanCache,
        bypass: bool,
    ) -> Result<Built, ExecError> {
        match plan {
            Plan::Scan { relation } => {
                let provider = self.catalog.provider(relation).ok_or_else(|| {
                    ExecError::permanent(format!("unknown relation '{relation}' in catalog"))
                })?;
                let schema = provider.provider_schema();
                if schema.is_empty() {
                    // A zero-column relation has no columns to carry the
                    // row count; keep it on the row plane.
                    return self.build(plan, cache, bypass).map(Built::Row);
                }
                let (columns, len) = if bypass {
                    let rows = self.fetch_rows(relation, provider)?;
                    let len = rows.len();
                    (Arc::new(columnar::encode_rows(&rows, schema.len())), len)
                } else {
                    cache.fetch_or_insert_columns(
                        relation,
                        provider.version(),
                        self.options.epoch,
                        schema.len(),
                        || self.fetch_rows(relation, provider),
                    )?
                };
                Ok(Built::Col(Box::new(ColScan::new(schema, columns, len))))
            }
            Plan::Filter { input, predicate } => match self.build_hybrid(input, cache, bypass)? {
                Built::Col(child) => Ok(Built::Col(Box::new(ColFilter::new(
                    child,
                    predicate.clone(),
                )))),
                Built::Row(child) => Ok(Built::Row(Box::new(FilterExec::new(
                    child,
                    predicate.clone(),
                )))),
            },
            Plan::Project { input, columns } => {
                let child = self.build_hybrid(input, cache, bypass)?;
                let exprs: Vec<Expr> = columns.iter().map(|(e, _)| e.clone()).collect();
                let schema = Schema::new(columns.iter().map(|(_, name)| name.clone()).collect());
                match child {
                    Built::Col(child) if !exprs.is_empty() => {
                        Ok(Built::Col(Box::new(ColProject::new(child, exprs, schema))))
                    }
                    child => Ok(Built::Row(Box::new(ProjectExec::new(
                        child.into_row(),
                        exprs,
                        schema,
                    )))),
                }
            }
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => {
                let left_built = self.build_hybrid(left, cache, bypass)?;
                let right_built = self.build_hybrid(right, cache, bypass)?;
                let mut left_keys = Vec::with_capacity(on.len());
                let mut right_keys = Vec::with_capacity(on.len());
                for (l, r) in on {
                    left_keys.push(
                        left_built
                            .schema()
                            .index_of(l)
                            .map_err(|e| ExecError::permanent(format!("join key: {e}")))?,
                    );
                    right_keys.push(
                        right_built
                            .schema()
                            .index_of(r)
                            .map_err(|e| ExecError::permanent(format!("join key: {e}")))?,
                    );
                }
                let emit_unmatched_left = matches!(kind, JoinKind::Left);
                match (left_built, right_built) {
                    (Built::Col(l), Built::Col(r)) => Ok(Built::Col(Box::new(
                        ColHashJoin::new(l, r, left_keys, right_keys, emit_unmatched_left)?
                            .with_pool(self.options.pool.clone()),
                    ))),
                    (l, r) => Ok(Built::Row(Box::new(
                        HashJoinExec::new(
                            l.into_row(),
                            r.into_row(),
                            left_keys,
                            right_keys,
                            emit_unmatched_left,
                        )?
                        .with_pool(self.options.pool.clone()),
                    ))),
                }
            }
            Plan::Union { inputs } => {
                let built = inputs
                    .iter()
                    .map(|p| self.build_hybrid(p, cache, bypass))
                    .collect::<Result<Vec<_>, _>>()?;
                if built.iter().all(|b| matches!(b, Built::Col(_))) {
                    let ops = built
                        .into_iter()
                        .map(|b| match b {
                            Built::Col(op) => op,
                            Built::Row(_) => unreachable!("checked all-columnar"),
                        })
                        .collect();
                    Ok(Built::Col(Box::new(ColUnion::new(ops)?)))
                } else {
                    let ops = built.into_iter().map(Built::into_row).collect();
                    Ok(Built::Row(Box::new(UnionExec::new(ops)?)))
                }
            }
            Plan::Distinct { input } => match self.build_hybrid(input, cache, bypass)? {
                Built::Col(child) => Ok(Built::Col(Box::new(ColDistinct::new(child)))),
                Built::Row(child) => Ok(Built::Row(Box::new(DistinctExec::new(child)))),
            },
            Plan::Sort { input, keys } => {
                let child = self.build_hybrid(input, cache, bypass)?.into_row();
                let resolved = keys
                    .iter()
                    .map(|(column, order)| {
                        child
                            .schema()
                            .index_of(column)
                            .map(|i| (i, matches!(order, SortOrder::Desc)))
                            .map_err(ExecError::permanent)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Built::Row(Box::new(SortExec::new(child, resolved)?)))
            }
            Plan::Limit { input, count } => match self.build_hybrid(input, cache, bypass)? {
                Built::Col(child) => Ok(Built::Col(Box::new(ColLimit::new(child, *count)))),
                Built::Row(child) => Ok(Built::Row(Box::new(LimitExec::new(child, *count)))),
            },
        }
    }
}

/// A physical operator of either layout, as produced by
/// [`Executor::build_hybrid`].
enum Built {
    Row(Box<dyn Operator>),
    Col(Box<dyn ColOperator>),
}

impl Built {
    fn schema(&self) -> &Schema {
        match self {
            Built::Row(op) => op.schema(),
            Built::Col(op) => op.schema(),
        }
    }

    /// Coerces to the row plane, decoding columnar output if needed.
    fn into_row(self) -> Box<dyn Operator> {
        match self {
            Built::Row(op) => op,
            Built::Col(op) => Box::new(DecodeExec::new(op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;
    use crate::value::Value;

    fn catalog() -> MemoryCatalog {
        let mut catalog = MemoryCatalog::new();
        catalog.register(
            "w1",
            Table::new(
                Schema::qualified("w1", ["id", "pName", "teamId"]),
                vec![
                    vec![Value::Int(1), Value::str("Lionel Messi"), Value::Int(25)],
                    vec![
                        Value::Int(2),
                        Value::str("Robert Lewandowski"),
                        Value::Int(27),
                    ],
                    vec![
                        Value::Int(3),
                        Value::str("Zlatan Ibrahimovic"),
                        Value::Int(31),
                    ],
                ],
            )
            .unwrap(),
        );
        catalog.register(
            "w2",
            Table::new(
                Schema::qualified("w2", ["id", "name", "shortName"]),
                vec![
                    vec![
                        Value::Int(25),
                        Value::str("FC Barcelona"),
                        Value::str("FCB"),
                    ],
                    vec![
                        Value::Int(27),
                        Value::str("Bayern Munich"),
                        Value::str("FCB2"),
                    ],
                    vec![
                        Value::Int(31),
                        Value::str("Manchester United"),
                        Value::str("MU"),
                    ],
                ],
            )
            .unwrap(),
        );
        catalog
    }

    /// Runs the paper's Figure 8 query and checks Table 1's rows come out.
    #[test]
    fn figure8_query_produces_table1() {
        let catalog = catalog();
        let plan = Plan::scan("w1")
            .join(
                Plan::scan("w2"),
                vec![(
                    ColumnRef::qualified("w1", "teamId"),
                    ColumnRef::qualified("w2", "id"),
                )],
            )
            .project_named(&[("w2.name", "ex:teamName"), ("w1.pName", "ex:playerName")]);
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 3);
        let rendered = table.render();
        assert!(rendered.contains("FC Barcelona      | Lionel Messi"));
        assert!(rendered.contains("Bayern Munich     | Robert Lewandowski"));
        assert!(rendered.contains("Manchester United | Zlatan Ibrahimovic"));
    }

    #[test]
    fn unknown_relation_is_error() {
        let catalog = catalog();
        let err = Executor::new(&catalog)
            .run(&Plan::scan("nope"))
            .unwrap_err();
        assert!(err.message.contains("unknown relation 'nope'"));
        assert_eq!(err.kind, ErrorKind::Permanent);
    }

    #[test]
    fn union_distinct_pipeline() {
        let catalog = catalog();
        let plan = Plan::union(vec![Plan::scan("w2"), Plan::scan("w2")]).distinct();
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn filter_sort_limit_pipeline() {
        let catalog = catalog();
        let plan = Plan::scan("w1")
            .filter(Expr::col("id").binary(crate::expr::BinOp::Gt, Expr::lit(1i64)))
            .sort_by(&["w1.pName"])
            .limit(1);
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows()[0][1], Value::str("Robert Lewandowski"));
    }

    #[test]
    fn bad_join_key_is_error() {
        let catalog = catalog();
        let plan = Plan::scan("w1").join(
            Plan::scan("w2"),
            vec![(ColumnRef::bare("missing"), ColumnRef::bare("id"))],
        );
        let err = Executor::new(&catalog).run(&plan).unwrap_err();
        assert!(err.message.contains("join key"));
    }

    #[test]
    fn relation_schema_through_catalog() {
        let catalog = catalog();
        assert!(catalog.relation_schema("w1").is_ok());
        assert!(catalog.relation_schema("nope").is_err());
    }

    /// A provider that fails with `kind` for its first `failures` fetches,
    /// then serves one row.
    struct Flaky {
        failures: std::sync::atomic::AtomicU32,
        kind: ErrorKind,
    }

    impl Flaky {
        fn new(failures: u32, kind: ErrorKind) -> Self {
            Flaky {
                failures: std::sync::atomic::AtomicU32::new(failures),
                kind,
            }
        }
    }

    impl RelationProvider for Flaky {
        fn provider_schema(&self) -> Schema {
            Schema::qualified("f", ["id"])
        }

        fn rows(&self) -> Result<Vec<Tuple>, ExecError> {
            let left = self.failures.load(Ordering::Relaxed);
            if left > 0 {
                self.failures.store(left - 1, Ordering::Relaxed);
                return Err(ExecError::new(self.kind, "injected"));
            }
            Ok(vec![vec![Value::Int(1)]])
        }
    }

    struct OneProvider<'p> {
        provider: &'p dyn RelationProvider,
    }

    impl Catalog for OneProvider<'_> {
        fn provider(&self, name: &str) -> Option<&dyn RelationProvider> {
            (name == "f").then_some(self.provider)
        }
    }

    #[test]
    fn transient_failures_absorbed_by_retry() {
        let flaky = Flaky::new(2, ErrorKind::Transient);
        let catalog = OneProvider { provider: &flaky };
        let options = ExecOptions {
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: std::time::Duration::ZERO,
                ..RetryPolicy::default()
            },
            deadline: Deadline::none(),
            ..ExecOptions::default()
        };
        let executor = Executor::with_options(&catalog, options);
        let table = executor.run(&Plan::scan("f")).unwrap();
        assert_eq!(table.len(), 1);
        assert_eq!(executor.retries(), 2);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_transient_error() {
        let flaky = Flaky::new(10, ErrorKind::Transient);
        let catalog = OneProvider { provider: &flaky };
        let options = ExecOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: std::time::Duration::ZERO,
                ..RetryPolicy::default()
            },
            deadline: Deadline::none(),
            ..ExecOptions::default()
        };
        let executor = Executor::with_options(&catalog, options);
        let err = executor.run(&Plan::scan("f")).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Transient);
        assert_eq!(executor.retries(), 2, "two retries after the first attempt");
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let flaky = Flaky::new(1, ErrorKind::Permanent);
        let catalog = OneProvider { provider: &flaky };
        let executor = Executor::new(&catalog);
        let err = executor.run(&Plan::scan("f")).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Permanent);
        assert_eq!(executor.retries(), 0);
    }

    #[test]
    fn expired_deadline_times_out_before_fetching() {
        let catalog = catalog();
        let options = ExecOptions {
            retry: RetryPolicy::none(),
            deadline: Deadline::after(std::time::Duration::ZERO),
            ..ExecOptions::default()
        };
        let err = Executor::with_options(&catalog, options)
            .run(&Plan::scan("w1"))
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Timeout);
    }

    #[test]
    fn guard_records_and_breaks_the_scan() {
        use crate::resilience::{BreakerConfig, BreakerRegistry};
        let flaky = Flaky::new(100, ErrorKind::Permanent);
        let catalog = OneProvider { provider: &flaky };
        let registry = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: std::time::Duration::from_secs(60),
        });
        for _ in 0..2 {
            let executor = Executor::new(&catalog).with_guard(&registry);
            assert!(executor.run(&Plan::scan("f")).is_err());
        }
        // Third run is rejected by the open breaker without touching the
        // provider: the failure count stays at 2.
        let executor = Executor::new(&catalog).with_guard(&registry);
        let err = executor.run(&Plan::scan("f")).unwrap_err();
        assert!(err.message.contains("circuit breaker open"), "{err}");
        let snapshot = registry.snapshot();
        assert_eq!(snapshot[0].state, "open");
        assert_eq!(snapshot[0].failures_total, 2);
    }
}

//! The executor: logical plan + catalog → materialised [`Table`].

use std::collections::HashMap;
use std::fmt;

use crate::algebra::{JoinKind, Plan, SortOrder};
use crate::expr::Expr;
use crate::physical::{
    drain, DistinctExec, FilterExec, HashJoinExec, LimitExec, Operator, ProjectExec, ScanExec,
    SortExec, UnionExec,
};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Tuple;

/// An error raised during plan translation or execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecError(pub String);

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

/// A source of rows for one named relation.
///
/// In MDM every wrapper is a `RelationProvider`: its schema is the wrapper
/// signature `w(a1, …, an)` and `rows()` runs the wrapper (API call, file
/// read, …) and flattens the payload to 1NF.
pub trait RelationProvider {
    /// The relation's schema (qualified by the relation name).
    fn provider_schema(&self) -> Schema;
    /// Produces the current rows. May fail — a crashed source is an error
    /// the engine surfaces rather than hides (cf. the paper's motivation:
    /// queries over evolved schemas "crash or return partial results").
    fn rows(&self) -> Result<Vec<Tuple>, ExecError>;
}

/// Resolves relation names to providers.
pub trait Catalog {
    /// The provider registered under `name`.
    fn provider(&self, name: &str) -> Option<&dyn RelationProvider>;

    /// The schema of relation `name`, as a `Result` for plan derivation.
    fn relation_schema(&self, name: &str) -> Result<Schema, String> {
        self.provider(name)
            .map(|p| p.provider_schema())
            .ok_or_else(|| format!("unknown relation '{name}'"))
    }
}

/// A catalog of materialised tables (used by tests, benches and the SQLite-
/// replacement path where wrapper outputs are staged before federation).
#[derive(Default)]
pub struct MemoryCatalog {
    tables: HashMap<String, Table>,
}

impl MemoryCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        MemoryCatalog::default()
    }

    /// Registers `table` under `name`, replacing any previous registration.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort();
        names
    }
}

impl RelationProvider for Table {
    fn provider_schema(&self) -> Schema {
        self.schema().clone()
    }

    fn rows(&self) -> Result<Vec<Tuple>, ExecError> {
        Ok(self.rows().to_vec())
    }
}

impl Catalog for MemoryCatalog {
    fn provider(&self, name: &str) -> Option<&dyn RelationProvider> {
        self.tables.get(name).map(|t| t as &dyn RelationProvider)
    }
}

/// Executes logical plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a dyn Catalog,
}

impl<'a> Executor<'a> {
    /// Creates an executor over `catalog`.
    pub fn new(catalog: &'a dyn Catalog) -> Self {
        Executor { catalog }
    }

    /// Runs `plan` to completion, materialising the result.
    pub fn run(&self, plan: &Plan) -> Result<Table, ExecError> {
        let op = self.build(plan)?;
        let schema = op.schema().clone();
        let rows = drain(op)?;
        Table::new(schema, rows).map_err(ExecError)
    }

    /// Translates a logical plan into a physical operator tree.
    fn build(&self, plan: &Plan) -> Result<Box<dyn Operator>, ExecError> {
        match plan {
            Plan::Scan { relation } => {
                let provider = self.catalog.provider(relation).ok_or_else(|| {
                    ExecError(format!("unknown relation '{relation}' in catalog"))
                })?;
                Ok(Box::new(ScanExec::new(
                    provider.provider_schema(),
                    provider.rows()?,
                )))
            }
            Plan::Filter { input, predicate } => Ok(Box::new(FilterExec::new(
                self.build(input)?,
                predicate.clone(),
            ))),
            Plan::Project { input, columns } => {
                let child = self.build(input)?;
                let exprs: Vec<Expr> = columns.iter().map(|(e, _)| e.clone()).collect();
                let schema = Schema::new(columns.iter().map(|(_, name)| name.clone()).collect());
                Ok(Box::new(ProjectExec::new(child, exprs, schema)))
            }
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => {
                let left_op = self.build(left)?;
                let right_op = self.build(right)?;
                let mut left_keys = Vec::with_capacity(on.len());
                let mut right_keys = Vec::with_capacity(on.len());
                for (l, r) in on {
                    left_keys.push(
                        left_op
                            .schema()
                            .index_of(l)
                            .map_err(|e| ExecError(format!("join key: {e}")))?,
                    );
                    right_keys.push(
                        right_op
                            .schema()
                            .index_of(r)
                            .map_err(|e| ExecError(format!("join key: {e}")))?,
                    );
                }
                Ok(Box::new(HashJoinExec::new(
                    left_op,
                    right_op,
                    left_keys,
                    right_keys,
                    matches!(kind, JoinKind::Left),
                )?))
            }
            Plan::Union { inputs } => {
                let ops = inputs
                    .iter()
                    .map(|p| self.build(p))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(UnionExec::new(ops)?))
            }
            Plan::Distinct { input } => Ok(Box::new(DistinctExec::new(self.build(input)?))),
            Plan::Sort { input, keys } => {
                let child = self.build(input)?;
                let resolved = keys
                    .iter()
                    .map(|(column, order)| {
                        child
                            .schema()
                            .index_of(column)
                            .map(|i| (i, matches!(order, SortOrder::Desc)))
                            .map_err(ExecError)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(SortExec::new(child, resolved)?))
            }
            Plan::Limit { input, count } => {
                Ok(Box::new(LimitExec::new(self.build(input)?, *count)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;
    use crate::value::Value;

    fn catalog() -> MemoryCatalog {
        let mut catalog = MemoryCatalog::new();
        catalog.register(
            "w1",
            Table::new(
                Schema::qualified("w1", ["id", "pName", "teamId"]),
                vec![
                    vec![Value::Int(1), Value::str("Lionel Messi"), Value::Int(25)],
                    vec![
                        Value::Int(2),
                        Value::str("Robert Lewandowski"),
                        Value::Int(27),
                    ],
                    vec![
                        Value::Int(3),
                        Value::str("Zlatan Ibrahimovic"),
                        Value::Int(31),
                    ],
                ],
            )
            .unwrap(),
        );
        catalog.register(
            "w2",
            Table::new(
                Schema::qualified("w2", ["id", "name", "shortName"]),
                vec![
                    vec![
                        Value::Int(25),
                        Value::str("FC Barcelona"),
                        Value::str("FCB"),
                    ],
                    vec![
                        Value::Int(27),
                        Value::str("Bayern Munich"),
                        Value::str("FCB2"),
                    ],
                    vec![
                        Value::Int(31),
                        Value::str("Manchester United"),
                        Value::str("MU"),
                    ],
                ],
            )
            .unwrap(),
        );
        catalog
    }

    /// Runs the paper's Figure 8 query and checks Table 1's rows come out.
    #[test]
    fn figure8_query_produces_table1() {
        let catalog = catalog();
        let plan = Plan::scan("w1")
            .join(
                Plan::scan("w2"),
                vec![(
                    ColumnRef::qualified("w1", "teamId"),
                    ColumnRef::qualified("w2", "id"),
                )],
            )
            .project_named(&[("w2.name", "ex:teamName"), ("w1.pName", "ex:playerName")]);
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 3);
        let rendered = table.render();
        assert!(rendered.contains("FC Barcelona      | Lionel Messi"));
        assert!(rendered.contains("Bayern Munich     | Robert Lewandowski"));
        assert!(rendered.contains("Manchester United | Zlatan Ibrahimovic"));
    }

    #[test]
    fn unknown_relation_is_error() {
        let catalog = catalog();
        let err = Executor::new(&catalog)
            .run(&Plan::scan("nope"))
            .unwrap_err();
        assert!(err.0.contains("unknown relation 'nope'"));
    }

    #[test]
    fn union_distinct_pipeline() {
        let catalog = catalog();
        let plan = Plan::union(vec![Plan::scan("w2"), Plan::scan("w2")]).distinct();
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn filter_sort_limit_pipeline() {
        let catalog = catalog();
        let plan = Plan::scan("w1")
            .filter(Expr::col("id").binary(crate::expr::BinOp::Gt, Expr::lit(1i64)))
            .sort_by(&["w1.pName"])
            .limit(1);
        let table = Executor::new(&catalog).run(&plan).unwrap();
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows()[0][1], Value::str("Robert Lewandowski"));
    }

    #[test]
    fn bad_join_key_is_error() {
        let catalog = catalog();
        let plan = Plan::scan("w1").join(
            Plan::scan("w2"),
            vec![(ColumnRef::bare("missing"), ColumnRef::bare("id"))],
        );
        let err = Executor::new(&catalog).run(&plan).unwrap_err();
        assert!(err.0.contains("join key"));
    }

    #[test]
    fn relation_schema_through_catalog() {
        let catalog = catalog();
        assert!(catalog.relation_schema("w1").is_ok());
        assert!(catalog.relation_schema("nope").is_err());
    }
}

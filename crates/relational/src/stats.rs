//! The cardinality-statistics catalog behind the cost-based optimizer.
//!
//! Wrapper relations are opaque REST payloads until a query scans them, so
//! MDM cannot ANALYZE ahead of time the way a warehouse does. Instead the
//! catalog learns **opportunistically**: every resilient fetch the executor
//! performs ([`Executor::fetch_rows`](crate::executor)) offers its rows
//! here, and the catalog keeps per-relation row counts plus per-column
//! distinct-value estimates and null fractions. Observation is cheap to
//! re-offer — a relation already profiled at the same provider version,
//! row count and **stats epoch** is skipped with one lock acquisition —
//! and the profiling pass itself is bounded by [`SAMPLE_CAP`] rows.
//!
//! The **stats epoch** is a monotonically increasing counter bumped by
//! [`StatsCatalog::refresh`] (the steward's "re-profile the ecosystem"
//! action). It is deliberately *not* the metadata epoch: plans cached
//! against metadata stay valid across a stats refresh — only their
//! *optimized* physical form is recomputed (see `core::cache`) — so a
//! refresh can never invalidate a rewriting or change golden outputs.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::optimizer::Statistics;
use crate::schema::Schema;
use crate::value::{Tuple, Value};

/// Observation scans at most this many rows per relation; distinct counts
/// are scaled linearly when the relation is larger. Keeps the profiling
/// pass O(1)-ish even for the largest wrapper payloads.
pub const SAMPLE_CAP: usize = 65_536;

/// Per-column statistics learned from one observation.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Column name as the relation's schema spells it (qualified).
    pub column: String,
    /// Estimated distinct non-null values (exact below [`SAMPLE_CAP`]).
    pub distinct: usize,
    /// Fraction of sampled rows that were NULL in this column.
    pub null_fraction: f64,
}

/// Per-relation statistics: the unit [`StatsCatalog`] stores.
#[derive(Clone, Debug)]
pub struct RelationStats {
    /// Provider version the rows came from.
    pub version: u64,
    /// Total rows in the relation at observation time.
    pub rows: usize,
    /// Per-column estimates, in schema order.
    pub columns: Vec<ColumnStats>,
    /// Stats epoch at which this entry was (re)observed.
    pub observed_epoch: u64,
}

/// A point-in-time summary for `/metrics` and the CLI `stats` command.
#[derive(Clone, Debug, Default)]
pub struct StatsSnapshot {
    /// Current stats epoch.
    pub epoch: u64,
    /// Explicit refreshes performed.
    pub refreshes: u64,
    /// Profiling passes actually run (gated re-offers excluded).
    pub observations: u64,
    /// Relations currently profiled, with their row counts, sorted.
    pub relations: Vec<(String, usize)>,
}

/// The process- or system-wide statistics catalog. Internally synchronised;
/// shared as an `Arc` between the executor (writer) and the optimizer
/// (reader).
#[derive(Debug, Default)]
pub struct StatsCatalog {
    epoch: AtomicU64,
    refreshes: AtomicU64,
    observations: AtomicU64,
    entries: Mutex<HashMap<String, RelationStats>>,
}

impl StatsCatalog {
    /// An empty catalog at stats epoch 0.
    pub fn new() -> Self {
        StatsCatalog::default()
    }

    /// The current stats epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bumps the stats epoch, making every cached entry stale: the next
    /// scan of each relation re-profiles it, and plan caches keyed by the
    /// stats epoch re-optimize. Returns the new epoch. The *metadata*
    /// epoch is untouched — a refresh is not a release.
    pub fn refresh(&self) -> u64 {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// True when offering `(relation, version, rows)` would actually run a
    /// profiling pass — the executor's cheap pre-check before cloning the
    /// provider schema.
    pub fn needs_observation(&self, relation: &str, version: u64, rows: usize) -> bool {
        let epoch = self.epoch();
        let entries = self.entries.lock().expect("stats catalog poisoned");
        match entries.get(relation) {
            Some(entry) => {
                entry.version != version || entry.rows != rows || entry.observed_epoch != epoch
            }
            None => true,
        }
    }

    /// Profiles `rows` (row count, per-column distinct estimate and null
    /// fraction) and stores the result for `relation`. Sampling is capped
    /// at [`SAMPLE_CAP`] rows; distinct counts scale linearly beyond it.
    pub fn observe(&self, relation: &str, version: u64, schema: &Schema, rows: &[Tuple]) {
        let epoch = self.epoch();
        let sample = rows.len().min(SAMPLE_CAP);
        let width = schema.len();
        let mut distinct: Vec<HashSet<u64>> = vec![HashSet::new(); width];
        let mut nulls = vec![0usize; width];
        for row in &rows[..sample] {
            for (i, value) in row.iter().take(width).enumerate() {
                if matches!(value, Value::Null) {
                    nulls[i] += 1;
                } else {
                    use std::hash::{Hash, Hasher};
                    let mut hasher = std::collections::hash_map::DefaultHasher::new();
                    value.hash(&mut hasher);
                    distinct[i].insert(hasher.finish());
                }
            }
        }
        let scale = if sample > 0 && rows.len() > sample {
            rows.len() as f64 / sample as f64
        } else {
            1.0
        };
        let columns = schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, column)| ColumnStats {
                column: column.to_string(),
                distinct: (((distinct[i].len() as f64) * scale) as usize).min(rows.len()),
                null_fraction: if sample == 0 {
                    0.0
                } else {
                    nulls[i] as f64 / sample as f64
                },
            })
            .collect();
        self.observations.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().expect("stats catalog poisoned").insert(
            relation.to_string(),
            RelationStats {
                version,
                rows: rows.len(),
                columns,
                observed_epoch: epoch,
            },
        );
    }

    /// The stored statistics for `relation`, if profiled.
    pub fn relation(&self, relation: &str) -> Option<RelationStats> {
        self.entries
            .lock()
            .expect("stats catalog poisoned")
            .get(relation)
            .cloned()
    }

    /// Counter + inventory snapshot for `/metrics` and the CLI.
    pub fn snapshot(&self) -> StatsSnapshot {
        let entries = self.entries.lock().expect("stats catalog poisoned");
        let mut relations: Vec<(String, usize)> = entries
            .iter()
            .map(|(name, entry)| (name.clone(), entry.rows))
            .collect();
        relations.sort();
        StatsSnapshot {
            epoch: self.epoch(),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            observations: self.observations.load(Ordering::Relaxed),
            relations,
        }
    }
}

impl Statistics for StatsCatalog {
    fn estimated_rows(&self, relation: &str) -> Option<usize> {
        self.entries
            .lock()
            .expect("stats catalog poisoned")
            .get(relation)
            .map(|entry| entry.rows)
    }

    fn distinct_values(&self, relation: &str, column: &str) -> Option<usize> {
        let entries = self.entries.lock().expect("stats catalog poisoned");
        let entry = entries.get(relation)?;
        entry
            .columns
            .iter()
            .find(|c| c.column == column || c.column.ends_with(column))
            .map(|c| c.distinct.max(1))
    }

    fn null_fraction(&self, relation: &str, column: &str) -> Option<f64> {
        let entries = self.entries.lock().expect("stats catalog poisoned");
        let entry = entries.get(relation)?;
        entry
            .columns
            .iter()
            .find(|c| c.column == column || c.column.ends_with(column))
            .map(|c| c.null_fraction)
    }
}

/// The process-wide catalog fed by executors that were not handed an
/// explicit one ([`crate::ExecOptions::stats`] defaults to this).
pub fn global() -> Arc<StatsCatalog> {
    static GLOBAL: OnceLock<Arc<StatsCatalog>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(StatsCatalog::new())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("name-{}", i % 7)),
                    if i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::Int((i % 3) as i64)
                    },
                ]
            })
            .collect()
    }

    fn schema() -> Schema {
        Schema::qualified("w", ["id", "name", "grade"])
    }

    #[test]
    fn observation_profiles_rows_distincts_and_nulls() {
        let catalog = StatsCatalog::new();
        catalog.observe("w", 1, &schema(), &rows(100));
        assert_eq!(catalog.estimated_rows("w"), Some(100));
        assert_eq!(catalog.distinct_values("w", "w.id"), Some(100));
        assert_eq!(catalog.distinct_values("w", "w.name"), Some(7));
        // Bare lookup matches the qualified column by suffix.
        assert_eq!(catalog.distinct_values("w", "id"), Some(100));
        let nulls = catalog.null_fraction("w", "w.grade").unwrap();
        assert!((nulls - 0.25).abs() < 1e-9, "{nulls}");
    }

    #[test]
    fn observation_gate_skips_unchanged_relations() {
        let catalog = StatsCatalog::new();
        assert!(catalog.needs_observation("w", 1, 100));
        catalog.observe("w", 1, &schema(), &rows(100));
        assert!(!catalog.needs_observation("w", 1, 100));
        // A version bump, a row-count change or a refresh re-arms it.
        assert!(catalog.needs_observation("w", 2, 100));
        assert!(catalog.needs_observation("w", 1, 101));
        catalog.refresh();
        assert!(catalog.needs_observation("w", 1, 100));
    }

    #[test]
    fn refresh_bumps_the_stats_epoch_monotonically() {
        let catalog = StatsCatalog::new();
        assert_eq!(catalog.epoch(), 0);
        assert_eq!(catalog.refresh(), 1);
        assert_eq!(catalog.refresh(), 2);
        assert_eq!(catalog.snapshot().refreshes, 2);
    }

    #[test]
    fn snapshot_lists_relations_sorted() {
        let catalog = StatsCatalog::new();
        catalog.observe("w2", 1, &schema(), &rows(5));
        catalog.observe("w1", 1, &schema(), &rows(9));
        let snapshot = catalog.snapshot();
        assert_eq!(
            snapshot.relations,
            vec![("w1".to_string(), 9), ("w2".to_string(), 5)]
        );
        assert_eq!(snapshot.observations, 2);
    }

    #[test]
    fn unknown_relations_answer_none() {
        let catalog = StatsCatalog::new();
        assert_eq!(catalog.estimated_rows("ghost"), None);
        assert_eq!(catalog.distinct_values("ghost", "id"), None);
        assert_eq!(catalog.null_fraction("ghost", "id"), None);
    }
}

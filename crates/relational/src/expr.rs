//! Scalar expressions and predicates over tuples.

use std::fmt;

use crate::schema::{ColumnRef, Schema};
use crate::value::{Tuple, Value};

/// Binary operators over values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// The SQL-ish symbol used in plan rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "≠",
            BinOp::Lt => "<",
            BinOp::Le => "≤",
            BinOp::Gt => ">",
            BinOp::Ge => "≥",
            BinOp::And => "∧",
            BinOp::Or => "∨",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// A scalar expression evaluated against one tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A column reference, resolved by schema at evaluation time.
    Column(ColumnRef),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// True when the operand is NULL.
    IsNull(Box<Expr>),
}

/// An error raised during expression evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// A column expression from `rel.name` or bare `name` notation.
    pub fn col(text: &str) -> Expr {
        Expr::Column(ColumnRef::parse(text))
    }

    /// A literal expression.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// `self op other`, builder style.
    pub fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Equality comparison.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }

    /// Conjunction.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinOp::And, other)
    }

    /// Evaluates the expression against a tuple.
    ///
    /// Comparison/arithmetic with NULL yields NULL (SQL three-valued logic);
    /// a NULL predicate result is treated as *false* by filters.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<Value, EvalError> {
        match self {
            Expr::Column(column) => {
                let index = schema.index_of(column).map_err(EvalError)?;
                Ok(tuple[index].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Not(inner) => match inner.eval(schema, tuple)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(EvalError(format!("NOT applied to non-boolean {other}"))),
            },
            Expr::IsNull(inner) => Ok(Value::Bool(inner.eval(schema, tuple)?.is_null())),
            Expr::Binary { op, left, right } => {
                let l = left.eval(schema, tuple)?;
                let r = right.eval(schema, tuple)?;
                eval_binary(*op, l, r)
            }
        }
    }

    /// Evaluates as a predicate: NULL and false are both "drop the row".
    pub fn eval_predicate(&self, schema: &Schema, tuple: &Tuple) -> Result<bool, EvalError> {
        match self.eval(schema, tuple)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(EvalError(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    /// The columns this expression references, in first-use order.
    pub fn referenced_columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
            Expr::Literal(_) => {}
            Expr::Not(inner) | Expr::IsNull(inner) => inner.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
        }
    }
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        And | Or => {
            // Three-valued logic with short-circuit identities.
            let as_bool = |v: &Value| -> Result<Option<bool>, EvalError> {
                match v {
                    Value::Bool(b) => Ok(Some(*b)),
                    Value::Null => Ok(None),
                    other => Err(EvalError(format!("boolean operator on {other}"))),
                }
            };
            let (lb, rb) = (as_bool(&l)?, as_bool(&r)?);
            let result = match (op, lb, rb) {
                (And, Some(false), _) | (And, _, Some(false)) => Some(false),
                (And, Some(true), Some(true)) => Some(true),
                (Or, Some(true), _) | (Or, _, Some(true)) => Some(true),
                (Or, Some(false), Some(false)) => Some(false),
                _ => None,
            };
            Ok(result.map_or(Value::Null, Value::Bool))
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ordering = l.cmp(&r);
            let b = match op {
                Eq => l == r,
                Ne => l != r,
                Lt => ordering.is_lt(),
                Le => ordering.is_le(),
                Gt => ordering.is_gt(),
                Ge => ordering.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral when both sides are ints.
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                return match op {
                    Add => Ok(Value::Int(a.wrapping_add(*b))),
                    Sub => Ok(Value::Int(a.wrapping_sub(*b))),
                    Mul => Ok(Value::Int(a.wrapping_mul(*b))),
                    Div => {
                        if *b == 0 {
                            Err(EvalError("division by zero".to_string()))
                        } else {
                            Ok(Value::Int(a / b))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EvalError(format!(
                        "arithmetic on non-numeric values {l} and {r}"
                    )))
                }
            };
            let result = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(EvalError("division by zero".to_string()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(result))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Not(inner) => write!(f, "¬({inner})"),
            Expr::IsNull(inner) => write!(f, "isnull({inner})"),
            Expr::Binary { op, left, right } => {
                write!(f, "{left} {} {right}", op.symbol())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::qualified("w1", ["id", "height", "foot"])
    }

    fn messi() -> Tuple {
        vec![Value::Int(6176), Value::Float(170.18), Value::str("left")]
    }

    #[test]
    fn column_and_literal_eval() {
        let s = schema();
        let t = messi();
        assert_eq!(Expr::col("id").eval(&s, &t).unwrap(), Value::Int(6176));
        assert_eq!(
            Expr::col("w1.foot").eval(&s, &t).unwrap(),
            Value::str("left")
        );
        assert_eq!(Expr::lit(5i64).eval(&s, &t).unwrap(), Value::Int(5));
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let t = messi();
        assert!(Expr::col("height")
            .binary(BinOp::Gt, Expr::lit(170.0))
            .eval_predicate(&s, &t)
            .unwrap());
        assert!(!Expr::col("foot")
            .eq(Expr::lit("right"))
            .eval_predicate(&s, &t)
            .unwrap());
    }

    #[test]
    fn null_propagation_in_comparison() {
        let s = Schema::bare(["a"]);
        let t = vec![Value::Null];
        let expr = Expr::col("a").eq(Expr::lit(1i64));
        assert_eq!(expr.eval(&s, &t).unwrap(), Value::Null);
        assert!(!expr.eval_predicate(&s, &t).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let s = Schema::bare(["a"]);
        let t = vec![Value::Null];
        // NULL AND false = false; NULL OR true = true.
        let null_pred = Expr::col("a").eq(Expr::lit(1i64));
        assert_eq!(
            null_pred
                .clone()
                .and(Expr::lit(false))
                .eval(&s, &t)
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            null_pred
                .clone()
                .binary(BinOp::Or, Expr::lit(true))
                .eval(&s, &t)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            null_pred.and(Expr::lit(true)).eval(&s, &t).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn arithmetic() {
        let s = Schema::bare(["x", "y"]);
        let t = vec![Value::Int(10), Value::Float(2.5)];
        assert_eq!(
            Expr::col("x")
                .binary(BinOp::Add, Expr::lit(5i64))
                .eval(&s, &t)
                .unwrap(),
            Value::Int(15)
        );
        assert_eq!(
            Expr::col("x")
                .binary(BinOp::Mul, Expr::col("y"))
                .eval(&s, &t)
                .unwrap(),
            Value::Float(25.0)
        );
        assert!(Expr::col("x")
            .binary(BinOp::Div, Expr::lit(0i64))
            .eval(&s, &t)
            .is_err());
    }

    #[test]
    fn is_null_and_not() {
        let s = Schema::bare(["a"]);
        let t = vec![Value::Null];
        assert_eq!(
            Expr::IsNull(Box::new(Expr::col("a"))).eval(&s, &t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::col("a")))))
                .eval(&s, &t)
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn missing_column_is_error() {
        let s = schema();
        let t = messi();
        assert!(Expr::col("nope").eval(&s, &t).is_err());
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let expr = Expr::col("a")
            .eq(Expr::col("b"))
            .and(Expr::col("a").eq(Expr::lit(1i64)));
        let cols: Vec<String> = expr
            .referenced_columns()
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn display_reads_like_algebra() {
        let expr = Expr::col("w1.teamId").eq(Expr::col("w2.id"));
        assert_eq!(expr.to_string(), "w1.teamId = w2.id");
        let pred = Expr::col("foot").eq(Expr::lit("left"));
        assert_eq!(pred.to_string(), "foot = 'left'");
    }
}

//! Relation schemas: ordered, optionally qualified column names.

use std::fmt;

/// A column reference: an optional relation qualifier plus a column name.
///
/// Wrapper attributes are qualified by their wrapper (`w1.id`, `w2.id`), the
/// form join discovery works with; projected output columns (feature names
/// like `ex:playerName`) are typically unqualified.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    pub relation: Option<String>,
    pub name: String,
}

impl ColumnRef {
    /// An unqualified column.
    pub fn bare(name: impl Into<String>) -> Self {
        ColumnRef {
            relation: None,
            name: name.into(),
        }
    }

    /// A relation-qualified column.
    pub fn qualified(relation: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef {
            relation: Some(relation.into()),
            name: name.into(),
        }
    }

    /// Parses `rel.name` or bare `name` notation.
    pub fn parse(text: &str) -> Self {
        match text.split_once('.') {
            Some((rel, name)) if !rel.is_empty() && !name.is_empty() => {
                ColumnRef::qualified(rel, name)
            }
            _ => ColumnRef::bare(text),
        }
    }

    /// True when `self` satisfies a lookup for `wanted`: names must match,
    /// and if `wanted` is qualified the qualifiers must match too.
    pub fn matches(&self, wanted: &ColumnRef) -> bool {
        if self.name != wanted.name {
            return false;
        }
        match (&wanted.relation, &self.relation) {
            (None, _) => true,
            (Some(w), Some(r)) => w == r,
            (Some(_), None) => false,
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.relation {
            Some(rel) => write!(f, "{rel}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// An ordered list of column references.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnRef>,
}

impl Schema {
    /// Builds a schema from column references.
    pub fn new(columns: Vec<ColumnRef>) -> Self {
        Schema { columns }
    }

    /// Builds a schema of unqualified columns from names.
    pub fn bare(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Schema {
            columns: names.into_iter().map(ColumnRef::bare).collect(),
        }
    }

    /// Builds a schema where every column is qualified by `relation`.
    pub fn qualified(relation: &str, names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Schema {
            columns: names
                .into_iter()
                .map(|n| ColumnRef::qualified(relation, n))
                .collect(),
        }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[ColumnRef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the unique column matching `wanted`.
    ///
    /// Returns `Err` with a descriptive message when the column is missing or
    /// ambiguous (an unqualified lookup that matches columns from two
    /// relations — exactly the situation after a join of two wrapper versions
    /// that share attribute names).
    pub fn index_of(&self, wanted: &ColumnRef) -> Result<usize, String> {
        let hits: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(wanted))
            .map(|(i, _)| i)
            .collect();
        match hits.as_slice() {
            [index] => Ok(*index),
            [] => Err(format!(
                "column '{wanted}' not found in schema [{}]",
                self.join_names(", ")
            )),
            _ => Err(format!(
                "column '{wanted}' is ambiguous in schema [{}]",
                self.join_names(", ")
            )),
        }
    }

    /// Concatenates two schemas (for joins).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// All column display names joined with `sep`.
    pub fn join_names(&self, sep: &str) -> String {
        self.columns
            .iter()
            .map(ColumnRef::to_string)
            .collect::<Vec<_>>()
            .join(sep)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.join_names(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_column_refs() {
        assert_eq!(ColumnRef::parse("id"), ColumnRef::bare("id"));
        assert_eq!(ColumnRef::parse("w1.id"), ColumnRef::qualified("w1", "id"));
        assert_eq!(ColumnRef::parse(".x"), ColumnRef::bare(".x"));
    }

    #[test]
    fn unqualified_lookup_matches_any_relation() {
        let schema = Schema::qualified("w1", ["id", "pName"]);
        assert_eq!(schema.index_of(&ColumnRef::bare("pName")).unwrap(), 1);
    }

    #[test]
    fn qualified_lookup_requires_matching_relation() {
        let schema = Schema::qualified("w1", ["id"]).concat(&Schema::qualified("w2", ["id"]));
        assert_eq!(
            schema.index_of(&ColumnRef::qualified("w2", "id")).unwrap(),
            1
        );
        let err = schema.index_of(&ColumnRef::bare("id")).unwrap_err();
        assert!(err.contains("ambiguous"));
    }

    #[test]
    fn missing_column_error_names_schema() {
        let schema = Schema::bare(["a", "b"]);
        let err = schema.index_of(&ColumnRef::bare("c")).unwrap_err();
        assert!(err.contains("'c' not found"));
        assert!(err.contains("a, b"));
    }

    #[test]
    fn concat_preserves_order() {
        let s = Schema::qualified("w1", ["a"]).concat(&Schema::qualified("w2", ["b"]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.columns()[1], ColumnRef::qualified("w2", "b"));
    }

    #[test]
    fn display_forms() {
        let s = Schema::qualified("w1", ["id", "name"]);
        assert_eq!(s.to_string(), "(w1.id, w1.name)");
        assert_eq!(ColumnRef::bare("x").to_string(), "x");
    }
}

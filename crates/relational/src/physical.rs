//! Volcano-style physical operators.
//!
//! Each operator implements [`Operator`]: a pull-based iterator of tuples
//! with a known output schema. The executor builds an operator tree from a
//! logical [`Plan`](crate::Plan) and drains the root. Operators are
//! deliberately simple — MDM federates *metadata-mediated* queries whose
//! inputs are wrapper row sets (thousands to low millions of rows), so hash
//! joins and in-memory sorts are the right tools.

use std::collections::HashMap;
use std::sync::Arc;

use crate::executor::ExecError;
use crate::expr::Expr;
use crate::pool::Pool;
use crate::schema::Schema;
use crate::value::{Tuple, Value};

/// The default number of tuples pulled per [`Operator::next_batch`] call.
pub const DEFAULT_BATCH: usize = 1024;

/// A pull-based operator: yields tuples until exhausted.
pub trait Operator {
    /// The operator's output schema.
    fn schema(&self) -> &Schema;
    /// The next tuple, `None` when exhausted.
    fn next(&mut self) -> Option<Result<Tuple, ExecError>>;

    /// Up to roughly `max` tuples at once, `None` when exhausted. Batches
    /// amortise the per-tuple dynamic dispatch of [`Operator::next`] across
    /// the pipeline; a returned batch is never empty. The default pulls
    /// tuple-at-a-time; vectorising operators override it.
    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        let mut out = Vec::new();
        while out.len() < max.max(1) {
            match self.next() {
                Some(Ok(tuple)) => out.push(tuple),
                Some(Err(e)) => return Some(Err(e)),
                None => break,
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(Ok(out))
        }
    }
}

/// Drains an operator to completion.
pub fn drain(mut op: Box<dyn Operator>) -> Result<Vec<Tuple>, ExecError> {
    let mut out = Vec::new();
    while let Some(item) = op.next() {
        out.push(item?);
    }
    Ok(out)
}

/// Scans a materialised row set, possibly shared with sibling branches
/// through the per-query scan cache (rows are cloned lazily, per tuple).
pub struct ScanExec {
    schema: Schema,
    rows: Arc<Vec<Tuple>>,
    cursor: usize,
}

impl ScanExec {
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ScanExec::shared(schema, Arc::new(rows))
    }

    /// A scan over rows shared with other operators (no upfront copy).
    pub fn shared(schema: Schema, rows: Arc<Vec<Tuple>>) -> Self {
        ScanExec {
            schema,
            rows,
            cursor: 0,
        }
    }
}

impl Operator for ScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        let tuple = self.rows.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(Ok(tuple))
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        if self.cursor >= self.rows.len() {
            return None;
        }
        let end = (self.cursor + max.max(1)).min(self.rows.len());
        let batch = self.rows[self.cursor..end].to_vec();
        self.cursor = end;
        Some(Ok(batch))
    }
}

/// σ — filters rows by a predicate.
pub struct FilterExec {
    input: Box<dyn Operator>,
    predicate: Expr,
}

impl FilterExec {
    pub fn new(input: Box<dyn Operator>, predicate: Expr) -> Self {
        FilterExec { input, predicate }
    }
}

impl Operator for FilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        loop {
            let tuple = match self.input.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            match self.predicate.eval_predicate(self.input.schema(), &tuple) {
                Ok(true) => return Some(Ok(tuple)),
                Ok(false) => continue,
                Err(e) => return Some(Err(ExecError::permanent(e.0))),
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        loop {
            let batch = match self.input.next_batch(max)? {
                Ok(b) => b,
                Err(e) => return Some(Err(e)),
            };
            let mut out = Vec::with_capacity(batch.len());
            for tuple in batch {
                match self.predicate.eval_predicate(self.input.schema(), &tuple) {
                    Ok(true) => out.push(tuple),
                    Ok(false) => {}
                    Err(e) => return Some(Err(ExecError::permanent(e.0))),
                }
            }
            if !out.is_empty() {
                return Some(Ok(out));
            }
        }
    }
}

/// π — computes output expressions.
pub struct ProjectExec {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl ProjectExec {
    pub fn new(input: Box<dyn Operator>, exprs: Vec<Expr>, schema: Schema) -> Self {
        ProjectExec {
            input,
            exprs,
            schema,
        }
    }
}

impl Operator for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        let tuple = match self.input.next()? {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        let mut out = Vec::with_capacity(self.exprs.len());
        for expr in &self.exprs {
            match expr.eval(self.input.schema(), &tuple) {
                Ok(v) => out.push(v),
                Err(e) => return Some(Err(ExecError::permanent(e.0))),
            }
        }
        Some(Ok(out))
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        let batch = match self.input.next_batch(max)? {
            Ok(b) => b,
            Err(e) => return Some(Err(e)),
        };
        let mut out = Vec::with_capacity(batch.len());
        for tuple in batch {
            let mut projected = Vec::with_capacity(self.exprs.len());
            for expr in &self.exprs {
                match expr.eval(self.input.schema(), &tuple) {
                    Ok(v) => projected.push(v),
                    Err(e) => return Some(Err(ExecError::permanent(e.0))),
                }
            }
            out.push(projected);
        }
        Some(Ok(out))
    }
}

/// ⋈ — hash equi-join. Builds on the right input, probes with the left.
///
/// NULL join keys never match (SQL semantics): a wrapper row missing its
/// identifier cannot join, it is *not* an error — schema evolution routinely
/// produces rows without the new attributes.
pub struct HashJoinExec {
    left: Box<dyn Operator>,
    schema: Schema,
    left_keys: Vec<usize>,
    /// Right-side hash table: key values → rows.
    table: HashMap<Vec<Value>, Vec<Tuple>>,
    /// Pending output rows from the current probe.
    pending: Vec<Tuple>,
    /// For left joins: width of the right side (to emit NULLs) and whether
    /// to emit unmatched probe rows.
    right_width: usize,
    emit_unmatched_left: bool,
    /// When set, probe batches at least [`PARALLEL_PROBE_MIN`] rows wide
    /// are split into contiguous chunks probed on pool workers.
    pool: Option<Arc<Pool>>,
}

/// Probe batches below this width are not worth fanning out.
const PARALLEL_PROBE_MIN: usize = 512;

/// Probes `rows` against the build table, appending combined rows in probe
/// order (matches of one probe row keep build-insertion order).
fn probe_rows(
    table: &HashMap<Vec<Value>, Vec<Tuple>>,
    left_keys: &[usize],
    right_width: usize,
    emit_unmatched_left: bool,
    rows: &[Tuple],
) -> Vec<Tuple> {
    let mut out = Vec::new();
    for probe in rows {
        let key: Vec<Value> = left_keys.iter().map(|&i| probe[i].clone()).collect();
        let matches = if key.iter().any(Value::is_null) {
            None
        } else {
            table.get(&key)
        };
        match matches {
            Some(build_rows) => {
                for row in build_rows {
                    let mut combined = probe.clone();
                    combined.extend(row.iter().cloned());
                    out.push(combined);
                }
            }
            None if emit_unmatched_left => {
                let mut combined = probe.clone();
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
            None => {}
        }
    }
    out
}

impl HashJoinExec {
    /// Builds the hash table eagerly from `right`.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        emit_unmatched_left: bool,
    ) -> Result<Self, ExecError> {
        let schema = left.schema().concat(right.schema());
        let right_width = right.schema().len();
        let mut table: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        let rows = drain(right)?;
        for row in rows {
            let key: Vec<Value> = right_keys.iter().map(|&i| row[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(row);
        }
        Ok(HashJoinExec {
            left,
            schema,
            left_keys,
            table,
            pending: Vec::new(),
            right_width,
            emit_unmatched_left,
            pool: None,
        })
    }

    /// Enables partitioned parallel probing of wide batches on `pool`.
    /// Output order is unchanged: chunks are contiguous and re-concatenated
    /// in chunk order, so the row stream is identical to sequential.
    pub fn with_pool(mut self, pool: Option<Arc<Pool>>) -> Self {
        self.pool = pool.filter(|p| p.size() > 1);
        self
    }

    fn probe_batch(&self, batch: &[Tuple], out: &mut Vec<Tuple>) {
        if let Some(pool) = &self.pool {
            if batch.len() >= PARALLEL_PROBE_MIN {
                let chunk = batch.len().div_ceil(pool.size());
                let chunks: Vec<&[Tuple]> = batch.chunks(chunk).collect();
                let (table, keys) = (&self.table, &self.left_keys);
                let (width, emit) = (self.right_width, self.emit_unmatched_left);
                let probed = pool.run(chunks.len(), |i| {
                    probe_rows(table, keys, width, emit, chunks[i])
                });
                for part in probed {
                    out.extend(part);
                }
                return;
            }
        }
        out.extend(probe_rows(
            &self.table,
            &self.left_keys,
            self.right_width,
            self.emit_unmatched_left,
            batch,
        ));
    }
}

impl Operator for HashJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Some(Ok(row));
            }
            let probe = match self.left.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            let mut matched = probe_rows(
                &self.table,
                &self.left_keys,
                self.right_width,
                self.emit_unmatched_left,
                std::slice::from_ref(&probe),
            );
            // `pending` is a stack: reverse so popping replays probe order.
            matched.reverse();
            self.pending = matched;
        }
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        let mut out = Vec::new();
        while let Some(row) = self.pending.pop() {
            out.push(row);
        }
        while out.len() < max.max(1) {
            let batch = match self.left.next_batch(max) {
                None => break,
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(b)) => b,
            };
            self.probe_batch(&batch, &mut out);
        }
        if out.is_empty() {
            None
        } else {
            Some(Ok(out))
        }
    }
}

/// ⋈ — nested-loop join with an arbitrary predicate (the fallback when the
/// join condition is not a conjunction of equalities).
pub struct NestedLoopJoinExec {
    left_rows: Vec<Tuple>,
    right_rows: Vec<Tuple>,
    schema: Schema,
    predicate: Expr,
    i: usize,
    j: usize,
}

impl NestedLoopJoinExec {
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        predicate: Expr,
    ) -> Result<Self, ExecError> {
        let schema = left.schema().concat(right.schema());
        Ok(NestedLoopJoinExec {
            left_rows: drain(left)?,
            right_rows: drain(right)?,
            schema,
            predicate,
            i: 0,
            j: 0,
        })
    }
}

impl Operator for NestedLoopJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        while self.i < self.left_rows.len() {
            while self.j < self.right_rows.len() {
                let mut combined = self.left_rows[self.i].clone();
                combined.extend(self.right_rows[self.j].iter().cloned());
                self.j += 1;
                match self.predicate.eval_predicate(&self.schema, &combined) {
                    Ok(true) => return Some(Ok(combined)),
                    Ok(false) => continue,
                    Err(e) => return Some(Err(ExecError::permanent(e.0))),
                }
            }
            self.i += 1;
            self.j = 0;
        }
        None
    }
}

/// ∪ — concatenates inputs (bag semantics).
pub struct UnionExec {
    inputs: Vec<Box<dyn Operator>>,
    schema: Schema,
    current: usize,
}

impl UnionExec {
    /// All inputs must share an arity; the first input's schema is used.
    pub fn new(inputs: Vec<Box<dyn Operator>>) -> Result<Self, ExecError> {
        let first = inputs
            .first()
            .ok_or_else(|| ExecError::permanent("union of zero inputs"))?;
        let schema = first.schema().clone();
        for input in &inputs {
            if input.schema().len() != schema.len() {
                return Err(ExecError::permanent(format!(
                    "union arity mismatch: {} vs {}",
                    schema,
                    input.schema()
                )));
            }
        }
        Ok(UnionExec {
            inputs,
            schema,
            current: 0,
        })
    }
}

impl Operator for UnionExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        while self.current < self.inputs.len() {
            match self.inputs[self.current].next() {
                Some(item) => return Some(item),
                None => self.current += 1,
            }
        }
        None
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        while self.current < self.inputs.len() {
            match self.inputs[self.current].next_batch(max) {
                Some(item) => return Some(item),
                None => self.current += 1,
            }
        }
        None
    }
}

/// δ — duplicate elimination (materialising).
pub struct DistinctExec {
    input: Box<dyn Operator>,
    seen: std::collections::HashSet<Tuple>,
}

impl DistinctExec {
    pub fn new(input: Box<dyn Operator>) -> Self {
        DistinctExec {
            input,
            seen: std::collections::HashSet::new(),
        }
    }
}

impl Operator for DistinctExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        loop {
            let tuple = match self.input.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            if self.seen.insert(tuple.clone()) {
                return Some(Ok(tuple));
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        loop {
            let batch = match self.input.next_batch(max)? {
                Ok(b) => b,
                Err(e) => return Some(Err(e)),
            };
            // Pre-size for the incoming batch so the δ hash table grows in
            // strides instead of rehashing on the hot path.
            self.seen.reserve(batch.len());
            let fresh: Vec<Tuple> = batch
                .into_iter()
                .filter(|tuple| self.seen.insert(tuple.clone()))
                .collect();
            if !fresh.is_empty() {
                return Some(Ok(fresh));
            }
        }
    }
}

/// Sort — materialises and sorts by key columns.
pub struct SortExec {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
}

impl SortExec {
    pub fn new(
        input: Box<dyn Operator>,
        keys: Vec<(usize, bool)>, // (column index, descending?)
    ) -> Result<Self, ExecError> {
        let schema = input.schema().clone();
        let mut rows = drain(input)?;
        rows.sort_by(|a, b| {
            for &(index, descending) in &keys {
                let ordering = a[index].cmp(&b[index]);
                let ordering = if descending {
                    ordering.reverse()
                } else {
                    ordering
                };
                if !ordering.is_eq() {
                    return ordering;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(SortExec {
            schema,
            rows: rows.into_iter(),
        })
    }
}

impl Operator for SortExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        self.rows.next().map(Ok)
    }
}

/// Limit — yields the first `count` tuples.
pub struct LimitExec {
    input: Box<dyn Operator>,
    remaining: usize,
}

impl LimitExec {
    pub fn new(input: Box<dyn Operator>, count: usize) -> Self {
        LimitExec {
            input,
            remaining: count,
        }
    }
}

impl Operator for LimitExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.input.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;

    fn players() -> ScanExec {
        ScanExec::new(
            Schema::qualified("w1", ["id", "pName", "teamId"]),
            vec![
                vec![Value::Int(1), Value::str("Messi"), Value::Int(25)],
                vec![Value::Int(2), Value::str("Lewandowski"), Value::Int(27)],
                vec![Value::Int(3), Value::str("Unattached"), Value::Null],
            ],
        )
    }

    fn teams() -> ScanExec {
        ScanExec::new(
            Schema::qualified("w2", ["id", "name"]),
            vec![
                vec![Value::Int(25), Value::str("FC Barcelona")],
                vec![Value::Int(27), Value::str("Bayern Munich")],
                vec![Value::Int(31), Value::str("Juventus")],
            ],
        )
    }

    #[test]
    fn scan_yields_all_rows() {
        let rows = drain(Box::new(players())).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn filter_drops_nonmatching() {
        let op = FilterExec::new(
            Box::new(players()),
            Expr::col("pName").eq(Expr::lit("Messi")),
        );
        let rows = drain(Box::new(op)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::str("Messi"));
    }

    #[test]
    fn project_computes_and_renames() {
        let op = ProjectExec::new(
            Box::new(players()),
            vec![Expr::col("pName")],
            Schema::bare(["name"]),
        );
        let rows = drain(Box::new(op)).unwrap();
        assert_eq!(rows[0], vec![Value::str("Messi")]);
    }

    #[test]
    fn hash_join_matches_and_skips_nulls() {
        let join = HashJoinExec::new(
            Box::new(players()),
            Box::new(teams()),
            vec![2], // teamId
            vec![0], // id
            false,
        )
        .unwrap();
        let mut rows = drain(Box::new(join)).unwrap();
        rows.sort();
        assert_eq!(rows.len(), 2); // Unattached (NULL teamId) drops out
        assert_eq!(rows[0][1], Value::str("Messi"));
        assert_eq!(rows[0][4], Value::str("FC Barcelona"));
    }

    #[test]
    fn left_join_emits_nulls_for_unmatched() {
        let join = HashJoinExec::new(
            Box::new(players()),
            Box::new(teams()),
            vec![2],
            vec![0],
            true,
        )
        .unwrap();
        let rows = drain(Box::new(join)).unwrap();
        assert_eq!(rows.len(), 3);
        let unattached = rows
            .iter()
            .find(|r| r[1] == Value::str("Unattached"))
            .unwrap();
        assert!(unattached[3].is_null());
        assert!(unattached[4].is_null());
    }

    #[test]
    fn nested_loop_join_with_inequality() {
        let join = NestedLoopJoinExec::new(
            Box::new(players()),
            Box::new(teams()),
            Expr::col("w1.id").binary(crate::expr::BinOp::Lt, Expr::col("w2.id")),
        )
        .unwrap();
        let rows = drain(Box::new(join)).unwrap();
        assert_eq!(rows.len(), 9); // all ids 1,2,3 < all team ids 25,27,31
    }

    #[test]
    fn union_concatenates() {
        let u = UnionExec::new(vec![Box::new(teams()), Box::new(teams())]).unwrap();
        let rows = drain(Box::new(u)).unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let narrow = ScanExec::new(Schema::bare(["only"]), vec![]);
        assert!(UnionExec::new(vec![Box::new(teams()), Box::new(narrow)]).is_err());
    }

    #[test]
    fn union_of_zero_inputs_rejected() {
        assert!(UnionExec::new(vec![]).is_err());
    }

    #[test]
    fn distinct_deduplicates() {
        let u = UnionExec::new(vec![Box::new(teams()), Box::new(teams())]).unwrap();
        let d = DistinctExec::new(Box::new(u));
        let rows = drain(Box::new(d)).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn sort_orders_rows() {
        let s = SortExec::new(Box::new(teams()), vec![(1, false)]).unwrap();
        let rows = drain(Box::new(s)).unwrap();
        assert_eq!(rows[0][1], Value::str("Bayern Munich"));
        let s = SortExec::new(Box::new(teams()), vec![(1, true)]).unwrap();
        let rows = drain(Box::new(s)).unwrap();
        assert_eq!(rows[0][1], Value::str("Juventus"));
    }

    #[test]
    fn limit_truncates() {
        let l = LimitExec::new(Box::new(teams()), 2);
        let rows = drain(Box::new(l)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn join_schema_is_qualified_concat() {
        let join = HashJoinExec::new(
            Box::new(players()),
            Box::new(teams()),
            vec![2],
            vec![0],
            false,
        )
        .unwrap();
        assert_eq!(
            join.schema()
                .index_of(&ColumnRef::qualified("w2", "name"))
                .unwrap(),
            4
        );
    }
}

//! Volcano-style physical operators.
//!
//! Each operator implements [`Operator`]: a pull-based iterator of tuples
//! with a known output schema. The executor builds an operator tree from a
//! logical [`Plan`](crate::Plan) and drains the root. Operators are
//! deliberately simple — MDM federates *metadata-mediated* queries whose
//! inputs are wrapper row sets (thousands to low millions of rows), so hash
//! joins and in-memory sorts are the right tools.
//!
//! The batch interface is zero-copy: [`Operator::next_block`] yields
//! [`Batch`]es — an `Arc`-shared row store plus a selection — so scans,
//! filters and distincts move row *ids*, not row *bytes*. Only operators
//! that compute new tuples (project, join) materialise, and even then each
//! cell is an interned [`Value`](crate::Value) whose clone is pointer-sized.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::columnar::{self, ColOperator};
use crate::executor::ExecError;
use crate::expr::Expr;
use crate::pool::Pool;
use crate::schema::Schema;
use crate::value::{Tuple, Value};

/// The default number of tuples pulled per [`Operator::next_batch`] call.
pub const DEFAULT_BATCH: usize = 1024;

/// How a [`Batch`] selects rows from its shared store.
#[derive(Clone, Debug)]
enum Sel {
    /// Every row in the store, in order.
    All,
    /// The contiguous run `[start, end)` of the store.
    Range(u32, u32),
    /// Explicit row ids into the store, in output order.
    Rows(Vec<u32>),
}

/// A reference-counted batch of tuples: an `Arc`-shared row store plus a
/// selection over it. Filters and distincts emit new selections over the
/// *same* store, so passing a batch down the pipeline never copies tuples.
#[derive(Clone, Debug)]
pub struct Batch {
    rows: Arc<Vec<Tuple>>,
    sel: Sel,
}

impl Batch {
    /// A batch owning freshly materialised rows (project/join outputs).
    pub fn from_vec(rows: Vec<Tuple>) -> Self {
        Batch {
            rows: Arc::new(rows),
            sel: Sel::All,
        }
    }

    /// A batch over the contiguous run `[start, end)` of a shared store.
    pub fn range(rows: Arc<Vec<Tuple>>, start: usize, end: usize) -> Self {
        debug_assert!(start <= end && end <= rows.len());
        let sel = if start == 0 && end == rows.len() {
            Sel::All
        } else {
            Sel::Range(start as u32, end as u32)
        };
        Batch { rows, sel }
    }

    /// A batch selecting explicit row ids of a shared store.
    pub fn with_sel(rows: Arc<Vec<Tuple>>, sel: Vec<u32>) -> Self {
        Batch {
            rows,
            sel: Sel::Rows(sel),
        }
    }

    /// The shared row store this batch selects from.
    pub fn store(&self) -> &Arc<Vec<Tuple>> {
        &self.rows
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Sel::All => self.rows.len(),
            Sel::Range(s, e) => (e - s) as usize,
            Sel::Rows(ids) => ids.len(),
        }
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row id in the underlying store of the `i`-th selected row.
    pub fn row_id(&self, i: usize) -> u32 {
        match &self.sel {
            Sel::All => i as u32,
            Sel::Range(s, _) => s + i as u32,
            Sel::Rows(ids) => ids[i],
        }
    }

    /// The `i`-th selected row.
    pub fn get(&self, i: usize) -> &Tuple {
        &self.rows[self.row_id(i) as usize]
    }

    /// Iterates the selected rows in order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The selected rows as owned tuples (cloning cells is pointer-cheap).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }

    /// The selected rows as owned tuples, moving out of the store when this
    /// batch is its sole owner and selects everything.
    pub fn into_tuples(self) -> Vec<Tuple> {
        if matches!(self.sel, Sel::All) {
            match Arc::try_unwrap(self.rows) {
                Ok(rows) => rows,
                Err(shared) => shared.as_ref().clone(),
            }
        } else {
            self.to_tuples()
        }
    }
}

/// A pull-based operator: yields tuples until exhausted.
pub trait Operator {
    /// The operator's output schema.
    fn schema(&self) -> &Schema;
    /// The next tuple, `None` when exhausted.
    fn next(&mut self) -> Option<Result<Tuple, ExecError>>;

    /// Up to roughly `max` tuples at once, `None` when exhausted. Batches
    /// amortise the per-tuple dynamic dispatch of [`Operator::next`] across
    /// the pipeline; a returned batch is never empty. The default pulls
    /// tuple-at-a-time; vectorising operators override it.
    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        let mut out = Vec::new();
        while out.len() < max.max(1) {
            match self.next() {
                Some(Ok(tuple)) => out.push(tuple),
                Some(Err(e)) => return Some(Err(e)),
                None => break,
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(Ok(out))
        }
    }

    /// Up to roughly `max` tuples as a shared [`Batch`], `None` when
    /// exhausted; a returned batch is never empty. This is the zero-copy
    /// path: scan/filter/distinct override it to pass row ids instead of
    /// rows. The default wraps [`Operator::next_batch`].
    fn next_block(&mut self, max: usize) -> Option<Result<Batch, ExecError>> {
        match self.next_batch(max)? {
            Ok(rows) => Some(Ok(Batch::from_vec(rows))),
            Err(e) => Some(Err(e)),
        }
    }
}

/// Drains an operator to completion.
pub fn drain(mut op: Box<dyn Operator>) -> Result<Vec<Tuple>, ExecError> {
    let mut out = Vec::new();
    while let Some(block) = op.next_block(DEFAULT_BATCH) {
        out.extend(block?.into_tuples());
    }
    Ok(out)
}

/// Scans a materialised row set, possibly shared with sibling branches
/// through the per-query scan cache. Blocks reference the shared store
/// directly — a scan never copies a tuple.
pub struct ScanExec {
    schema: Schema,
    rows: Arc<Vec<Tuple>>,
    cursor: usize,
}

impl ScanExec {
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ScanExec::shared(schema, Arc::new(rows))
    }

    /// A scan over rows shared with other operators (no upfront copy).
    pub fn shared(schema: Schema, rows: Arc<Vec<Tuple>>) -> Self {
        ScanExec {
            schema,
            rows,
            cursor: 0,
        }
    }
}

impl Operator for ScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        let tuple = self.rows.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(Ok(tuple))
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        match self.next_block(max)? {
            Ok(block) => Some(Ok(block.into_tuples())),
            Err(e) => Some(Err(e)),
        }
    }

    fn next_block(&mut self, max: usize) -> Option<Result<Batch, ExecError>> {
        if self.cursor >= self.rows.len() {
            return None;
        }
        let end = (self.cursor + max.max(1)).min(self.rows.len());
        let block = Batch::range(Arc::clone(&self.rows), self.cursor, end);
        self.cursor = end;
        Some(Ok(block))
    }
}

/// σ — filters rows by a predicate.
pub struct FilterExec {
    input: Box<dyn Operator>,
    predicate: Expr,
}

impl FilterExec {
    pub fn new(input: Box<dyn Operator>, predicate: Expr) -> Self {
        FilterExec { input, predicate }
    }
}

impl Operator for FilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        loop {
            let tuple = match self.input.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            match self.predicate.eval_predicate(self.input.schema(), &tuple) {
                Ok(true) => return Some(Ok(tuple)),
                Ok(false) => continue,
                Err(e) => return Some(Err(ExecError::permanent(e.0))),
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        match self.next_block(max)? {
            Ok(block) => Some(Ok(block.into_tuples())),
            Err(e) => Some(Err(e)),
        }
    }

    fn next_block(&mut self, max: usize) -> Option<Result<Batch, ExecError>> {
        loop {
            let block = match self.input.next_block(max)? {
                Ok(b) => b,
                Err(e) => return Some(Err(e)),
            };
            // Selection-vector filtering: keep row ids, not rows.
            let mut sel = Vec::with_capacity(block.len());
            for i in 0..block.len() {
                match self
                    .predicate
                    .eval_predicate(self.input.schema(), block.get(i))
                {
                    Ok(true) => sel.push(block.row_id(i)),
                    Ok(false) => {}
                    Err(e) => return Some(Err(ExecError::permanent(e.0))),
                }
            }
            if !sel.is_empty() {
                return Some(Ok(Batch::with_sel(Arc::clone(block.store()), sel)));
            }
        }
    }
}

/// π — computes output expressions.
pub struct ProjectExec {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl ProjectExec {
    pub fn new(input: Box<dyn Operator>, exprs: Vec<Expr>, schema: Schema) -> Self {
        ProjectExec {
            input,
            exprs,
            schema,
        }
    }
}

impl Operator for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        let tuple = match self.input.next()? {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        let mut out = Vec::with_capacity(self.exprs.len());
        for expr in &self.exprs {
            match expr.eval(self.input.schema(), &tuple) {
                Ok(v) => out.push(v),
                Err(e) => return Some(Err(ExecError::permanent(e.0))),
            }
        }
        Some(Ok(out))
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        match self.next_block(max)? {
            Ok(block) => Some(Ok(block.into_tuples())),
            Err(e) => Some(Err(e)),
        }
    }

    fn next_block(&mut self, max: usize) -> Option<Result<Batch, ExecError>> {
        let block = match self.input.next_block(max)? {
            Ok(b) => b,
            Err(e) => return Some(Err(e)),
        };
        let mut out = Vec::with_capacity(block.len());
        for tuple in block.iter() {
            let mut projected = Vec::with_capacity(self.exprs.len());
            for expr in &self.exprs {
                match expr.eval(self.input.schema(), tuple) {
                    Ok(v) => projected.push(v),
                    Err(e) => return Some(Err(ExecError::permanent(e.0))),
                }
            }
            out.push(projected);
        }
        Some(Ok(Batch::from_vec(out)))
    }
}

/// The right-side build table of a hash join: rows materialised once, in
/// build order, and buckets mapping memoised *key hashes* to row ids. A
/// bucket hit is verified with the coercing `Value` equality, so hash
/// collisions cannot create phantom matches and cross-type numeric keys
/// (`25` vs `25.0`) keep joining exactly as before.
struct JoinTable {
    rows: Vec<Tuple>,
    buckets: HashMap<u64, Vec<u32>>,
    right_keys: Vec<usize>,
}

/// The hash of a tuple's key columns, computed once per row per batch.
/// Uses `Value`'s own coercing `Hash` (numerics hash through their f64
/// bits), so equal keys always land in the same bucket.
fn key_hash(row: &Tuple, keys: &[usize]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for &k in keys {
        row[k].hash(&mut hasher);
    }
    hasher.finish()
}

fn keys_match(probe: &Tuple, left_keys: &[usize], build: &Tuple, right_keys: &[usize]) -> bool {
    left_keys
        .iter()
        .zip(right_keys)
        .all(|(&l, &r)| probe[l] == build[r])
}

/// ⋈ — hash equi-join. Builds on the right input, probes with the left.
///
/// NULL join keys never match (SQL semantics): a wrapper row missing its
/// identifier cannot join, it is *not* an error — schema evolution routinely
/// produces rows without the new attributes.
pub struct HashJoinExec {
    left: Box<dyn Operator>,
    schema: Schema,
    left_keys: Vec<usize>,
    table: JoinTable,
    /// Pending output rows from the current probe (a reversed stack).
    pending: Vec<Tuple>,
    /// For left joins: width of the right side (to emit NULLs) and whether
    /// to emit unmatched probe rows.
    right_width: usize,
    emit_unmatched_left: bool,
    /// When set, probe batches at least [`PARALLEL_PROBE_MIN`] rows wide
    /// are split into contiguous chunks probed on pool workers.
    pool: Option<Arc<Pool>>,
}

/// Probe batches below this width are not worth fanning out.
const PARALLEL_PROBE_MIN: usize = 512;

/// Probes the selected rows `[start, end)` of `block` against the build
/// table, appending combined rows in probe order (matches of one probe row
/// keep build-insertion order — bucket ids are appended in build order).
#[allow(clippy::too_many_arguments)]
fn probe_range(
    table: &JoinTable,
    left_keys: &[usize],
    right_width: usize,
    emit_unmatched_left: bool,
    block: &Batch,
    hashes: &[u64],
    start: usize,
    end: usize,
    out: &mut Vec<Tuple>,
) {
    for (i, hash) in hashes.iter().enumerate().take(end).skip(start) {
        let probe = block.get(i);
        let mut matched = false;
        if !left_keys.iter().any(|&k| probe[k].is_null()) {
            if let Some(bucket) = table.buckets.get(hash) {
                for &row_id in bucket {
                    let build = &table.rows[row_id as usize];
                    if keys_match(probe, left_keys, build, &table.right_keys) {
                        matched = true;
                        let mut combined = probe.clone();
                        combined.extend(build.iter().cloned());
                        out.push(combined);
                    }
                }
            }
        }
        if !matched && emit_unmatched_left {
            let mut combined = probe.clone();
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(combined);
        }
    }
}

impl HashJoinExec {
    /// Builds the hash table eagerly from `right`, pre-sized to the build
    /// cardinality (known exactly: build rows come out of the scan cache).
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        emit_unmatched_left: bool,
    ) -> Result<Self, ExecError> {
        let schema = left.schema().concat(right.schema());
        let right_width = right.schema().len();
        let rows = drain(right)?;
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if right_keys.iter().any(|&k| row[k].is_null()) {
                continue;
            }
            buckets
                .entry(key_hash(row, &right_keys))
                .or_default()
                .push(i as u32);
        }
        Ok(HashJoinExec {
            left,
            schema,
            left_keys,
            table: JoinTable {
                rows,
                buckets,
                right_keys,
            },
            pending: Vec::new(),
            right_width,
            emit_unmatched_left,
            pool: None,
        })
    }

    /// Enables partitioned parallel probing of wide batches on `pool`.
    /// Output order is unchanged: chunks are contiguous and re-concatenated
    /// in chunk order, so the row stream is identical to sequential.
    pub fn with_pool(mut self, pool: Option<Arc<Pool>>) -> Self {
        self.pool = pool.filter(|p| p.size() > 1);
        self
    }

    fn probe_block(&self, block: &Batch, out: &mut Vec<Tuple>) {
        // Memoise the probe-key hashes once per batch; both the sequential
        // and the partitioned path below reuse them.
        let hashes: Vec<u64> = block
            .iter()
            .map(|row| key_hash(row, &self.left_keys))
            .collect();
        if let Some(pool) = &self.pool {
            if block.len() >= PARALLEL_PROBE_MIN {
                let chunk = block.len().div_ceil(pool.size());
                let ranges: Vec<(usize, usize)> = (0..block.len())
                    .step_by(chunk.max(1))
                    .map(|s| (s, (s + chunk).min(block.len())))
                    .collect();
                let (table, keys) = (&self.table, &self.left_keys);
                let (width, emit) = (self.right_width, self.emit_unmatched_left);
                let (hashes, block) = (&hashes, &block);
                let probed = pool.run(ranges.len(), |i| {
                    let (start, end) = ranges[i];
                    let mut part = Vec::new();
                    probe_range(
                        table, keys, width, emit, block, hashes, start, end, &mut part,
                    );
                    part
                });
                for part in probed {
                    out.extend(part);
                }
                return;
            }
        }
        probe_range(
            &self.table,
            &self.left_keys,
            self.right_width,
            self.emit_unmatched_left,
            block,
            &hashes,
            0,
            block.len(),
            out,
        );
    }

    /// Probes a single row (the tuple-at-a-time path).
    fn probe_one(&self, probe: &Tuple, out: &mut Vec<Tuple>) {
        let mut matched = false;
        if !self.left_keys.iter().any(|&k| probe[k].is_null()) {
            if let Some(bucket) = self.table.buckets.get(&key_hash(probe, &self.left_keys)) {
                for &row_id in bucket {
                    let build = &self.table.rows[row_id as usize];
                    if keys_match(probe, &self.left_keys, build, &self.table.right_keys) {
                        matched = true;
                        let mut combined = probe.clone();
                        combined.extend(build.iter().cloned());
                        out.push(combined);
                    }
                }
            }
        }
        if !matched && self.emit_unmatched_left {
            let mut combined = probe.clone();
            combined.extend(std::iter::repeat_n(Value::Null, self.right_width));
            out.push(combined);
        }
    }
}

impl Operator for HashJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Some(Ok(row));
            }
            let probe = match self.left.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            let mut matched = Vec::new();
            self.probe_one(&probe, &mut matched);
            // `pending` is a stack: reverse so popping replays probe order.
            matched.reverse();
            self.pending = matched;
        }
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        match self.next_block(max)? {
            Ok(block) => Some(Ok(block.into_tuples())),
            Err(e) => Some(Err(e)),
        }
    }

    fn next_block(&mut self, max: usize) -> Option<Result<Batch, ExecError>> {
        let mut out = Vec::new();
        while let Some(row) = self.pending.pop() {
            out.push(row);
        }
        while out.len() < max.max(1) {
            let block = match self.left.next_block(max) {
                None => break,
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(b)) => b,
            };
            self.probe_block(&block, &mut out);
        }
        if out.is_empty() {
            None
        } else {
            Some(Ok(Batch::from_vec(out)))
        }
    }
}

/// ⋈ — nested-loop join with an arbitrary predicate (the fallback when the
/// join condition is not a conjunction of equalities).
pub struct NestedLoopJoinExec {
    left_rows: Vec<Tuple>,
    right_rows: Vec<Tuple>,
    schema: Schema,
    predicate: Expr,
    i: usize,
    j: usize,
}

impl NestedLoopJoinExec {
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        predicate: Expr,
    ) -> Result<Self, ExecError> {
        let schema = left.schema().concat(right.schema());
        Ok(NestedLoopJoinExec {
            left_rows: drain(left)?,
            right_rows: drain(right)?,
            schema,
            predicate,
            i: 0,
            j: 0,
        })
    }
}

impl Operator for NestedLoopJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        while self.i < self.left_rows.len() {
            while self.j < self.right_rows.len() {
                let mut combined = self.left_rows[self.i].clone();
                combined.extend(self.right_rows[self.j].iter().cloned());
                self.j += 1;
                match self.predicate.eval_predicate(&self.schema, &combined) {
                    Ok(true) => return Some(Ok(combined)),
                    Ok(false) => continue,
                    Err(e) => return Some(Err(ExecError::permanent(e.0))),
                }
            }
            self.i += 1;
            self.j = 0;
        }
        None
    }
}

/// ∪ — concatenates inputs (bag semantics).
pub struct UnionExec {
    inputs: Vec<Box<dyn Operator>>,
    schema: Schema,
    current: usize,
}

impl UnionExec {
    /// All inputs must share an arity; the first input's schema is used.
    pub fn new(inputs: Vec<Box<dyn Operator>>) -> Result<Self, ExecError> {
        let first = inputs
            .first()
            .ok_or_else(|| ExecError::permanent("union of zero inputs"))?;
        let schema = first.schema().clone();
        for input in &inputs {
            if input.schema().len() != schema.len() {
                return Err(ExecError::permanent(format!(
                    "union arity mismatch: {} vs {}",
                    schema,
                    input.schema()
                )));
            }
        }
        Ok(UnionExec {
            inputs,
            schema,
            current: 0,
        })
    }
}

impl Operator for UnionExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        while self.current < self.inputs.len() {
            match self.inputs[self.current].next() {
                Some(item) => return Some(item),
                None => self.current += 1,
            }
        }
        None
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        while self.current < self.inputs.len() {
            match self.inputs[self.current].next_batch(max) {
                Some(item) => return Some(item),
                None => self.current += 1,
            }
        }
        None
    }

    fn next_block(&mut self, max: usize) -> Option<Result<Batch, ExecError>> {
        while self.current < self.inputs.len() {
            match self.inputs[self.current].next_block(max) {
                Some(item) => return Some(item),
                None => self.current += 1,
            }
        }
        None
    }
}

/// δ — duplicate elimination (materialising the *seen* set only; emitted
/// batches are selections over the input's shared store).
pub struct DistinctExec {
    input: Box<dyn Operator>,
    seen: std::collections::HashSet<Tuple>,
}

impl DistinctExec {
    pub fn new(input: Box<dyn Operator>) -> Self {
        DistinctExec {
            input,
            seen: std::collections::HashSet::new(),
        }
    }
}

impl Operator for DistinctExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        loop {
            let tuple = match self.input.next()? {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            if self.seen.insert(tuple.clone()) {
                return Some(Ok(tuple));
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Option<Result<Vec<Tuple>, ExecError>> {
        match self.next_block(max)? {
            Ok(block) => Some(Ok(block.into_tuples())),
            Err(e) => Some(Err(e)),
        }
    }

    fn next_block(&mut self, max: usize) -> Option<Result<Batch, ExecError>> {
        loop {
            let block = match self.input.next_block(max)? {
                Ok(b) => b,
                Err(e) => return Some(Err(e)),
            };
            // Pre-size for the incoming batch so the δ hash table grows in
            // strides instead of rehashing on the hot path.
            self.seen.reserve(block.len());
            let mut sel = Vec::with_capacity(block.len());
            for i in 0..block.len() {
                if self.seen.insert(block.get(i).clone()) {
                    sel.push(block.row_id(i));
                }
            }
            if !sel.is_empty() {
                return Some(Ok(Batch::with_sel(Arc::clone(block.store()), sel)));
            }
        }
    }
}

/// Sort — materialises and sorts by key columns.
pub struct SortExec {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
}

impl SortExec {
    pub fn new(
        input: Box<dyn Operator>,
        keys: Vec<(usize, bool)>, // (column index, descending?)
    ) -> Result<Self, ExecError> {
        let schema = input.schema().clone();
        let mut rows = drain(input)?;
        rows.sort_by(|a, b| {
            for &(index, descending) in &keys {
                let ordering = a[index].cmp(&b[index]);
                let ordering = if descending {
                    ordering.reverse()
                } else {
                    ordering
                };
                if !ordering.is_eq() {
                    return ordering;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(SortExec {
            schema,
            rows: rows.into_iter(),
        })
    }
}

impl Operator for SortExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        self.rows.next().map(Ok)
    }
}

/// Limit — yields the first `count` tuples.
pub struct LimitExec {
    input: Box<dyn Operator>,
    remaining: usize,
}

impl LimitExec {
    pub fn new(input: Box<dyn Operator>, count: usize) -> Self {
        LimitExec {
            input,
            remaining: count,
        }
    }
}

impl Operator for LimitExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.input.next()
    }
}

/// Adapter from the columnar plane back into the row plane: decodes each
/// [`columnar::ColumnBatch`] into a materialised [`Batch`]. The executor
/// inserts one wherever a plan stage only exists row-wise (sort) or a
/// hybrid tree mixes layouts (a row-plane join with one columnar side).
pub struct DecodeExec {
    input: Box<dyn ColOperator>,
    schema: Schema,
    buffered: std::collections::VecDeque<Tuple>,
}

impl DecodeExec {
    pub fn new(input: Box<dyn ColOperator>) -> Self {
        let schema = input.schema().clone();
        DecodeExec {
            input,
            schema,
            buffered: std::collections::VecDeque::new(),
        }
    }
}

impl Operator for DecodeExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Tuple, ExecError>> {
        loop {
            if let Some(tuple) = self.buffered.pop_front() {
                return Some(Ok(tuple));
            }
            match self.input.next_cols(DEFAULT_BATCH)? {
                Err(e) => return Some(Err(e)),
                Ok(batch) => self
                    .buffered
                    .extend(columnar::decode_batches(std::slice::from_ref(&batch))),
            }
        }
    }

    fn next_block(&mut self, max: usize) -> Option<Result<Batch, ExecError>> {
        if !self.buffered.is_empty() {
            let rows: Vec<Tuple> = self.buffered.drain(..).collect();
            return Some(Ok(Batch::from_vec(rows)));
        }
        match self.input.next_cols(max)? {
            Err(e) => Some(Err(e)),
            Ok(batch) => Some(Ok(Batch::from_vec(columnar::decode_batches(
                std::slice::from_ref(&batch),
            )))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;

    fn players() -> ScanExec {
        ScanExec::new(
            Schema::qualified("w1", ["id", "pName", "teamId"]),
            vec![
                vec![Value::Int(1), Value::str("Messi"), Value::Int(25)],
                vec![Value::Int(2), Value::str("Lewandowski"), Value::Int(27)],
                vec![Value::Int(3), Value::str("Unattached"), Value::Null],
            ],
        )
    }

    fn teams() -> ScanExec {
        ScanExec::new(
            Schema::qualified("w2", ["id", "name"]),
            vec![
                vec![Value::Int(25), Value::str("FC Barcelona")],
                vec![Value::Int(27), Value::str("Bayern Munich")],
                vec![Value::Int(31), Value::str("Juventus")],
            ],
        )
    }

    #[test]
    fn scan_yields_all_rows() {
        let rows = drain(Box::new(players())).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn scan_blocks_share_the_store() {
        let mut scan = teams();
        let block = scan.next_block(2).unwrap().unwrap();
        assert_eq!(block.len(), 2);
        assert!(Arc::ptr_eq(block.store(), &scan.rows));
        let rest = scan.next_block(16).unwrap().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest.get(0)[1], Value::str("Juventus"));
        assert!(scan.next_block(16).is_none());
    }

    #[test]
    fn filter_drops_nonmatching() {
        let op = FilterExec::new(
            Box::new(players()),
            Expr::col("pName").eq(Expr::lit("Messi")),
        );
        let rows = drain(Box::new(op)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::str("Messi"));
    }

    #[test]
    fn filter_blocks_are_selections_not_copies() {
        let mut op = FilterExec::new(
            Box::new(players()),
            Expr::col("id").binary(crate::expr::BinOp::Gt, Expr::lit(1i64)),
        );
        let block = op.next_block(16).unwrap().unwrap();
        assert_eq!(block.len(), 2);
        // The filter's output selects rows 1 and 2 of the scan's own store.
        assert_eq!(block.row_id(0), 1);
        assert_eq!(block.row_id(1), 2);
        assert_eq!(block.store().len(), 3);
    }

    #[test]
    fn project_computes_and_renames() {
        let op = ProjectExec::new(
            Box::new(players()),
            vec![Expr::col("pName")],
            Schema::bare(["name"]),
        );
        let rows = drain(Box::new(op)).unwrap();
        assert_eq!(rows[0], vec![Value::str("Messi")]);
    }

    #[test]
    fn hash_join_matches_and_skips_nulls() {
        let join = HashJoinExec::new(
            Box::new(players()),
            Box::new(teams()),
            vec![2], // teamId
            vec![0], // id
            false,
        )
        .unwrap();
        let mut rows = drain(Box::new(join)).unwrap();
        rows.sort();
        assert_eq!(rows.len(), 2); // Unattached (NULL teamId) drops out
        assert_eq!(rows[0][1], Value::str("Messi"));
        assert_eq!(rows[0][4], Value::str("FC Barcelona"));
    }

    #[test]
    fn hash_join_crosses_numeric_types() {
        let left = ScanExec::new(
            Schema::qualified("l", ["k"]),
            vec![vec![Value::Float(25.0)], vec![Value::Int(31)]],
        );
        let join =
            HashJoinExec::new(Box::new(left), Box::new(teams()), vec![0], vec![0], false).unwrap();
        let rows = drain(Box::new(join)).unwrap();
        // 25.0 joins 25 and 31 joins 31: coercing hash and equality agree.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Value::str("FC Barcelona"));
        assert_eq!(rows[1][2], Value::str("Juventus"));
    }

    #[test]
    fn left_join_emits_nulls_for_unmatched() {
        let join = HashJoinExec::new(
            Box::new(players()),
            Box::new(teams()),
            vec![2],
            vec![0],
            true,
        )
        .unwrap();
        let rows = drain(Box::new(join)).unwrap();
        assert_eq!(rows.len(), 3);
        let unattached = rows
            .iter()
            .find(|r| r[1] == Value::str("Unattached"))
            .unwrap();
        assert!(unattached[3].is_null());
        assert!(unattached[4].is_null());
    }

    #[test]
    fn nested_loop_join_with_inequality() {
        let join = NestedLoopJoinExec::new(
            Box::new(players()),
            Box::new(teams()),
            Expr::col("w1.id").binary(crate::expr::BinOp::Lt, Expr::col("w2.id")),
        )
        .unwrap();
        let rows = drain(Box::new(join)).unwrap();
        assert_eq!(rows.len(), 9); // all ids 1,2,3 < all team ids 25,27,31
    }

    #[test]
    fn union_concatenates() {
        let u = UnionExec::new(vec![Box::new(teams()), Box::new(teams())]).unwrap();
        let rows = drain(Box::new(u)).unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let narrow = ScanExec::new(Schema::bare(["only"]), vec![]);
        assert!(UnionExec::new(vec![Box::new(teams()), Box::new(narrow)]).is_err());
    }

    #[test]
    fn union_of_zero_inputs_rejected() {
        assert!(UnionExec::new(vec![]).is_err());
    }

    #[test]
    fn distinct_deduplicates() {
        let u = UnionExec::new(vec![Box::new(teams()), Box::new(teams())]).unwrap();
        let d = DistinctExec::new(Box::new(u));
        let rows = drain(Box::new(d)).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn sort_orders_rows() {
        let s = SortExec::new(Box::new(teams()), vec![(1, false)]).unwrap();
        let rows = drain(Box::new(s)).unwrap();
        assert_eq!(rows[0][1], Value::str("Bayern Munich"));
        let s = SortExec::new(Box::new(teams()), vec![(1, true)]).unwrap();
        let rows = drain(Box::new(s)).unwrap();
        assert_eq!(rows[0][1], Value::str("Juventus"));
    }

    #[test]
    fn limit_truncates() {
        let l = LimitExec::new(Box::new(teams()), 2);
        let rows = drain(Box::new(l)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn join_schema_is_qualified_concat() {
        let join = HashJoinExec::new(
            Box::new(players()),
            Box::new(teams()),
            vec![2],
            vec![0],
            false,
        )
        .unwrap();
        assert_eq!(
            join.schema()
                .index_of(&ColumnRef::qualified("w2", "name"))
                .unwrap(),
            4
        );
    }

    #[test]
    fn batch_and_block_paths_agree() {
        // The same pipeline drained three ways yields identical rows.
        let build = |batch: usize| {
            let join = HashJoinExec::new(
                Box::new(players()),
                Box::new(teams()),
                vec![2],
                vec![0],
                true,
            )
            .unwrap();
            let d = DistinctExec::new(Box::new(join));
            (d, batch)
        };
        let (mut row_op, _) = build(1);
        let mut by_row = Vec::new();
        while let Some(t) = row_op.next() {
            by_row.push(t.unwrap());
        }
        for batch in [1, 2, 1024] {
            let (mut op, max) = build(batch);
            let mut out = Vec::new();
            while let Some(b) = op.next_block(max) {
                out.extend(b.unwrap().into_tuples());
            }
            assert_eq!(out, by_row, "batch={batch}");
        }
    }
}

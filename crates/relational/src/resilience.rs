//! Execution-time resilience primitives: retry policies, query deadlines,
//! and per-relation circuit breakers.
//!
//! The paper's wrappers front external REST APIs that fail, stall and ship
//! malformed payloads; the Mask-Mediator-Wrapper line of work
//! (arXiv:2208.12319) argues the mediator must insulate consumers from
//! wrapper-side faults. This module gives the executor the three standard
//! tools for that job:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   deterministic jitter, so transient faults are absorbed;
//! * [`Deadline`] — a per-query time budget every retry loop and row drain
//!   respects, so a stalled source cannot hold a query hostage;
//! * [`BreakerRegistry`] — a per-relation circuit breaker
//!   (closed → open → half-open), so a dead source stops being hammered and
//!   queries degrade fast instead of timing out one by one.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::executor::{ErrorKind, ExecError};

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

/// Bounded-retry configuration for one relation fetch.
///
/// Attempt `n` (1-based) sleeps `base_backoff · 2^(n-1)` capped at
/// `max_backoff`, scaled by a deterministic jitter factor in `[0.5, 1.0)`
/// derived from `jitter_seed` — retries never sleep past the query
/// [`Deadline`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total fetch attempts per scan (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no sleeping).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// The backoff to sleep before retry number `retry` (1-based), with
    /// jitter applied. Deterministic for a given `(jitter_seed, retry)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = retry.saturating_sub(1).min(16);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        // SplitMix64 step → jitter factor in [0.5, 1.0).
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(retry).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let unit = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        raw.mul_f64(0.5 + unit * 0.5)
    }
}

// ---------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------

/// A per-query time budget. [`Deadline::none`] never expires; a concrete
/// deadline makes every scan retry loop and row drain check remaining time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl Deadline {
    /// No deadline: the query may run forever.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// Expires `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// Expires `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Self {
        Deadline::after(Duration::from_millis(ms))
    }

    /// Remaining budget; `None` means unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// True once the budget is exhausted.
    pub fn expired(&self) -> bool {
        matches!(self.remaining(), Some(d) if d.is_zero())
    }

    /// An [`ExecError`] describing the expiry, for error paths.
    pub fn exceeded(&self, what: &str) -> ExecError {
        ExecError::timeout(format!("deadline exceeded while {what}"))
    }
}

// ---------------------------------------------------------------------
// Scan guard (circuit-breaker hook)
// ---------------------------------------------------------------------

/// Consulted by the executor around every relation fetch. The default
/// executor runs unguarded; callers wanting circuit breaking pass a
/// [`BreakerRegistry`].
pub trait ScanGuard: Sync {
    /// Called before fetching `relation`; an `Err` fails the scan without
    /// touching the provider (e.g. the breaker is open).
    fn admit(&self, relation: &str) -> Result<(), ExecError>;
    /// Called after a successful fetch.
    fn record_success(&self, relation: &str);
    /// Called after a fetch failed terminally (retries exhausted included).
    fn record_failure(&self, relation: &str, error: &ExecError);
}

/// Circuit-breaker tuning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open(Instant),
    HalfOpen,
}

#[derive(Debug)]
struct BreakerEntry {
    state: BreakerState,
    consecutive_failures: u32,
    failures_total: u64,
    successes_total: u64,
    opened_total: u64,
    last_error: Option<String>,
}

impl BreakerEntry {
    fn new() -> Self {
        BreakerEntry {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            failures_total: 0,
            successes_total: 0,
            opened_total: 0,
            last_error: None,
        }
    }
}

/// One relation's breaker state, for `/metrics` and reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerSnapshot {
    pub relation: String,
    /// `"closed"`, `"open"` or `"half-open"`.
    pub state: &'static str,
    pub consecutive_failures: u32,
    pub failures_total: u64,
    pub successes_total: u64,
    pub opened_total: u64,
    pub last_error: Option<String>,
}

/// Per-relation circuit breakers: closed → open (after
/// `failure_threshold` consecutive failures) → half-open (after
/// `cooldown`) → closed on a successful probe, re-open on a failed one.
///
/// Internally synchronised; shared (`&self`) callers on many threads all
/// see one consistent state machine per relation.
#[derive(Debug, Default)]
pub struct BreakerRegistry {
    config: BreakerConfig,
    entries: Mutex<BTreeMap<String, BreakerEntry>>,
}

impl BreakerRegistry {
    pub fn new(config: BreakerConfig) -> Self {
        BreakerRegistry {
            config,
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// The current tuning.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Snapshot of every tracked relation, sorted by name.
    pub fn snapshot(&self) -> Vec<BreakerSnapshot> {
        let entries = self.entries.lock().expect("breaker registry poisoned");
        entries
            .iter()
            .map(|(relation, entry)| BreakerSnapshot {
                relation: relation.clone(),
                state: match entry.state {
                    BreakerState::Closed => "closed",
                    BreakerState::Open(_) => "open",
                    BreakerState::HalfOpen => "half-open",
                },
                consecutive_failures: entry.consecutive_failures,
                failures_total: entry.failures_total,
                successes_total: entry.successes_total,
                opened_total: entry.opened_total,
                last_error: entry.last_error.clone(),
            })
            .collect()
    }

    /// Forgets all breaker state (tests; metadata restore).
    pub fn reset(&self) {
        self.entries
            .lock()
            .expect("breaker registry poisoned")
            .clear();
    }
}

impl ScanGuard for BreakerRegistry {
    fn admit(&self, relation: &str) -> Result<(), ExecError> {
        let mut entries = self.entries.lock().expect("breaker registry poisoned");
        let entry = entries
            .entry(relation.to_string())
            .or_insert_with(BreakerEntry::new);
        match entry.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open(since) => {
                if since.elapsed() >= self.config.cooldown {
                    entry.state = BreakerState::HalfOpen;
                    Ok(())
                } else {
                    Err(ExecError::permanent(format!(
                        "circuit breaker open for '{relation}' after {} consecutive failures{}",
                        entry.consecutive_failures,
                        entry
                            .last_error
                            .as_deref()
                            .map(|e| format!(" (last error: {e})"))
                            .unwrap_or_default()
                    )))
                }
            }
        }
    }

    fn record_success(&self, relation: &str) {
        let mut entries = self.entries.lock().expect("breaker registry poisoned");
        let entry = entries
            .entry(relation.to_string())
            .or_insert_with(BreakerEntry::new);
        entry.successes_total += 1;
        entry.consecutive_failures = 0;
        entry.state = BreakerState::Closed;
    }

    fn record_failure(&self, relation: &str, error: &ExecError) {
        let mut entries = self.entries.lock().expect("breaker registry poisoned");
        let entry = entries
            .entry(relation.to_string())
            .or_insert_with(BreakerEntry::new);
        entry.failures_total += 1;
        entry.consecutive_failures += 1;
        entry.last_error = Some(error.message.clone());
        let trip = match entry.state {
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => entry.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open(_) => false,
        };
        if trip {
            entry.state = BreakerState::Open(Instant::now());
            entry.opened_total += 1;
        }
    }
}

/// Marker kinds re-exported for guard implementors.
pub use crate::executor::ErrorKind as ExecErrorKind;

/// Returns true when an error of `kind` should be retried.
pub fn retryable(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::Transient)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_grows_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            jitter_seed: 7,
        };
        let b1 = policy.backoff(1);
        let b2 = policy.backoff(2);
        let b4 = policy.backoff(4);
        // Jitter keeps every sleep within [raw/2, raw).
        assert!(b1 >= Duration::from_millis(5) && b1 < Duration::from_millis(10));
        assert!(b2 >= Duration::from_millis(10) && b2 < Duration::from_millis(20));
        // Attempt 4 raw backoff is 80ms, capped to 40ms before jitter.
        assert!(b4 >= Duration::from_millis(20) && b4 < Duration::from_millis(40));
        // Deterministic.
        assert_eq!(policy.backoff(3), policy.backoff(3));
        assert_eq!(RetryPolicy::none().backoff(1), Duration::ZERO);
    }

    #[test]
    fn deadline_expiry_and_remaining() {
        let never = Deadline::none();
        assert!(!never.expired());
        assert_eq!(never.remaining(), None);
        let tight = Deadline::after(Duration::ZERO);
        assert!(tight.expired());
        let roomy = Deadline::in_ms(60_000);
        assert!(!roomy.expired());
        assert!(roomy.remaining().unwrap() > Duration::from_secs(50));
        assert_eq!(tight.exceeded("testing").kind, ErrorKind::Timeout);
    }

    #[test]
    fn breaker_trips_cools_down_and_recovers() {
        let registry = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(20),
        });
        let boom = ExecError::permanent("w1: HTTP 500");
        assert!(registry.admit("w1").is_ok());
        registry.record_failure("w1", &boom);
        assert!(registry.admit("w1").is_ok(), "below threshold stays closed");
        registry.record_failure("w1", &boom);
        let rejected = registry.admit("w1").unwrap_err();
        assert!(
            rejected.message.contains("circuit breaker open"),
            "{rejected}"
        );
        assert!(rejected.message.contains("w1"));

        // After the cooldown one probe is admitted (half-open)…
        std::thread::sleep(Duration::from_millis(25));
        assert!(registry.admit("w1").is_ok());
        // …and a success closes the breaker again.
        registry.record_success("w1");
        assert!(registry.admit("w1").is_ok());
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, "closed");
        assert_eq!(snap[0].opened_total, 1);
        assert_eq!(snap[0].failures_total, 2);
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let registry = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
        });
        registry.record_failure("w", &ExecError::timeout("stalled"));
        assert!(registry.admit("w").is_err());
        std::thread::sleep(Duration::from_millis(15));
        assert!(registry.admit("w").is_ok()); // half-open probe
        registry.record_failure("w", &ExecError::timeout("still stalled"));
        assert!(registry.admit("w").is_err(), "probe failure re-opens");
        assert_eq!(registry.snapshot()[0].opened_total, 2);
    }
}

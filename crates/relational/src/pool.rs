//! A shared, bounded worker pool for parallel plan execution.
//!
//! The rewriting algorithm (paper §2.4) deliberately produces a *union of
//! conjunctive queries*, and unions are embarrassingly parallel: every
//! branch scans, joins and projects independently, and the δ at the root
//! only needs the branch outputs in a deterministic order. This pool gives
//! the executor (and the hash-join probe) bounded fan-out without any
//! external dependency:
//!
//! * **Scoped threads** — workers borrow the caller's stack data
//!   (`std::thread::scope`), so operator trees and catalogs need no `Arc`
//!   plumbing or `'static` bounds on the data they read.
//! * **Permit-bounded** — a pool of size `N` lends out at most `N − 1`
//!   extra threads *globally*, whatever the number of concurrent `run`
//!   callers (the caller's own thread is always worker 0). Acquisition is
//!   non-blocking: when no permits are free the tasks simply run inline on
//!   the caller, so a saturated server degrades to sequential execution
//!   instead of deadlocking or spawning unboundedly.
//! * **Work stealing** — tasks are dealt round-robin into per-worker
//!   deques; a worker that drains its own deque steals from the back of a
//!   sibling's, so skewed branch costs (one huge wrapper, many small ones)
//!   do not serialise the query on the slowest worker.
//! * **Deterministic results** — `run` returns results ordered by task
//!   index regardless of which worker computed what, which is what lets
//!   callers guarantee parallel output is byte-identical to sequential.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Counters describing a pool's lifetime activity, for `/metrics`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured pool size (worker budget including the caller's thread).
    pub size: usize,
    /// Tasks submitted through [`Pool::run`] over the pool's lifetime.
    pub tasks_total: u64,
    /// Scoped worker threads spawned (≤ `size − 1` live at any instant).
    pub spawned_total: u64,
    /// Tasks that ran inline on the caller because no permit was free.
    pub inline_total: u64,
    /// Tasks a worker stole from a sibling's deque.
    pub steals_total: u64,
    /// Workers currently executing tasks (gauge).
    pub active: u64,
}

/// A bounded scoped-thread worker pool. See the module docs.
pub struct Pool {
    size: usize,
    /// Spawn permits still available; `size − 1` when idle.
    permits: Mutex<usize>,
    tasks_total: AtomicU64,
    spawned_total: AtomicU64,
    inline_total: AtomicU64,
    steals_total: AtomicU64,
    active: AtomicU64,
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool").field("size", &self.size).finish()
    }
}

static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();

/// The pool size matching this machine: `available_parallelism`, or 1 when
/// the runtime cannot tell.
pub fn default_size() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide shared pool, sized from [`default_size`] on first use.
/// Every default-configured executor — including all HTTP workers of one
/// server — draws from this single permit budget, so concurrent queries
/// cannot multiply threads past the hardware.
pub fn global() -> Arc<Pool> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Pool::new(default_size()))))
}

impl Pool {
    /// A pool that may keep up to `size` workers busy (minimum 1: the
    /// caller's own thread). `Pool::new(1)` never spawns and runs
    /// everything inline — the sequential baseline.
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        Pool {
            size,
            permits: Mutex::new(size - 1),
            tasks_total: AtomicU64::new(0),
            spawned_total: AtomicU64::new(0),
            inline_total: AtomicU64::new(0),
            steals_total: AtomicU64::new(0),
            active: AtomicU64::new(0),
        }
    }

    /// The configured worker budget.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            size: self.size,
            tasks_total: self.tasks_total.load(Ordering::Relaxed),
            spawned_total: self.spawned_total.load(Ordering::Relaxed),
            inline_total: self.inline_total.load(Ordering::Relaxed),
            steals_total: self.steals_total.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
        }
    }

    fn acquire(&self, wanted: usize) -> usize {
        if wanted == 0 {
            return 0;
        }
        let mut permits = self.permits.lock().expect("pool permits poisoned");
        let granted = (*permits).min(wanted);
        *permits -= granted;
        granted
    }

    fn release(&self, granted: usize) {
        *self.permits.lock().expect("pool permits poisoned") += granted;
    }

    /// Runs `tasks` invocations of `f` (passed the task index `0..tasks`)
    /// across the caller plus as many spawned workers as permits allow, and
    /// returns the results **in task-index order**. Nested `run` calls are
    /// safe: an inner call that finds no permits free executes inline.
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        self.tasks_total.fetch_add(tasks as u64, Ordering::Relaxed);
        let extra = self.acquire(tasks.min(self.size).saturating_sub(1));
        if extra == 0 {
            self.inline_total.fetch_add(tasks as u64, Ordering::Relaxed);
            self.active.fetch_add(1, Ordering::Relaxed);
            let out = (0..tasks).map(f).collect();
            self.active.fetch_sub(1, Ordering::Relaxed);
            return out;
        }
        let workers = extra + 1;
        // Deal task indices round-robin; worker `w` owns deque `w`.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..tasks).step_by(workers).collect()))
            .collect();
        let worker = |me: usize| -> Vec<(usize, T)> {
            self.active.fetch_add(1, Ordering::Relaxed);
            let mut out = Vec::new();
            loop {
                let mut task = deques[me].lock().expect("pool deque poisoned").pop_front();
                if task.is_none() {
                    // Own deque dry: steal from the back of a sibling's.
                    for other in (0..workers).filter(|&o| o != me) {
                        task = deques[other]
                            .lock()
                            .expect("pool deque poisoned")
                            .pop_back();
                        if task.is_some() {
                            self.steals_total.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                match task {
                    Some(index) => out.push((index, f(index))),
                    None => break,
                }
            }
            self.active.fetch_sub(1, Ordering::Relaxed);
            out
        };
        let mut collected: Vec<(usize, T)> = Vec::with_capacity(tasks);
        std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = (1..workers)
                .map(|w| {
                    self.spawned_total.fetch_add(1, Ordering::Relaxed);
                    scope.spawn(move || worker(w))
                })
                .collect();
            collected.extend(worker(0));
            for handle in handles {
                collected.extend(handle.join().expect("pool worker panicked"));
            }
        });
        self.release(extra);
        collected.sort_unstable_by_key(|(index, _)| *index);
        collected.into_iter().map(|(_, value)| value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = Pool::new(4);
        let out = pool.run(64, |i| {
            // Make early tasks slow so stealing actually reorders work.
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.tasks_total, 64);
        assert!(stats.spawned_total >= 1, "{stats:?}");
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn size_one_pool_runs_everything_inline() {
        let pool = Pool::new(1);
        let out = pool.run(10, |i| i);
        assert_eq!(out.len(), 10);
        let stats = pool.stats();
        assert_eq!(stats.spawned_total, 0);
        assert_eq!(stats.inline_total, 10);
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let pool = Pool::new(2);
        let out = pool.run(4, |i| pool.run(4, move |j| i * 10 + j));
        assert_eq!(out.len(), 4);
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &(0..4).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
        // All permits returned.
        assert_eq!(*pool.permits.lock().unwrap(), 1);
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = Pool::new(4);
        let out: Vec<u32> = pool.run(0, |_| unreachable!("no tasks to run"));
        assert!(out.is_empty());
        assert_eq!(pool.stats().tasks_total, 0);
    }

    #[test]
    fn global_pool_is_shared_and_hardware_sized() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.size(), default_size());
    }
}

//! Process-wide data-plane counters.
//!
//! The executor increments these as it drains operator trees; the server's
//! `/metrics` endpoint exposes them next to the pool and breaker gauges so
//! an operator can see how much data the federation layer is moving and
//! how well the string intern pool is paying off.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::intern::{self, InternStats};

static ROWS_MOVED: AtomicU64 = AtomicU64::new(0);
static BATCHES_EMITTED: AtomicU64 = AtomicU64::new(0);
static BRANCHES_SHARED: AtomicU64 = AtomicU64::new(0);
static COL_ENCODES: AtomicU64 = AtomicU64::new(0);
static COL_DECODES: AtomicU64 = AtomicU64::new(0);
static COL_BYTES: AtomicU64 = AtomicU64::new(0);
static COL_KERNELS: AtomicU64 = AtomicU64::new(0);
static JOINS_REORDERED: AtomicU64 = AtomicU64::new(0);
static FILTERS_PUSHED: AtomicU64 = AtomicU64::new(0);
static PROJECTIONS_PRUNED: AtomicU64 = AtomicU64::new(0);
static BRANCHES_DEDUPED: AtomicU64 = AtomicU64::new(0);

/// Records `rows` tuples crossing the executor's drain loop in one batch.
pub(crate) fn record_batch(rows: u64) {
    ROWS_MOVED.fetch_add(rows, Ordering::Relaxed);
    BATCHES_EMITTED.fetch_add(1, Ordering::Relaxed);
}

/// Records a union branch answered from an identical sibling's result.
pub(crate) fn record_shared_branch() {
    BRANCHES_SHARED.fetch_add(1, Ordering::Relaxed);
}

/// Records `terms` values encoded into fixed-width term ids.
pub(crate) fn record_encodes(terms: u64) {
    COL_ENCODES.fetch_add(terms, Ordering::Relaxed);
    COL_BYTES.fetch_add(terms * 16, Ordering::Relaxed);
}

/// Records `terms` term ids decoded back to `Value`s.
pub(crate) fn record_decodes(terms: u64) {
    COL_DECODES.fetch_add(terms, Ordering::Relaxed);
}

/// Records one vectorized kernel invocation (filter/join/distinct/project).
pub(crate) fn record_kernel() {
    COL_KERNELS.fetch_add(1, Ordering::Relaxed);
}

/// Records one join whose inputs were reordered by the optimizer.
pub(crate) fn record_join_reordered() {
    JOINS_REORDERED.fetch_add(1, Ordering::Relaxed);
}

/// Records one filter pushed below a join by the optimizer.
pub(crate) fn record_filter_pushed() {
    FILTERS_PUSHED.fetch_add(1, Ordering::Relaxed);
}

/// Records one scan narrowed to its consumed columns.
pub(crate) fn record_projection_pruned() {
    PROJECTIONS_PRUNED.fetch_add(1, Ordering::Relaxed);
}

/// Records one duplicate union arm dropped under a distinct.
pub(crate) fn record_branch_deduped() {
    BRANCHES_DEDUPED.fetch_add(1, Ordering::Relaxed);
}

/// Counters for the plan-optimization passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    /// Joins whose inputs were reordered (greedy rebuild or pairwise swap).
    pub joins_reordered: u64,
    /// Filters pushed below a join.
    pub filters_pushed: u64,
    /// Scans narrowed to their consumed columns.
    pub projections_pruned: u64,
    /// Duplicate union arms dropped under a distinct.
    pub branches_deduped: u64,
}

/// The process-wide optimizer counters.
pub fn optimizer_snapshot() -> OptimizerStats {
    OptimizerStats {
        joins_reordered: JOINS_REORDERED.load(Ordering::Relaxed),
        filters_pushed: FILTERS_PUSHED.load(Ordering::Relaxed),
        projections_pruned: PROJECTIONS_PRUNED.load(Ordering::Relaxed),
        branches_deduped: BRANCHES_DEDUPED.load(Ordering::Relaxed),
    }
}

/// Counters for the columnar execution path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColumnarStats {
    /// Values encoded into fixed-width term ids.
    pub encodes: u64,
    /// Term ids decoded back into `Value`s (render, sort, fallbacks).
    pub decodes: u64,
    /// Bytes of fixed-width column data produced (16 per term).
    pub column_bytes: u64,
    /// Vectorized kernel invocations (filter/join/distinct/project).
    pub kernel_invocations: u64,
}

/// A point-in-time view of the data-plane counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataPlaneStats {
    /// Tuples that crossed the executor drain loop (all queries).
    pub rows_moved: u64,
    /// Batches emitted by the executor drain loop.
    pub batches_emitted: u64,
    /// Union branches deduplicated by subtree fingerprint.
    pub branches_shared: u64,
    /// String intern pool counters.
    pub intern: InternStats,
    /// Columnar execution path counters.
    pub columnar: ColumnarStats,
    /// Term dictionary gauges (pooled `Sym` → dense id mapping).
    pub dict: crate::columnar::DictStats,
}

/// The process-wide data-plane counters.
pub fn snapshot() -> DataPlaneStats {
    DataPlaneStats {
        rows_moved: ROWS_MOVED.load(Ordering::Relaxed),
        batches_emitted: BATCHES_EMITTED.load(Ordering::Relaxed),
        branches_shared: BRANCHES_SHARED.load(Ordering::Relaxed),
        intern: intern::stats(),
        columnar: ColumnarStats {
            encodes: COL_ENCODES.load(Ordering::Relaxed),
            decodes: COL_DECODES.load(Ordering::Relaxed),
            column_bytes: COL_BYTES.load(Ordering::Relaxed),
            kernel_invocations: COL_KERNELS.load(Ordering::Relaxed),
        },
        dict: crate::columnar::dict_stats(),
    }
}

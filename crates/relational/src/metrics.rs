//! Process-wide data-plane counters.
//!
//! The executor increments these as it drains operator trees; the server's
//! `/metrics` endpoint exposes them next to the pool and breaker gauges so
//! an operator can see how much data the federation layer is moving and
//! how well the string intern pool is paying off.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::intern::{self, InternStats};

static ROWS_MOVED: AtomicU64 = AtomicU64::new(0);
static BATCHES_EMITTED: AtomicU64 = AtomicU64::new(0);
static BRANCHES_SHARED: AtomicU64 = AtomicU64::new(0);

/// Records `rows` tuples crossing the executor's drain loop in one batch.
pub(crate) fn record_batch(rows: u64) {
    ROWS_MOVED.fetch_add(rows, Ordering::Relaxed);
    BATCHES_EMITTED.fetch_add(1, Ordering::Relaxed);
}

/// Records a union branch answered from an identical sibling's result.
pub(crate) fn record_shared_branch() {
    BRANCHES_SHARED.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time view of the data-plane counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataPlaneStats {
    /// Tuples that crossed the executor drain loop (all queries).
    pub rows_moved: u64,
    /// Batches emitted by the executor drain loop.
    pub batches_emitted: u64,
    /// Union branches deduplicated by subtree fingerprint.
    pub branches_shared: u64,
    /// String intern pool counters.
    pub intern: InternStats,
}

/// The process-wide data-plane counters.
pub fn snapshot() -> DataPlaneStats {
    DataPlaneStats {
        rows_moved: ROWS_MOVED.load(Ordering::Relaxed),
        batches_emitted: BATCHES_EMITTED.load(Ordering::Relaxed),
        branches_shared: BRANCHES_SHARED.load(Ordering::Relaxed),
        intern: intern::stats(),
    }
}

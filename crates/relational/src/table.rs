//! Materialised tables and the figure-style pretty printer.
//!
//! The demo "presents the execution of the query in tabular form" (§3);
//! Table 1 of the paper is a rendering of such a result. [`Table::render`]
//! reproduces that layout.

use std::fmt;

use crate::schema::{ColumnRef, Schema};
use crate::value::{Tuple, Value};

/// A fully materialised relation: schema plus rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Table {
    /// Creates a table, checking every row's arity against the schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Result<Self, String> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(format!(
                    "row {i} has {} values but schema {schema} has {} columns",
                    row.len(),
                    schema.len()
                ));
            }
        }
        Ok(Table { schema, rows })
    }

    /// Materialises a table from columnar batches, decoding fixed-width
    /// terms back into [`Value`]s. This is the single exit point from the
    /// columnar plane: everything upstream ran over 16-byte term ids, and
    /// only the rows that survived into the result pay decode cost here.
    pub fn from_column_batches(
        schema: Schema,
        batches: &[crate::columnar::ColumnBatch],
    ) -> Result<Self, String> {
        Table::new(schema, crate::columnar::decode_batches(batches))
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// The rows, consuming the table (merge paths avoid re-cloning).
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The values of one column, by reference.
    pub fn column(&self, wanted: &ColumnRef) -> Result<Vec<&Value>, String> {
        let index = self.schema.index_of(wanted)?;
        Ok(self.rows.iter().map(|row| &row[index]).collect())
    }

    /// Sorts rows lexicographically, making result comparison deterministic.
    pub fn sorted(mut self) -> Self {
        self.rows.sort();
        self
    }

    /// Renders the table with a header row and column-width alignment, the
    /// way the MDM frontend displays query results (cf. Table 1):
    ///
    /// ```text
    /// ex:teamName  | ex:playerName
    /// -------------+--------------
    /// FC Barcelona | Lionel Messi
    /// ```
    pub fn render(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(ColumnRef::to_string)
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered_rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            // Trim right-padding on the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        push_row(&headers, &mut out);
        for (i, width) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("-+-");
            }
            out.push_str(&"-".repeat(*width));
        }
        out.push('\n');
        for row in &rendered_rows {
            push_row(row, &mut out);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_one() -> Table {
        // The paper's Table 1, verbatim.
        Table::new(
            Schema::bare(["ex:teamName", "ex:playerName"]),
            vec![
                vec![Value::str("FC Barcelona"), Value::str("Lionel Messi")],
                vec![
                    Value::str("Bayern Munich"),
                    Value::str("Robert Lewandowski"),
                ],
                vec![
                    Value::str("Manchester United"),
                    Value::str("Zlatan Ibrahimovic"),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = Table::new(
            Schema::bare(["a"]),
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap_err();
        assert!(err.contains("2 values"));
    }

    #[test]
    fn render_matches_figure_layout() {
        let rendered = table_one().render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "ex:teamName       | ex:playerName");
        assert!(lines[1].starts_with("---"));
        assert!(lines[1].contains("-+-"));
        assert_eq!(lines[2], "FC Barcelona      | Lionel Messi");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn column_extraction() {
        let t = table_one();
        let teams = t.column(&ColumnRef::bare("ex:teamName")).unwrap();
        assert_eq!(teams.len(), 3);
        assert_eq!(teams[0].as_str(), Some("FC Barcelona"));
        assert!(t.column(&ColumnRef::bare("nope")).is_err());
    }

    #[test]
    fn sorted_orders_rows() {
        let t = table_one().sorted();
        assert_eq!(t.rows()[0][0].as_str(), Some("Bayern Munich"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::empty(Schema::bare(["x"]));
        let lines: Vec<String> = t.render().lines().map(String::from).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "x");
    }
}

//! Interned string symbols: the data plane's string representation.
//!
//! Wrapper payloads repeat the same strings thousands of times (team names,
//! enum-like attributes, identifiers), and before interning every operator
//! that moved a tuple deep-copied each `String` cell. [`Sym`] makes string
//! cells cheap to move: short strings (≤ [`INLINE_CAP`] bytes, the vast
//! majority of wrapper cell values) are stored inline with zero heap
//! traffic, and longer strings are deduplicated into a process-wide pool of
//! `Arc<str>` so every downstream clone is a pointer-sized refcount bump.
//!
//! The pool is process-wide, not per-query, on purpose: wrappers memoise
//! their parsed row sets across queries (`mdm_wrappers` caches the typed
//! rows per payload), so symbols must outlive any single query. Growth is
//! bounded by an opportunistic sweep — when a shard crosses its watermark,
//! entries whose only owner is the pool itself are dropped.
//!
//! [`Sym`] behaves exactly like the `String` it replaces: `Eq`/`Ord`/`Hash`
//! all delegate to the underlying `str` (so `Value`'s coercing semantics
//! and every hash table keyed on tuples are unchanged), with an
//! `Arc::ptr_eq` fast path for pooled symbols.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum string length stored inline (no allocation, no pool traffic).
/// Chosen so `Sym` stays 24 bytes — the same size as the `String` it
/// replaced.
pub const INLINE_CAP: usize = 22;

/// An immutable interned string: inline for short strings, a shared
/// `Arc<str>` from the process-wide pool otherwise. Cloning is always
/// allocation-free.
#[derive(Clone)]
pub struct Sym(Repr);

#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    Shared(Arc<str>),
}

impl Sym {
    /// Interns `text`: inline when it fits, pooled otherwise.
    pub fn new(text: &str) -> Self {
        if text.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..text.len()].copy_from_slice(text.as_bytes());
            Sym(Repr::Inline {
                len: text.len() as u8,
                buf,
            })
        } else {
            Sym(Repr::Shared(pool().intern(text)))
        }
    }

    /// The string content.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Inline { len, buf } => {
                // Only ever built from a valid `&str` prefix in `new`.
                std::str::from_utf8(&buf[..*len as usize]).expect("inline sym is utf-8")
            }
            Repr::Shared(s) => s,
        }
    }

    /// True when the symbol is stored inline (no pool entry).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl Deref for Sym {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Sym {
    fn from(text: &str) -> Self {
        Sym::new(text)
    }
}

impl From<String> for Sym {
    fn from(text: String) -> Self {
        Sym::new(&text)
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            // Pooled symbols with one pointer are equal without looking.
            (Repr::Shared(a), Repr::Shared(b)) if Arc::ptr_eq(a, b) => true,
            _ => self.as_str() == other.as_str(),
        }
    }
}

impl Eq for Sym {}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if let (Repr::Shared(a), Repr::Shared(b)) = (&self.0, &other.0) {
            if Arc::ptr_eq(a, b) {
                return std::cmp::Ordering::Equal;
            }
        }
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `String`'s hash (which is `str`'s), so tuple hash
        // tables behave identically to the pre-interning engine.
        self.as_str().hash(state)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

/// Shard count for the pool: enough that parallel wrapper parses rarely
/// contend on one mutex.
const SHARDS: usize = 16;

/// A shard sweeps (drops entries only the pool still owns) when it grows
/// past its watermark; the watermark then doubles from the surviving size.
const SWEEP_FLOOR: usize = 1 << 12;

struct Shard {
    set: HashSet<Arc<str>>,
    sweep_at: usize,
}

struct InternPool {
    shards: [Mutex<Shard>; SHARDS],
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static SWEEPS: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static InternPool {
    static POOL: OnceLock<InternPool> = OnceLock::new();
    POOL.get_or_init(|| InternPool {
        shards: std::array::from_fn(|_| {
            Mutex::new(Shard {
                set: HashSet::new(),
                sweep_at: SWEEP_FLOOR,
            })
        }),
    })
}

impl InternPool {
    fn intern(&self, text: &str) -> Arc<str> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        text.hash(&mut hasher);
        let shard = &self.shards[(hasher.finish() as usize) % SHARDS];
        let mut shard = shard.lock().expect("intern pool poisoned");
        if let Some(existing) = shard.set.get(text) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(existing);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(text.len() as u64, Ordering::Relaxed);
        let entry: Arc<str> = Arc::from(text);
        shard.set.insert(Arc::clone(&entry));
        if shard.set.len() >= shard.sweep_at {
            shard.set.retain(|s| Arc::strong_count(s) > 1);
            shard.sweep_at = (shard.set.len() * 2).max(SWEEP_FLOOR);
            SWEEPS.fetch_add(1, Ordering::Relaxed);
        }
        entry
    }

    fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("intern pool poisoned").set.len() as u64)
            .sum()
    }
}

/// A snapshot of the pool's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Pool lookups answered by an existing entry.
    pub hits: u64,
    /// Pool lookups that allocated a new entry.
    pub misses: u64,
    /// Total bytes of string data interned (cumulative, not live).
    pub interned_bytes: u64,
    /// Entries currently held by the pool.
    pub entries: u64,
    /// Watermark sweeps performed (entries only the pool owned dropped).
    pub sweeps: u64,
}

impl InternStats {
    /// Hits over lookups, 0.0 when the pool was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lifetime pool counters (process-wide).
pub fn stats() -> InternStats {
    InternStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        interned_bytes: BYTES.load(Ordering::Relaxed),
        entries: pool().entries(),
        sweeps: SWEEPS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn short_strings_are_inline() {
        let s = Sym::new("FC Barcelona");
        assert!(s.is_inline());
        assert_eq!(s.as_str(), "FC Barcelona");
    }

    #[test]
    fn long_strings_are_pooled_and_deduplicated() {
        let text = "a string comfortably longer than the inline capacity";
        let a = Sym::new(text);
        let b = Sym::new(text);
        assert!(!a.is_inline());
        assert_eq!(a, b);
        match (&a.0, &b.0) {
            (Repr::Shared(x), Repr::Shared(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => panic!("expected pooled representations"),
        }
    }

    #[test]
    fn hash_matches_string_hash() {
        for text in ["", "short", "x".repeat(100).as_str()] {
            assert_eq!(hash_of(&Sym::new(text)), hash_of(&text.to_string()));
        }
    }

    #[test]
    fn ordering_matches_str() {
        let mut syms = [Sym::new("b"), Sym::new("a"), Sym::new("c")];
        syms.sort();
        let strs: Vec<&str> = syms.iter().map(Sym::as_str).collect();
        assert_eq!(strs, ["a", "b", "c"]);
    }

    #[test]
    fn boundary_lengths_round_trip() {
        for len in [0, 1, INLINE_CAP - 1, INLINE_CAP, INLINE_CAP + 1, 200] {
            let text = "x".repeat(len);
            let sym = Sym::new(&text);
            assert_eq!(sym.as_str(), text);
            assert_eq!(sym.is_inline(), len <= INLINE_CAP);
        }
    }

    #[test]
    fn stats_track_pool_traffic() {
        let before = stats();
        let text = "another string comfortably longer than the inline cap";
        let _a = Sym::new(text);
        let _b = Sym::new(text);
        let after = stats();
        assert!(after.hits > before.hits);
        assert!(after.misses > before.misses);
        assert!(after.interned_bytes >= before.interned_bytes + text.len() as u64);
    }
}

//! # mdm-relational
//!
//! The federated-execution substrate of MDM. The paper's implementation
//! loads "the fragment of data provided by wrappers … into temporal SQLite
//! tables in order to execute the federated query" (§2.5). This crate
//! replaces that stage with a native engine:
//!
//! * [`Value`] / [`Tuple`] / [`Schema`] / [`Table`] — the data model, with a
//!   figure-style pretty printer (Table 1 of the paper is produced by it);
//! * [`expr`] — scalar expressions and predicates over tuples;
//! * [`algebra`] — the logical relational algebra (σ, π, ⋈, ∪, δ, ρ); the
//!   query-rewriting algorithm of `mdm-core` outputs one of these plans, and
//!   its `Display` form is the "relational algebra expression" shown in
//!   Figure 8;
//! * [`physical`] — volcano-style operators (hash join, nested-loop join,
//!   filter, project, union, distinct, sort, limit);
//! * [`columnar`] — the columnar twin of [`physical`]: fixed-width 16-byte
//!   term encoding ([`Layout::Columnar`], the default) and vectorized
//!   filter/join/distinct/project kernels over shared column batches,
//!   decoding back to [`Value`]s only at render time;
//! * [`executor`] — turns a logical plan plus a [`Catalog`] of relation
//!   providers into a materialised [`Table`], fanning union branches out
//!   on the worker [`pool`] with per-query scan reuse ([`scan_cache`]);
//! * [`pool`] — the bounded, work-stealing scoped-thread worker pool;
//! * [`scan_cache`] — the per-query `(relation, version, epoch)`-keyed
//!   scan cache (each wrapper fetched once per query);
//! * [`optimizer`] — plan optimization: heuristic rewrites (predicate
//!   pushdown, pairwise join ordering) plus the cost-based pass
//!   (projection pruning, greedy join-region reordering, branch dedup)
//!   driven by the [`stats`] catalog;
//! * [`stats`] — the cardinality-statistics catalog: per-relation row
//!   counts and per-column distinct/null estimates, learned
//!   opportunistically from executor scans and versioned by a stats
//!   epoch.

pub mod algebra;
pub mod columnar;
pub mod executor;
pub mod expr;
pub mod intern;
pub mod metrics;
pub mod optimizer;
pub mod physical;
pub mod pool;
pub mod resilience;
pub mod scan_cache;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use algebra::{JoinKind, Plan};
pub use columnar::{DictStats, Layout};
pub use executor::{
    Catalog, ErrorKind, ExecError, ExecOptions, Executor, MemoryCatalog, RelationProvider,
};
pub use expr::{BinOp, Expr};
pub use intern::{InternStats, Sym};
pub use metrics::{DataPlaneStats, OptimizerStats};
pub use optimizer::{explain_tree, OptimizeMode, Optimizer, Statistics};
pub use physical::Batch;
pub use pool::{Pool, PoolStats};
pub use resilience::{
    BreakerConfig, BreakerRegistry, BreakerSnapshot, Deadline, RetryPolicy, ScanGuard,
};
pub use scan_cache::{ScanCache, ScanCacheStats};
pub use schema::Schema;
pub use stats::{StatsCatalog, StatsSnapshot};
pub use table::Table;
pub use value::{Tuple, Value};

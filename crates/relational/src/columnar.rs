//! Columnar data plane: fixed-width term encoding and vectorized kernels.
//!
//! The row plane moves `Vec<Tuple>` of enum [`Value`]s; every filter, join
//! and distinct re-hashes full enum cells and clones tuples. This module
//! gives the executor a second, columnar shape for the same plans: every
//! cell becomes a fixed-width 16-byte [`TermId`] (a tag word plus an inline
//! payload, with pooled/inline strings mapped through a process-wide
//! dictionary), operators exchange [`ColumnBatch`]es of shared
//! [`TypedColumn`]s, and the hot kernels — filter predicates, hash-join
//! build/probe, DISTINCT, projection — run over raw id arrays. Terms decode
//! back into `Value`s only at the edges: render time (`Table`), sorts, and
//! the row-wise fallback that replays a batch whenever vectorized
//! expression evaluation hits an error (so error text and error *order*
//! stay byte-identical with the row plane).
//!
//! Encoding is exact, not lossy: ints keep their i64 bits, floats their
//! f64 bits (NaN payloads and -0.0 included), and strings their dictionary
//! id, so the coercing `Value` semantics (`Int(1) == Float(1.0)`,
//! `NaN != NaN` under `=` but `NaN ≤ NaN` under `total_cmp`) are
//! re-implemented over terms rather than approximated.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard};

use crate::executor::ExecError;
use crate::expr::{BinOp, Expr};
use crate::intern::Sym;
use crate::metrics;
use crate::pool::Pool;
use crate::schema::Schema;
use crate::value::{Tuple, Value};

/// Which physical shape the executor builds for a plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Layout {
    /// Tuple-at-a-time `Vec<Tuple>` batches (the pre-columnar engine).
    Row,
    /// Fixed-width term columns with vectorized kernels.
    #[default]
    Columnar,
}

impl Layout {
    /// Parses a CLI/server knob value.
    pub fn parse(text: &str) -> Result<Layout, String> {
        match text {
            "row" => Ok(Layout::Row),
            "columnar" => Ok(Layout::Columnar),
            other => Err(format!(
                "unknown layout '{other}' (expected 'row' or 'columnar')"
            )),
        }
    }

    /// The knob spelling of this layout.
    pub fn label(&self) -> &'static str {
        match self {
            Layout::Row => "row",
            Layout::Columnar => "columnar",
        }
    }
}

const TAG_NULL: u64 = 0;
const TAG_BOOL: u64 = 1;
const TAG_INT: u64 = 2;
const TAG_FLOAT: u64 = 3;
const TAG_STR: u64 = 4;

/// A fixed-width (16-byte) encoded `Value`: a type tag plus an inline
/// payload — the i64/f64/bool bits, or a term-dictionary id for strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TermId {
    tag: u64,
    bits: u64,
}

impl TermId {
    /// The encoded NULL.
    pub const NULL: TermId = TermId {
        tag: TAG_NULL,
        bits: 0,
    };

    const TRUE: TermId = TermId {
        tag: TAG_BOOL,
        bits: 1,
    };
    const FALSE: TermId = TermId {
        tag: TAG_BOOL,
        bits: 0,
    };

    fn int(i: i64) -> TermId {
        TermId {
            tag: TAG_INT,
            bits: i as u64,
        }
    }

    fn float(f: f64) -> TermId {
        TermId {
            tag: TAG_FLOAT,
            bits: f.to_bits(),
        }
    }

    fn bool(b: bool) -> TermId {
        if b {
            TermId::TRUE
        } else {
            TermId::FALSE
        }
    }

    /// True when this term encodes NULL.
    pub fn is_null(self) -> bool {
        self.tag == TAG_NULL
    }

    /// Numeric view matching `Value::as_f64` (ints widen, bools/strings
    /// and NULL are non-numeric).
    fn as_f64(self) -> Option<f64> {
        match self.tag {
            TAG_INT => Some((self.bits as i64) as f64),
            TAG_FLOAT => Some(f64::from_bits(self.bits)),
            _ => None,
        }
    }

    /// Cross-type rank mirroring `Value::type_rank`.
    fn type_rank(self) -> u8 {
        match self.tag {
            TAG_NULL => 0,
            TAG_BOOL => 1,
            TAG_INT | TAG_FLOAT => 2,
            _ => 3,
        }
    }
}

/// Equality between terms, mirroring `Value`'s coercing `PartialEq`:
/// exact for same-type ints/bools/strings (dictionary ids are unique per
/// content), IEEE `==` for floats and mixed numerics, never across
/// non-numeric types.
pub(crate) fn term_eq(a: TermId, b: TermId) -> bool {
    match (a.tag, b.tag) {
        (TAG_NULL, TAG_NULL) => true,
        (TAG_BOOL, TAG_BOOL) | (TAG_INT, TAG_INT) | (TAG_STR, TAG_STR) => a.bits == b.bits,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A hash consistent with [`term_eq`]: terms that compare equal hash
/// equal (ints hash through their f64 widening so `Int(1)` and
/// `Float(1.0)` collide on purpose, -0.0 normalises to 0.0).
pub(crate) fn term_norm(t: TermId) -> u64 {
    let (class, bits): (u64, u64) = match t.tag {
        TAG_NULL => (0, 0),
        TAG_BOOL => (1, t.bits),
        TAG_INT => (2, {
            let f = (t.bits as i64) as f64;
            (if f == 0.0 { 0.0f64 } else { f }).to_bits()
        }),
        TAG_FLOAT => (2, {
            let f = f64::from_bits(t.bits);
            (if f == 0.0 { 0.0f64 } else { f }).to_bits()
        }),
        _ => (3, t.bits),
    };
    splitmix64(bits ^ class.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// FNV-style combine of a multi-column key's term hashes.
pub(crate) fn key_hash(terms: impl IntoIterator<Item = TermId>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in terms {
        h = h.wrapping_mul(0x0000_0100_0000_01b3) ^ term_norm(t);
    }
    h
}

/// Dictionary shard count; matches the intern pool's sharding so parallel
/// encodes spread the same way parallel interns do.
const DICT_SHARDS: usize = 16;

struct DictShard {
    map: HashMap<Sym, u32>,
    entries: Vec<Sym>,
}

/// The process-wide string→id dictionary backing [`TermId`] string terms.
///
/// Ids are stable for the process lifetime: the dictionary holds a `Sym`
/// clone per entry, which pins pooled `Arc<str>`s (strong count ≥ 2) so the
/// intern pool's strong-count sweep never reclaims a string a live column
/// might still reference. Inline `Sym`s cost 24 bytes each and never touch
/// the pool.
struct TermDict {
    shards: [RwLock<DictShard>; DICT_SHARDS],
}

static DICT_BYTES: AtomicU64 = AtomicU64::new(0);

fn dict() -> &'static TermDict {
    static DICT: OnceLock<TermDict> = OnceLock::new();
    DICT.get_or_init(|| TermDict {
        shards: std::array::from_fn(|_| {
            RwLock::new(DictShard {
                map: HashMap::new(),
                entries: Vec::new(),
            })
        }),
    })
}

fn dict_shard_of(text: &str) -> usize {
    let mut hasher = DefaultHasher::new();
    text.hash(&mut hasher);
    (hasher.finish() as usize) % DICT_SHARDS
}

impl TermDict {
    /// The id for `sym`'s content, inserting on first sight. Read-locks on
    /// the hit path; upgrades to a write lock only for new strings.
    fn id_of(&self, sym: &Sym) -> u64 {
        let shard_idx = dict_shard_of(sym.as_str());
        let shard = &self.shards[shard_idx];
        {
            let guard = shard.read().expect("term dict poisoned");
            if let Some(&idx) = guard.map.get(sym.as_str()) {
                return ((shard_idx as u64) << 32) | idx as u64;
            }
        }
        let mut guard = shard.write().expect("term dict poisoned");
        if let Some(&idx) = guard.map.get(sym.as_str()) {
            return ((shard_idx as u64) << 32) | idx as u64;
        }
        let idx = guard.entries.len() as u32;
        guard.entries.push(sym.clone());
        guard.map.insert(sym.clone(), idx);
        DICT_BYTES.fetch_add(sym.len() as u64, AtomicOrdering::Relaxed);
        ((shard_idx as u64) << 32) | idx as u64
    }
}

/// Gauges for the term dictionary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DictStats {
    /// Distinct strings mapped to ids.
    pub entries: u64,
    /// Total bytes of string content held by the dictionary.
    pub bytes: u64,
}

/// A snapshot of the term dictionary's size.
pub fn dict_stats() -> DictStats {
    let entries = dict()
        .shards
        .iter()
        .map(|s| s.read().expect("term dict poisoned").entries.len() as u64)
        .sum();
    DictStats {
        entries,
        bytes: DICT_BYTES.load(AtomicOrdering::Relaxed),
    }
}

/// Encodes one value. Takes the dictionary write path for unseen strings —
/// never call while a [`Decoder`] is alive on the same thread.
pub(crate) fn encode_value(v: &Value) -> TermId {
    match v {
        Value::Null => TermId::NULL,
        Value::Bool(b) => TermId::bool(*b),
        Value::Int(i) => TermId::int(*i),
        Value::Float(f) => TermId::float(*f),
        Value::Str(s) => TermId {
            tag: TAG_STR,
            bits: dict().id_of(s),
        },
    }
}

/// Encodes `rows` column-major into `width` shared columns.
pub(crate) fn encode_rows(rows: &[Tuple], width: usize) -> Vec<Arc<TypedColumn>> {
    let mut columns: Vec<Vec<TermId>> =
        (0..width).map(|_| Vec::with_capacity(rows.len())).collect();
    for row in rows {
        for (c, v) in row.iter().enumerate() {
            columns[c].push(encode_value(v));
        }
    }
    metrics::record_encodes((rows.len() * width) as u64);
    columns
        .into_iter()
        .map(|ids| Arc::new(TypedColumn { ids }))
        .collect()
}

/// Decodes terms back into `Value`s, caching one read guard per touched
/// dictionary shard so a batch decode locks each shard at most once.
///
/// While a `Decoder` is alive its thread MUST NOT encode (a new string
/// would need a write lock on a shard this decoder may already read-hold).
pub(crate) struct Decoder<'d> {
    guards: [Option<RwLockReadGuard<'d, DictShard>>; DICT_SHARDS],
    decoded: u64,
}

impl<'d> Decoder<'d> {
    pub(crate) fn new() -> Decoder<'d> {
        Decoder {
            guards: std::array::from_fn(|_| None),
            decoded: 0,
        }
    }

    fn sym(&mut self, id: u64) -> Sym {
        let shard = (id >> 32) as usize;
        let idx = (id & 0xffff_ffff) as usize;
        let d = dict();
        let guard = self.guards[shard]
            .get_or_insert_with(|| d.shards[shard].read().expect("term dict poisoned"));
        guard.entries[idx].clone()
    }

    /// Decodes one term to its `Value`.
    pub(crate) fn value(&mut self, t: TermId) -> Value {
        self.decoded += 1;
        match t.tag {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(t.bits != 0),
            TAG_INT => Value::Int(t.bits as i64),
            TAG_FLOAT => Value::Float(f64::from_bits(t.bits)),
            _ => Value::Str(self.sym(t.bits)),
        }
    }

    /// Decodes the selected rows of `batch` into tuples appended to `out`.
    pub(crate) fn rows_into(&mut self, batch: &ColumnBatch, out: &mut Vec<Tuple>) {
        for i in 0..batch.len() {
            let row = batch.row_id(i);
            out.push(
                batch
                    .columns
                    .iter()
                    .map(|c| self.value(c.ids[row as usize]))
                    .collect(),
            );
        }
    }

    /// Ordering between terms mirroring `Value::cmp` (exact int compare,
    /// `total_cmp` across numerics, lexicographic strings, type rank
    /// otherwise).
    pub(crate) fn cmp(&mut self, a: TermId, b: TermId) -> std::cmp::Ordering {
        match (a.tag, b.tag) {
            (TAG_NULL, TAG_NULL) => std::cmp::Ordering::Equal,
            (TAG_BOOL, TAG_BOOL) => (a.bits != 0).cmp(&(b.bits != 0)),
            (TAG_INT, TAG_INT) => (a.bits as i64).cmp(&(b.bits as i64)),
            (TAG_STR, TAG_STR) => {
                if a.bits == b.bits {
                    std::cmp::Ordering::Equal
                } else {
                    let left = self.sym(a.bits);
                    let right = self.sym(b.bits);
                    left.as_str().cmp(right.as_str())
                }
            }
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => a.type_rank().cmp(&b.type_rank()),
            },
        }
    }
}

impl Drop for Decoder<'_> {
    fn drop(&mut self) {
        if self.decoded > 0 {
            metrics::record_decodes(self.decoded);
        }
    }
}

/// A shared, immutable column of fixed-width terms.
#[derive(Debug)]
pub struct TypedColumn {
    ids: Vec<TermId>,
}

impl TypedColumn {
    /// Physical length (ignoring any selection).
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Which physical rows of a column set are live, in output order.
#[derive(Clone, Debug)]
pub enum Sel {
    /// Every physical row.
    All,
    /// A contiguous half-open range of physical rows.
    Range(u32, u32),
    /// An explicit physical row-id list.
    Rows(Vec<u32>),
}

/// A batch of shared columns plus a selection over their physical rows.
/// Cloning shares the columns; kernels narrow `sel` instead of copying.
#[derive(Clone, Debug)]
pub struct ColumnBatch {
    pub(crate) columns: Vec<Arc<TypedColumn>>,
    pub(crate) sel: Sel,
}

impl ColumnBatch {
    /// A batch selecting every row of `columns`.
    pub(crate) fn all(columns: Vec<Arc<TypedColumn>>) -> ColumnBatch {
        ColumnBatch {
            columns,
            sel: Sel::All,
        }
    }

    /// Same columns, different selection; a full-width `Range` normalises
    /// to `All`.
    pub(crate) fn with_sel(&self, sel: Sel) -> ColumnBatch {
        let sel = match sel {
            Sel::Range(0, end) if end as usize == self.physical_len() => Sel::All,
            other => other,
        };
        ColumnBatch {
            columns: self.columns.clone(),
            sel,
        }
    }

    fn physical_len(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Live rows in this batch.
    pub(crate) fn len(&self) -> usize {
        match &self.sel {
            Sel::All => self.physical_len(),
            Sel::Range(s, e) => (e - s) as usize,
            Sel::Rows(ids) => ids.len(),
        }
    }

    /// The physical row id of the `i`-th live row.
    pub(crate) fn row_id(&self, i: usize) -> u32 {
        match &self.sel {
            Sel::All => i as u32,
            Sel::Range(s, _) => s + i as u32,
            Sel::Rows(ids) => ids[i],
        }
    }

    /// The term in column `c` of the `i`-th live row.
    pub(crate) fn term(&self, c: usize, i: usize) -> TermId {
        self.columns[c].ids[self.row_id(i) as usize]
    }
}

/// A columnar physical operator: a pull-based iterator of column batches.
pub trait ColOperator {
    /// The output schema.
    fn schema(&self) -> &Schema;

    /// The next batch of at most `max` live rows, or `None` when drained.
    fn next_cols(&mut self, max: usize) -> Option<Result<ColumnBatch, ExecError>>;
}

/// Drains `op` into a single column set (the hash-join build side). A
/// single full batch passes through zero-copy; anything else gathers into
/// fresh dense columns.
pub(crate) fn drain_columns(
    op: &mut dyn ColOperator,
) -> Result<(Vec<Arc<TypedColumn>>, usize), ExecError> {
    let width = op.schema().len();
    let mut batches: Vec<ColumnBatch> = Vec::new();
    while let Some(block) = op.next_cols(usize::MAX) {
        let block = block?;
        if block.len() > 0 {
            batches.push(block);
        }
    }
    match batches.len() {
        0 => Ok((
            (0..width)
                .map(|_| Arc::new(TypedColumn { ids: Vec::new() }))
                .collect(),
            0,
        )),
        1 if matches!(batches[0].sel, Sel::All) => {
            let len = batches[0].len();
            Ok((batches.remove(0).columns, len))
        }
        _ => {
            let total: usize = batches.iter().map(ColumnBatch::len).sum();
            let mut columns: Vec<Vec<TermId>> =
                (0..width).map(|_| Vec::with_capacity(total)).collect();
            for batch in &batches {
                for i in 0..batch.len() {
                    let row = batch.row_id(i) as usize;
                    for (c, col) in columns.iter_mut().enumerate() {
                        col.push(batch.columns[c].ids[row]);
                    }
                }
            }
            Ok((
                columns
                    .into_iter()
                    .map(|ids| Arc::new(TypedColumn { ids }))
                    .collect(),
                total,
            ))
        }
    }
}

/// A compiled expression: columns resolved to indices and literals encoded
/// once, at operator construction — so vectorized evaluation never touches
/// the dictionary write path (see [`Decoder`]'s deadlock contract).
enum CExpr {
    Col(usize),
    /// A column that failed to resolve; erroring is deferred to evaluation
    /// (a zero-row input must not error, mirroring the row plane).
    BadCol,
    Lit(TermId),
    Binary {
        op: BinOp,
        left: Box<CExpr>,
        right: Box<CExpr>,
    },
    Not(Box<CExpr>),
    IsNull(Box<CExpr>),
}

fn compile(expr: &Expr, schema: &Schema) -> CExpr {
    match expr {
        Expr::Column(c) => match schema.index_of(c) {
            Ok(i) => CExpr::Col(i),
            Err(_) => CExpr::BadCol,
        },
        Expr::Literal(v) => CExpr::Lit(encode_value(v)),
        Expr::Binary { op, left, right } => CExpr::Binary {
            op: *op,
            left: Box::new(compile(left, schema)),
            right: Box::new(compile(right, schema)),
        },
        Expr::Not(inner) => CExpr::Not(Box::new(compile(inner, schema))),
        Expr::IsNull(inner) => CExpr::IsNull(Box::new(compile(inner, schema))),
    }
}

/// Vectorized evaluation bailed; the caller must replay the batch
/// row-wise so the error (and its row order) matches the row plane.
struct VecError;

fn eval_vec(
    expr: &CExpr,
    batch: &ColumnBatch,
    dec: &mut Decoder<'_>,
) -> Result<Vec<TermId>, VecError> {
    let n = batch.len();
    match expr {
        CExpr::Col(idx) => Ok((0..n).map(|i| batch.term(*idx, i)).collect()),
        CExpr::BadCol => Err(VecError),
        CExpr::Lit(t) => Ok(vec![*t; n]),
        CExpr::IsNull(inner) => Ok(eval_vec(inner, batch, dec)?
            .into_iter()
            .map(|t| TermId::bool(t.is_null()))
            .collect()),
        CExpr::Not(inner) => {
            let vals = eval_vec(inner, batch, dec)?;
            let mut out = Vec::with_capacity(n);
            for t in vals {
                out.push(match t.tag {
                    TAG_NULL => TermId::NULL,
                    TAG_BOOL => TermId::bool(t.bits == 0),
                    _ => return Err(VecError),
                });
            }
            Ok(out)
        }
        CExpr::Binary { op, left, right } => {
            let l = eval_vec(left, batch, dec)?;
            let r = eval_vec(right, batch, dec)?;
            eval_binary_vec(*op, &l, &r, dec)
        }
    }
}

fn eval_binary_vec(
    op: BinOp,
    l: &[TermId],
    r: &[TermId],
    dec: &mut Decoder<'_>,
) -> Result<Vec<TermId>, VecError> {
    use BinOp::*;
    let mut out = Vec::with_capacity(l.len());
    match op {
        And | Or => {
            for (&a, &b) in l.iter().zip(r) {
                // The row plane is eager: both operands must be boolean (or
                // NULL) even when one side already decides the result.
                let as_bool = |t: TermId| -> Result<Option<bool>, VecError> {
                    match t.tag {
                        TAG_BOOL => Ok(Some(t.bits != 0)),
                        TAG_NULL => Ok(None),
                        _ => Err(VecError),
                    }
                };
                let (lb, rb) = (as_bool(a)?, as_bool(b)?);
                let result = match (op, lb, rb) {
                    (And, Some(false), _) | (And, _, Some(false)) => Some(false),
                    (And, Some(true), Some(true)) => Some(true),
                    (Or, Some(true), _) | (Or, _, Some(true)) => Some(true),
                    (Or, Some(false), Some(false)) => Some(false),
                    _ => None,
                };
                out.push(result.map_or(TermId::NULL, TermId::bool));
            }
        }
        Eq | Ne => {
            for (&a, &b) in l.iter().zip(r) {
                out.push(if a.is_null() || b.is_null() {
                    TermId::NULL
                } else {
                    TermId::bool(term_eq(a, b) == (op == Eq))
                });
            }
        }
        Lt | Le | Gt | Ge => {
            for (&a, &b) in l.iter().zip(r) {
                out.push(if a.is_null() || b.is_null() {
                    TermId::NULL
                } else {
                    let ord = dec.cmp(a, b);
                    TermId::bool(match op {
                        Lt => ord.is_lt(),
                        Le => ord.is_le(),
                        Gt => ord.is_gt(),
                        Ge => ord.is_ge(),
                        _ => unreachable!(),
                    })
                });
            }
        }
        Add | Sub | Mul | Div => {
            for (&a, &b) in l.iter().zip(r) {
                if a.is_null() || b.is_null() {
                    out.push(TermId::NULL);
                    continue;
                }
                if a.tag == TAG_INT && b.tag == TAG_INT {
                    let (x, y) = (a.bits as i64, b.bits as i64);
                    out.push(TermId::int(match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        Div => {
                            if y == 0 {
                                return Err(VecError);
                            }
                            x / y
                        }
                        _ => unreachable!(),
                    }));
                    continue;
                }
                let (x, y) = match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Err(VecError),
                };
                out.push(TermId::float(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            return Err(VecError);
                        }
                        x / y
                    }
                    _ => unreachable!(),
                }));
            }
        }
    }
    Ok(out)
}

/// Columnar σ — vectorized predicate over term columns, emitting a
/// narrowed selection. Any evaluation error (non-boolean operand, division
/// by zero, unresolvable column) replays the batch row-wise so the error
/// text and first-error row match the row plane exactly.
pub struct ColFilter {
    input: Box<dyn ColOperator>,
    predicate: Expr,
    compiled: CExpr,
}

impl ColFilter {
    pub(crate) fn new(input: Box<dyn ColOperator>, predicate: Expr) -> Self {
        let compiled = compile(&predicate, input.schema());
        ColFilter {
            input,
            predicate,
            compiled,
        }
    }

    /// The surviving physical row ids of `batch`, in order.
    fn select(&self, batch: &ColumnBatch) -> Result<Vec<u32>, ExecError> {
        let vals = {
            let mut dec = Decoder::new();
            eval_vec(&self.compiled, batch, &mut dec)
        };
        if let Ok(vals) = vals {
            let mut sel = Vec::with_capacity(vals.len());
            let mut bail = false;
            for (i, t) in vals.iter().enumerate() {
                match t.tag {
                    TAG_BOOL => {
                        if t.bits != 0 {
                            sel.push(batch.row_id(i));
                        }
                    }
                    TAG_NULL => {}
                    _ => {
                        bail = true;
                        break;
                    }
                }
            }
            if !bail {
                return Ok(sel);
            }
        }
        // Row-wise replay: decode first, drop the decoder (its read guards)
        // before `eval` runs, then re-filter with the interpreted path.
        let mut rows = Vec::with_capacity(batch.len());
        {
            let mut dec = Decoder::new();
            dec.rows_into(batch, &mut rows);
        }
        let mut sel = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            match self.predicate.eval_predicate(self.input.schema(), row) {
                Ok(true) => sel.push(batch.row_id(i)),
                Ok(false) => {}
                Err(e) => return Err(ExecError::permanent(e.0)),
            }
        }
        Ok(sel)
    }
}

impl ColOperator for ColFilter {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_cols(&mut self, max: usize) -> Option<Result<ColumnBatch, ExecError>> {
        loop {
            let batch = match self.input.next_cols(max)? {
                Ok(b) => b,
                Err(e) => return Some(Err(e)),
            };
            if batch.len() == 0 {
                continue;
            }
            metrics::record_kernel();
            let sel = match self.select(&batch) {
                Ok(sel) => sel,
                Err(e) => return Some(Err(e)),
            };
            if !sel.is_empty() {
                return Some(Ok(batch.with_sel(Sel::Rows(sel))));
            }
        }
    }
}

/// Columnar scan over a pre-encoded column set (shared via the scan cache,
/// so a relation scanned by many branches encodes once per version).
pub struct ColScan {
    schema: Schema,
    columns: Arc<Vec<Arc<TypedColumn>>>,
    len: usize,
    cursor: usize,
}

impl ColScan {
    pub(crate) fn new(schema: Schema, columns: Arc<Vec<Arc<TypedColumn>>>, len: usize) -> Self {
        ColScan {
            schema,
            columns,
            len,
            cursor: 0,
        }
    }
}

impl ColOperator for ColScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_cols(&mut self, max: usize) -> Option<Result<ColumnBatch, ExecError>> {
        if self.cursor >= self.len {
            return None;
        }
        let end = self.cursor.saturating_add(max.max(1)).min(self.len);
        let batch = ColumnBatch::all(self.columns.as_ref().clone())
            .with_sel(Sel::Range(self.cursor as u32, end as u32));
        self.cursor = end;
        Some(Ok(batch))
    }
}

/// Columnar π — pure column projections reorder shared `Arc` columns
/// (zero copy, selection preserved); computed expressions gather dense
/// output columns via the vectorized evaluator.
pub struct ColProject {
    input: Box<dyn ColOperator>,
    exprs: Vec<Expr>,
    compiled: Vec<CExpr>,
    /// Column indices when every expression is a resolved column ref.
    pure: Option<Vec<usize>>,
    schema: Schema,
}

impl ColProject {
    pub(crate) fn new(input: Box<dyn ColOperator>, exprs: Vec<Expr>, schema: Schema) -> Self {
        let compiled: Vec<CExpr> = exprs.iter().map(|e| compile(e, input.schema())).collect();
        let pure = compiled
            .iter()
            .map(|c| match c {
                CExpr::Col(i) => Some(*i),
                _ => None,
            })
            .collect::<Option<Vec<usize>>>();
        ColProject {
            input,
            exprs,
            compiled,
            pure,
            schema,
        }
    }

    fn project(&self, batch: &ColumnBatch) -> Result<ColumnBatch, ExecError> {
        if let Some(cols) = &self.pure {
            return Ok(ColumnBatch {
                columns: cols.iter().map(|&c| batch.columns[c].clone()).collect(),
                sel: batch.sel.clone(),
            });
        }
        let vecs = {
            let mut dec = Decoder::new();
            self.compiled
                .iter()
                .map(|c| eval_vec(c, batch, &mut dec))
                .collect::<Result<Vec<Vec<TermId>>, VecError>>()
        };
        if let Ok(vecs) = vecs {
            return Ok(ColumnBatch::all(
                vecs.into_iter()
                    .map(|ids| Arc::new(TypedColumn { ids }))
                    .collect(),
            ));
        }
        // Row-wise replay for the exact row-order error (or, when no row
        // actually errors, the correct values). Decode, drop the decoder,
        // evaluate, then re-encode — eval cannot mint new strings, so the
        // encode below stays on the dictionary's read path.
        let mut rows = Vec::with_capacity(batch.len());
        {
            let mut dec = Decoder::new();
            dec.rows_into(batch, &mut rows);
        }
        let mut out = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut projected = Vec::with_capacity(self.exprs.len());
            for expr in &self.exprs {
                match expr.eval(self.input.schema(), row) {
                    Ok(v) => projected.push(v),
                    Err(e) => return Err(ExecError::permanent(e.0)),
                }
            }
            out.push(projected);
        }
        Ok(ColumnBatch::all(encode_rows(&out, self.exprs.len())))
    }
}

impl ColOperator for ColProject {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_cols(&mut self, max: usize) -> Option<Result<ColumnBatch, ExecError>> {
        let batch = match self.input.next_cols(max)? {
            Ok(b) => b,
            Err(e) => return Some(Err(e)),
        };
        metrics::record_kernel();
        Some(self.project(&batch))
    }
}

/// Probe batches below this width are not worth fanning out (matches the
/// row plane's threshold so layout choice never changes parallelism).
const PARALLEL_PROBE_MIN: usize = 512;

/// The build side of a columnar hash join: dense term columns plus a
/// chained hash index (`heads` + `next`, `u32::MAX` terminated) — parallel
/// arrays instead of a per-key `Vec` per bucket, so building allocates
/// O(1) times regardless of key distribution.
struct BuildTable {
    columns: Vec<Arc<TypedColumn>>,
    keys: Vec<usize>,
    heads: HashMap<u64, u32>,
    next: Vec<u32>,
}

impl BuildTable {
    fn new(columns: Vec<Arc<TypedColumn>>, len: usize, keys: Vec<usize>) -> BuildTable {
        let mut heads: HashMap<u64, u32> = HashMap::with_capacity(len);
        let mut next = vec![u32::MAX; len];
        // Insert in reverse build order: chains grow at the head, so a
        // forward walk then replays build order — match emission order
        // stays byte-identical with the row plane's bucket vectors.
        for i in (0..len).rev() {
            if keys.iter().any(|&k| columns[k].ids[i].is_null()) {
                continue;
            }
            let h = key_hash(keys.iter().map(|&k| columns[k].ids[i]));
            next[i] = heads.insert(h, i as u32).unwrap_or(u32::MAX);
        }
        BuildTable {
            columns,
            keys,
            heads,
            next,
        }
    }
}

/// Probes live rows `[start, end)` of `batch`, appending
/// `(probe_physical_row, build_row)` pairs in probe order; `u32::MAX` as
/// the build row marks an unmatched left-join probe.
fn probe_range_cols(
    table: &BuildTable,
    left_keys: &[usize],
    emit_unmatched_left: bool,
    batch: &ColumnBatch,
    hashes: &[u64],
    range: std::ops::Range<usize>,
    out: &mut Vec<(u32, u32)>,
) {
    for (i, hash) in hashes.iter().enumerate().take(range.end).skip(range.start) {
        let probe_row = batch.row_id(i) as usize;
        let mut matched = false;
        if !left_keys
            .iter()
            .any(|&k| batch.columns[k].ids[probe_row].is_null())
        {
            if let Some(&head) = table.heads.get(hash) {
                let mut j = head;
                while j != u32::MAX {
                    let ok = left_keys.iter().zip(&table.keys).all(|(&l, &r)| {
                        term_eq(
                            batch.columns[l].ids[probe_row],
                            table.columns[r].ids[j as usize],
                        )
                    });
                    if ok {
                        matched = true;
                        out.push((probe_row as u32, j));
                    }
                    j = table.next[j as usize];
                }
            }
        }
        if !matched && emit_unmatched_left {
            out.push((probe_row as u32, u32::MAX));
        }
    }
}

/// Columnar ⋈ — hash equi-join over raw term ids. Builds on the right,
/// probes with the left; NULL keys never match. Wide probe batches are
/// split into contiguous chunks probed on pool workers and re-concatenated
/// in chunk order, exactly like the row plane.
pub struct ColHashJoin {
    left: Box<dyn ColOperator>,
    schema: Schema,
    left_keys: Vec<usize>,
    table: BuildTable,
    right_width: usize,
    emit_unmatched_left: bool,
    pool: Option<Arc<Pool>>,
}

impl ColHashJoin {
    pub(crate) fn new(
        left: Box<dyn ColOperator>,
        mut right: Box<dyn ColOperator>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        emit_unmatched_left: bool,
    ) -> Result<Self, ExecError> {
        let schema = left.schema().concat(right.schema());
        let right_width = right.schema().len();
        let (columns, len) = drain_columns(right.as_mut())?;
        Ok(ColHashJoin {
            left,
            schema,
            left_keys,
            table: BuildTable::new(columns, len, right_keys),
            right_width,
            emit_unmatched_left,
            pool: None,
        })
    }

    /// Enables partitioned parallel probing of wide batches on `pool`.
    pub(crate) fn with_pool(mut self, pool: Option<Arc<Pool>>) -> Self {
        self.pool = pool.filter(|p| p.size() > 1);
        self
    }

    fn probe_batch(&self, batch: &ColumnBatch) -> Vec<(u32, u32)> {
        let n = batch.len();
        // Memoise probe-key hashes once per batch for both probe paths.
        let hashes: Vec<u64> = (0..n)
            .map(|i| key_hash(self.left_keys.iter().map(|&k| batch.term(k, i))))
            .collect();
        if let Some(pool) = &self.pool {
            if n >= PARALLEL_PROBE_MIN {
                let chunk = n.div_ceil(pool.size());
                let ranges: Vec<(usize, usize)> = (0..n)
                    .step_by(chunk.max(1))
                    .map(|s| (s, (s + chunk).min(n)))
                    .collect();
                let (table, keys) = (&self.table, &self.left_keys);
                let (emit, hashes_ref) = (self.emit_unmatched_left, &hashes);
                let probed = pool.run(ranges.len(), |i| {
                    let (start, end) = ranges[i];
                    let mut part = Vec::new();
                    probe_range_cols(table, keys, emit, batch, hashes_ref, start..end, &mut part);
                    part
                });
                let mut out = Vec::with_capacity(probed.iter().map(Vec::len).sum());
                for part in probed {
                    out.extend(part);
                }
                return out;
            }
        }
        let mut out = Vec::new();
        probe_range_cols(
            &self.table,
            &self.left_keys,
            self.emit_unmatched_left,
            batch,
            &hashes,
            0..n,
            &mut out,
        );
        out
    }

    /// Gathers matched pairs into dense output columns (left side from the
    /// probe batch, right side from the build table, NULL-padded for
    /// unmatched left-join rows).
    fn gather(&self, batch: &ColumnBatch, pairs: &[(u32, u32)], out: &mut [Vec<TermId>]) {
        let left_width = self.schema.len() - self.right_width;
        for (c, col) in out.iter_mut().enumerate() {
            if c < left_width {
                let ids = &batch.columns[c].ids;
                col.extend(pairs.iter().map(|&(p, _)| ids[p as usize]));
            } else {
                let ids = &self.table.columns[c - left_width].ids;
                col.extend(pairs.iter().map(|&(_, b)| {
                    if b == u32::MAX {
                        TermId::NULL
                    } else {
                        ids[b as usize]
                    }
                }));
            }
        }
    }
}

impl ColOperator for ColHashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_cols(&mut self, max: usize) -> Option<Result<ColumnBatch, ExecError>> {
        let width = self.schema.len();
        let mut out: Vec<Vec<TermId>> = (0..width).map(|_| Vec::new()).collect();
        let mut produced = 0usize;
        while produced < max.max(1) {
            let batch = match self.left.next_cols(max) {
                None => break,
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(b)) => b,
            };
            if batch.len() == 0 {
                continue;
            }
            metrics::record_kernel();
            let pairs = self.probe_batch(&batch);
            produced += pairs.len();
            self.gather(&batch, &pairs, &mut out);
        }
        if produced == 0 {
            return None;
        }
        Some(Ok(ColumnBatch::all(
            out.into_iter()
                .map(|ids| Arc::new(TypedColumn { ids }))
                .collect(),
        )))
    }
}

/// Columnar ∪ — drains inputs in order; all inputs must share an arity.
pub struct ColUnion {
    inputs: Vec<Box<dyn ColOperator>>,
    schema: Schema,
    current: usize,
}

impl ColUnion {
    pub(crate) fn new(inputs: Vec<Box<dyn ColOperator>>) -> Result<Self, ExecError> {
        let first = inputs
            .first()
            .ok_or_else(|| ExecError::permanent("union of zero inputs"))?;
        let schema = first.schema().clone();
        for input in &inputs {
            if input.schema().len() != schema.len() {
                return Err(ExecError::permanent(format!(
                    "union arity mismatch: {} vs {}",
                    schema,
                    input.schema()
                )));
            }
        }
        Ok(ColUnion {
            inputs,
            schema,
            current: 0,
        })
    }
}

impl ColOperator for ColUnion {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_cols(&mut self, max: usize) -> Option<Result<ColumnBatch, ExecError>> {
        while self.current < self.inputs.len() {
            match self.inputs[self.current].next_cols(max) {
                Some(item) => return Some(item),
                None => self.current += 1,
            }
        }
        None
    }
}

/// Columnar δ — duplicate elimination without materialising tuples: the
/// *seen* set is a chained hash index over retained column sets, and
/// emitted batches are selections over the input's shared columns.
pub struct ColDistinct {
    input: Box<dyn ColOperator>,
    /// Column sets that contributed at least one first-seen row.
    kept: Vec<Vec<Arc<TypedColumn>>>,
    /// (kept set index, physical row) per distinct row, chain-linked.
    entries: Vec<(u32, u32)>,
    next: Vec<u32>,
    heads: HashMap<u64, u32>,
}

impl ColDistinct {
    pub(crate) fn new(input: Box<dyn ColOperator>) -> Self {
        ColDistinct {
            input,
            kept: Vec::new(),
            entries: Vec::new(),
            next: Vec::new(),
            heads: HashMap::new(),
        }
    }

    fn entry_matches(&self, entry: usize, batch: &ColumnBatch, row: usize) -> bool {
        let (set, erow) = self.entries[entry];
        let set = &self.kept[set as usize];
        batch
            .columns
            .iter()
            .zip(set)
            .all(|(a, b)| term_eq(a.ids[row], b.ids[erow as usize]))
    }
}

impl ColOperator for ColDistinct {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_cols(&mut self, max: usize) -> Option<Result<ColumnBatch, ExecError>> {
        loop {
            let batch = match self.input.next_cols(max)? {
                Ok(b) => b,
                Err(e) => return Some(Err(e)),
            };
            if batch.len() == 0 {
                continue;
            }
            metrics::record_kernel();
            let mut sel = Vec::with_capacity(batch.len());
            let mut kept_idx: Option<u32> = None;
            for i in 0..batch.len() {
                let row = batch.row_id(i) as usize;
                let h = key_hash(batch.columns.iter().map(|c| c.ids[row]));
                let mut found = false;
                let mut j = self.heads.get(&h).copied().unwrap_or(u32::MAX);
                while j != u32::MAX {
                    if self.entry_matches(j as usize, &batch, row) {
                        found = true;
                        break;
                    }
                    j = self.next[j as usize];
                }
                if found {
                    continue;
                }
                let set = *kept_idx.get_or_insert_with(|| {
                    self.kept.push(batch.columns.clone());
                    (self.kept.len() - 1) as u32
                });
                let id = self.entries.len() as u32;
                self.entries.push((set, row as u32));
                self.next.push(self.heads.insert(h, id).unwrap_or(u32::MAX));
                sel.push(row as u32);
            }
            if !sel.is_empty() {
                return Some(Ok(batch.with_sel(Sel::Rows(sel))));
            }
        }
    }
}

/// Columnar limit — narrows the final selection instead of copying rows.
pub struct ColLimit {
    input: Box<dyn ColOperator>,
    remaining: usize,
}

impl ColLimit {
    pub(crate) fn new(input: Box<dyn ColOperator>, count: usize) -> Self {
        ColLimit {
            input,
            remaining: count,
        }
    }
}

impl ColOperator for ColLimit {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_cols(&mut self, max: usize) -> Option<Result<ColumnBatch, ExecError>> {
        if self.remaining == 0 {
            return None;
        }
        let batch = match self.input.next_cols(max.min(self.remaining))? {
            Ok(b) => b,
            Err(e) => return Some(Err(e)),
        };
        if batch.len() <= self.remaining {
            self.remaining -= batch.len();
            return Some(Ok(batch));
        }
        let take = self.remaining as u32;
        self.remaining = 0;
        let sel = match &batch.sel {
            Sel::All => Sel::Range(0, take),
            Sel::Range(s, _) => Sel::Range(*s, s + take),
            Sel::Rows(ids) => Sel::Rows(ids[..take as usize].to_vec()),
        };
        Some(Ok(batch.with_sel(sel)))
    }
}

/// Decodes a run of batches into row-major tuples (the render-time exit
/// from the columnar plane, called by `Table::from_column_batches`).
pub(crate) fn decode_batches(batches: &[ColumnBatch]) -> Vec<Tuple> {
    let total = batches.iter().map(ColumnBatch::len).sum();
    let mut rows = Vec::with_capacity(total);
    let mut dec = Decoder::new();
    for batch in batches {
        dec.rows_into(batch, &mut rows);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let t = encode_value(&v);
        let mut dec = Decoder::new();
        assert_eq!(dec.value(t), v);
    }

    #[test]
    fn encode_decode_round_trips_every_shape() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::Int(0));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::Int(i64::MIN));
        roundtrip(Value::Float(2.5));
        roundtrip(Value::Float(-0.0));
        roundtrip(Value::str("inline"));
        roundtrip(Value::str(
            "a pooled string comfortably longer than the inline capacity",
        ));
        // NaN can't go through assert_eq (NaN != NaN); check bits instead.
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let t = encode_value(&Value::Float(nan));
        let mut dec = Decoder::new();
        match dec.value(t) {
            Value::Float(f) => assert_eq!(f.to_bits(), nan.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn term_eq_mirrors_value_eq() {
        let cases = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(1),
            Value::Int(0),
            Value::Float(1.0),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::str("a"),
            Value::str("b"),
            Value::str("a string comfortably longer than the inline capacity"),
        ];
        for a in &cases {
            for b in &cases {
                let (ta, tb) = (encode_value(a), encode_value(b));
                assert_eq!(term_eq(ta, tb), a == b, "{a:?} vs {b:?}");
                if a == b {
                    assert_eq!(term_norm(ta), term_norm(tb), "{a:?} vs {b:?} hash");
                }
            }
        }
    }

    #[test]
    fn term_cmp_mirrors_value_cmp() {
        let cases = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(7),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::str("alpha"),
            Value::str("beta"),
            Value::str("a string comfortably longer than the inline capacity"),
        ];
        let mut dec = Decoder::new();
        for a in &cases {
            for b in &cases {
                let (ta, tb) = (encode_value(a), encode_value(b));
                assert_eq!(dec.cmp(ta, tb), a.cmp(b), "{a:?} vs {b:?}");
            }
        }
    }

    fn batch_of(rows: Vec<Tuple>, width: usize) -> ColumnBatch {
        ColumnBatch::all(encode_rows(&rows, width))
    }

    #[test]
    fn filter_kernel_matches_row_semantics() {
        let schema = Schema::bare(["a", "b"]);
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Null, Value::str("y")],
            vec![Value::Int(3), Value::str("x")],
            vec![Value::Float(1.0), Value::str("z")],
        ];
        let mut scan = ColScan::new(schema.clone(), Arc::new(batch_of(rows, 2).columns), 4);
        let pred = Expr::col("a").eq(Expr::lit(1i64));
        let mut filter = ColFilter::new(Box::new(drain_into_scan(&mut scan, schema)), pred);
        let out = drain_all(&mut filter);
        // Int(1) and Float(1.0) both match; NULL drops.
        assert_eq!(
            out,
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Float(1.0), Value::str("z")],
            ]
        );
    }

    /// Rebuilds a ColScan from an existing one (test helper keeping batch
    /// plumbing honest by round-tripping through drain_columns).
    fn drain_into_scan(op: &mut dyn ColOperator, schema: Schema) -> ColScan {
        let (cols, len) = drain_columns(op).unwrap();
        ColScan::new(schema, Arc::new(cols), len)
    }

    fn drain_all(op: &mut dyn ColOperator) -> Vec<Tuple> {
        let mut batches = Vec::new();
        while let Some(b) = op.next_cols(3) {
            batches.push(b.unwrap());
        }
        decode_batches(&batches)
    }

    #[test]
    fn join_kernel_matches_row_plane_order_and_null_keys() {
        let left_schema = Schema::qualified("l", ["k", "v"]);
        let right_schema = Schema::qualified("r", ["k", "w"]);
        let left_rows: Vec<Tuple> = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Null, Value::str("n")],
            vec![Value::Float(2.0), Value::str("b")],
            vec![Value::Int(9), Value::str("m")],
        ];
        let right_rows: Vec<Tuple> = vec![
            vec![Value::Int(1), Value::str("r1")],
            vec![Value::Int(2), Value::str("r2")],
            vec![Value::Float(1.0), Value::str("r3")],
            vec![Value::Null, Value::str("rn")],
        ];
        let left = ColScan::new(
            left_schema.clone(),
            Arc::new(batch_of(left_rows.clone(), 2).columns),
            4,
        );
        let right = ColScan::new(
            right_schema.clone(),
            Arc::new(batch_of(right_rows.clone(), 2).columns),
            4,
        );
        let mut join =
            ColHashJoin::new(Box::new(left), Box::new(right), vec![0], vec![0], true).unwrap();
        let got = drain_all(&mut join);

        // Reference: the row-plane join on the same inputs.
        let l = crate::physical::ScanExec::new(left_schema, left_rows);
        let r = crate::physical::ScanExec::new(right_schema, right_rows);
        let reference =
            crate::physical::HashJoinExec::new(Box::new(l), Box::new(r), vec![0], vec![0], true)
                .unwrap();
        let want = crate::physical::drain(Box::new(reference)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn distinct_kernel_keeps_first_occurrence() {
        let schema = Schema::bare(["a"]);
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(1)],
            vec![Value::Float(1.0)],
            vec![Value::Int(2)],
            vec![Value::Int(1)],
            vec![Value::Null],
            vec![Value::Null],
        ];
        let scan = ColScan::new(schema, Arc::new(batch_of(rows, 1).columns), 6);
        let mut distinct = ColDistinct::new(Box::new(scan));
        let got = drain_all(&mut distinct);
        // Int(1) == Float(1.0) under coercing equality; NULL == NULL.
        assert_eq!(
            got,
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Null]]
        );
    }

    #[test]
    fn limit_truncates_every_selection_shape() {
        let schema = Schema::bare(["a"]);
        let rows: Vec<Tuple> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let scan = ColScan::new(schema, Arc::new(batch_of(rows, 1).columns), 10);
        let mut limit = ColLimit::new(Box::new(scan), 4);
        let got = drain_all(&mut limit);
        assert_eq!(got.len(), 4);
        assert_eq!(got[3], vec![Value::Int(3)]);
    }

    #[test]
    fn layout_parses_both_knob_values() {
        assert_eq!(Layout::parse("row"), Ok(Layout::Row));
        assert_eq!(Layout::parse("columnar"), Ok(Layout::Columnar));
        assert!(Layout::parse("arrow").is_err());
        assert_eq!(Layout::default(), Layout::Columnar);
        assert_eq!(Layout::Columnar.label(), "columnar");
    }
}

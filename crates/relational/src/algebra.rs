//! The logical relational algebra.
//!
//! The query-rewriting algorithm of `mdm-core` produces a [`Plan`]: a union
//! of conjunctive queries over wrapper relations. `Display` renders the plan
//! in textbook notation — `π`, `σ`, `⋈`, `∪`, `δ` — which is exactly the
//! "generated relational algebra expression over the wrappers" the MDM
//! frontend shows next to a query (paper Figure 8).

use std::fmt;

use crate::expr::Expr;
use crate::schema::{ColumnRef, Schema};

/// Join kinds. MDM's rewriting only emits inner equi-joins (joins are
/// restricted to identifier features, §2.3); left joins exist for the
/// OPTIONAL fragment of the SPARQL engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

/// A sort direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// A logical plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// A base relation (a wrapper, in MDM's usage).
    Scan { relation: String },
    /// σ — keep rows satisfying the predicate.
    Filter { input: Box<Plan>, predicate: Expr },
    /// π — compute output columns (each an expression with an output name).
    Project {
        input: Box<Plan>,
        columns: Vec<(Expr, ColumnRef)>,
    },
    /// ⋈ — equi-join on pairs of (left column, right column).
    Join {
        kind: JoinKind,
        left: Box<Plan>,
        right: Box<Plan>,
        on: Vec<(ColumnRef, ColumnRef)>,
    },
    /// ∪ — set union of compatible inputs (bag semantics until `Distinct`).
    Union { inputs: Vec<Plan> },
    /// δ — duplicate elimination.
    Distinct { input: Box<Plan> },
    /// Sort by columns.
    Sort {
        input: Box<Plan>,
        keys: Vec<(ColumnRef, SortOrder)>,
    },
    /// First-n.
    Limit { input: Box<Plan>, count: usize },
}

impl Plan {
    /// Scan of a named relation.
    pub fn scan(relation: impl Into<String>) -> Plan {
        Plan::Scan {
            relation: relation.into(),
        }
    }

    /// σ builder.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// π builder from `(expr, output name)` pairs.
    pub fn project(self, columns: Vec<(Expr, ColumnRef)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// π builder that just selects existing columns, renaming each to its
    /// bare output name.
    pub fn project_named(self, pairs: &[(&str, &str)]) -> Plan {
        self.project(
            pairs
                .iter()
                .map(|(source, output)| (Expr::col(source), ColumnRef::bare(*output)))
                .collect(),
        )
    }

    /// Inner equi-join builder.
    pub fn join(self, right: Plan, on: Vec<(ColumnRef, ColumnRef)>) -> Plan {
        Plan::Join {
            kind: JoinKind::Inner,
            left: Box::new(self),
            right: Box::new(right),
            on,
        }
    }

    /// ∪ builder; flattens nested unions.
    pub fn union(inputs: Vec<Plan>) -> Plan {
        let mut flat = Vec::new();
        for input in inputs {
            match input {
                Plan::Union { inputs } => flat.extend(inputs),
                other => flat.push(other),
            }
        }
        Plan::Union { inputs: flat }
    }

    /// δ builder.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// Sort builder (ascending on the given columns).
    pub fn sort_by(self, columns: &[&str]) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys: columns
                .iter()
                .map(|c| (ColumnRef::parse(c), SortOrder::Asc))
                .collect(),
        }
    }

    /// Limit builder.
    pub fn limit(self, count: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            count,
        }
    }

    /// The relations scanned by this plan, in first-use order.
    pub fn scanned_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_scans(&mut out);
        out
    }

    fn collect_scans<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Plan::Scan { relation } => {
                if !out.contains(&relation.as_str()) {
                    out.push(relation);
                }
            }
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.collect_scans(out),
            Plan::Join { left, right, .. } => {
                left.collect_scans(out);
                right.collect_scans(out);
            }
            Plan::Union { inputs } => {
                for input in inputs {
                    input.collect_scans(out);
                }
            }
        }
    }

    /// Derives the output schema given a function resolving base-relation
    /// schemas (usually [`Catalog::relation_schema`](crate::Catalog)).
    pub fn schema_with(
        &self,
        resolve: &dyn Fn(&str) -> Result<Schema, String>,
    ) -> Result<Schema, String> {
        match self {
            Plan::Scan { relation } => resolve(relation),
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.schema_with(resolve),
            Plan::Project { columns, .. } => Ok(Schema::new(
                columns.iter().map(|(_, name)| name.clone()).collect(),
            )),
            Plan::Join { left, right, .. } => Ok(left
                .schema_with(resolve)?
                .concat(&right.schema_with(resolve)?)),
            Plan::Union { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| "empty union".to_string())?
                    .schema_with(resolve)?;
                for input in &inputs[1..] {
                    let s = input.schema_with(resolve)?;
                    if s.len() != first.len() {
                        return Err(format!("union arms have different arities: {first} vs {s}"));
                    }
                }
                Ok(first)
            }
        }
    }

    /// Number of operator nodes (used by benches to report plan sizes).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } => 0,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.node_count(),
            Plan::Join { left, right, .. } => left.node_count() + right.node_count(),
            Plan::Union { inputs } => inputs.iter().map(Plan::node_count).sum(),
        }
    }

    /// Number of union branches at the top of the plan (ignoring the
    /// projection/distinct shell); the UCQ width the paper's rewriting
    /// produces — one branch per wrapper-version combination.
    pub fn union_width(&self) -> usize {
        match self {
            Plan::Union { inputs } => inputs.len(),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.union_width(),
            _ => 1,
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Scan { relation } => write!(f, "{relation}"),
            Plan::Filter { input, predicate } => write!(f, "σ[{predicate}]({input})"),
            Plan::Project { input, columns } => {
                let cols: Vec<String> = columns
                    .iter()
                    .map(|(expr, name)| {
                        let rendered = expr.to_string();
                        if rendered == name.to_string() {
                            rendered
                        } else {
                            format!("{rendered}→{name}")
                        }
                    })
                    .collect();
                write!(f, "π[{}]({input})", cols.join(", "))
            }
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => {
                let conditions: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                let symbol = match kind {
                    JoinKind::Inner => "⋈",
                    JoinKind::Left => "⟕",
                };
                write!(f, "({left} {symbol}[{}] {right})", conditions.join(" ∧ "))
            }
            Plan::Union { inputs } => {
                let arms: Vec<String> = inputs.iter().map(Plan::to_string).collect();
                write!(f, "({})", arms.join(" ∪ "))
            }
            Plan::Distinct { input } => write!(f, "δ({input})"),
            Plan::Sort { input, keys } => {
                let rendered: Vec<String> = keys
                    .iter()
                    .map(|(c, order)| match order {
                        SortOrder::Asc => c.to_string(),
                        SortOrder::Desc => format!("{c}↓"),
                    })
                    .collect();
                write!(f, "sort[{}]({input})", rendered.join(", "))
            }
            Plan::Limit { input, count } => write!(f, "limit[{count}]({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 8 plan: names of players and their teams.
    fn figure8_plan() -> Plan {
        Plan::scan("w1")
            .join(
                Plan::scan("w2"),
                vec![(
                    ColumnRef::qualified("w1", "teamId"),
                    ColumnRef::qualified("w2", "id"),
                )],
            )
            .project_named(&[("w2.name", "ex:teamName"), ("w1.pName", "ex:playerName")])
    }

    #[test]
    fn display_is_figure8_style() {
        let rendered = figure8_plan().to_string();
        assert_eq!(
            rendered,
            "π[w2.name→ex:teamName, w1.pName→ex:playerName]((w1 ⋈[w1.teamId=w2.id] w2))"
        );
    }

    #[test]
    fn union_flattens() {
        let u = Plan::union(vec![
            Plan::scan("a"),
            Plan::union(vec![Plan::scan("b"), Plan::scan("c")]),
        ]);
        match &u {
            Plan::Union { inputs } => assert_eq!(inputs.len(), 3),
            _ => panic!("expected union"),
        }
        assert_eq!(u.union_width(), 3);
    }

    #[test]
    fn scanned_relations_in_order() {
        assert_eq!(figure8_plan().scanned_relations(), vec!["w1", "w2"]);
    }

    #[test]
    fn schema_of_projection() {
        let resolve = |name: &str| -> Result<Schema, String> {
            Ok(match name {
                "w1" => Schema::qualified("w1", ["id", "pName", "teamId"]),
                "w2" => Schema::qualified("w2", ["id", "name"]),
                other => return Err(format!("unknown {other}")),
            })
        };
        let schema = figure8_plan().schema_with(&resolve).unwrap();
        assert_eq!(schema.join_names(", "), "ex:teamName, ex:playerName");
    }

    #[test]
    fn schema_of_join_concatenates() {
        let resolve =
            |name: &str| -> Result<Schema, String> { Ok(Schema::qualified(name, ["id"])) };
        let plan = Plan::scan("w1").join(
            Plan::scan("w2"),
            vec![(
                ColumnRef::qualified("w1", "id"),
                ColumnRef::qualified("w2", "id"),
            )],
        );
        assert_eq!(plan.schema_with(&resolve).unwrap().len(), 2);
    }

    #[test]
    fn union_arity_mismatch_detected() {
        let resolve = |name: &str| -> Result<Schema, String> {
            Ok(match name {
                "a" => Schema::bare(["x"]),
                _ => Schema::bare(["x", "y"]),
            })
        };
        let u = Plan::union(vec![Plan::scan("a"), Plan::scan("b")]);
        assert!(u.schema_with(&resolve).is_err());
    }

    #[test]
    fn node_count() {
        assert_eq!(figure8_plan().node_count(), 4); // scan, scan, join, project
    }

    #[test]
    fn distinct_and_limit_render() {
        let p = Plan::scan("w").distinct().limit(5);
        assert_eq!(p.to_string(), "limit[5](δ(w))");
    }
}

//! Heuristic plan rewrites.
//!
//! The paper's prototype unions SQLite queries without optimisation; a
//! production federation layer wants at least the classical heuristics. The
//! ablation bench (`P6` in DESIGN.md) measures their effect:
//!
//! * **predicate pushdown** — filters sink below joins and unions to the arm
//!   that can evaluate them;
//! * **join input ordering** — the smaller estimated input becomes the hash-
//!   join build side (we express this by swapping children, since
//!   [`HashJoinExec`](crate::physical::HashJoinExec) always builds right);
//! * **union-arm pruning** — a union arm whose relation provider is known
//!   empty is dropped (frequent under schema evolution: a superseded wrapper
//!   version may serve zero rows).

use crate::algebra::Plan;
use crate::expr::Expr;
use crate::schema::Schema;

/// A structural fingerprint of a plan subtree, used by the executor to
/// detect identical UCQ branches and execute them once. The `Display`
/// rendering of a plan is deterministic and complete (it is the Figure-8
/// algebra expression, covering predicates, projections, join keys and
/// relation names), so equal renderings mean structurally equal plans;
/// fingerprint hits are still verified with `Plan::eq` by the caller, so a
/// 64-bit collision can never merge two different branches.
pub fn subtree_fingerprint(plan: &Plan) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    plan.to_string().hash(&mut hasher);
    hasher.finish()
}

/// Cardinality estimates for base relations, used by join ordering.
pub trait Statistics {
    /// Estimated row count of `relation`, when known.
    fn estimated_rows(&self, relation: &str) -> Option<usize>;
}

/// Statistics that know nothing.
pub struct NoStatistics;

impl Statistics for NoStatistics {
    fn estimated_rows(&self, _relation: &str) -> Option<usize> {
        None
    }
}

/// The optimizer; all rewrites are semantics-preserving.
pub struct Optimizer<'a> {
    stats: &'a dyn Statistics,
    /// Resolves relation schemas, needed to decide where predicates can sink.
    resolve: &'a dyn Fn(&str) -> Result<Schema, String>,
}

impl<'a> Optimizer<'a> {
    pub fn new(
        stats: &'a dyn Statistics,
        resolve: &'a dyn Fn(&str) -> Result<Schema, String>,
    ) -> Self {
        Optimizer { stats, resolve }
    }

    /// Applies all rewrites bottom-up.
    pub fn optimize(&self, plan: Plan) -> Plan {
        let plan = self.rewrite(plan);
        self.order_joins(plan)
    }

    /// Predicate pushdown and union-arm simplification.
    fn rewrite(&self, plan: Plan) -> Plan {
        match plan {
            Plan::Filter { input, predicate } => {
                let input = self.rewrite(*input);
                self.push_filter(input, predicate)
            }
            Plan::Project { input, columns } => Plan::Project {
                input: Box::new(self.rewrite(*input)),
                columns,
            },
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => Plan::Join {
                kind,
                left: Box::new(self.rewrite(*left)),
                right: Box::new(self.rewrite(*right)),
                on,
            },
            Plan::Union { inputs } => {
                // Flatten nested unions: ∪(∪(a, b), c) → ∪(a, b, c). Arm
                // order is preserved, so results are unchanged, and the
                // widened top-level union gives the parallel executor one
                // flat set of branches to fan out.
                let mut flat = Vec::with_capacity(inputs.len());
                for input in inputs {
                    match self.rewrite(input) {
                        Plan::Union { inputs: nested } => flat.extend(nested),
                        other => flat.push(other),
                    }
                }
                Plan::union(flat)
            }
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(self.rewrite(*input)),
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(self.rewrite(*input)),
                keys,
            },
            Plan::Limit { input, count } => Plan::Limit {
                input: Box::new(self.rewrite(*input)),
                count,
            },
            leaf @ Plan::Scan { .. } => leaf,
        }
    }

    /// Sinks `predicate` as deep as its column references allow.
    fn push_filter(&self, input: Plan, predicate: Expr) -> Plan {
        match input {
            Plan::Union { inputs } => {
                // A filter over a union applies to every arm.
                Plan::union(
                    inputs
                        .into_iter()
                        .map(|arm| self.push_filter(arm, predicate.clone()))
                        .collect(),
                )
            }
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => {
                // Sink into whichever side covers all referenced columns.
                if self.covers(&left, &predicate) {
                    Plan::Join {
                        kind,
                        left: Box::new(self.push_filter(*left, predicate)),
                        right,
                        on,
                    }
                } else if self.covers(&right, &predicate) {
                    Plan::Join {
                        kind,
                        left,
                        right: Box::new(self.push_filter(*right, predicate)),
                        on,
                    }
                } else {
                    Plan::Join {
                        kind,
                        left,
                        right,
                        on,
                    }
                    .filter(predicate)
                }
            }
            other => other.filter(predicate),
        }
    }

    /// True when every column the predicate references resolves in the
    /// plan's output schema.
    fn covers(&self, plan: &Plan, predicate: &Expr) -> bool {
        let Ok(schema) = plan.schema_with(self.resolve) else {
            return false;
        };
        predicate
            .referenced_columns()
            .iter()
            .all(|column| schema.index_of(column).is_ok())
    }

    /// Puts the smaller estimated input on the right of every inner join
    /// (the build side of our hash join).
    fn order_joins(&self, plan: Plan) -> Plan {
        match plan {
            Plan::Join {
                kind: crate::algebra::JoinKind::Inner,
                left,
                right,
                on,
            } => {
                let left = self.order_joins(*left);
                let right = self.order_joins(*right);
                let left_rows = self.estimate(&left);
                let right_rows = self.estimate(&right);
                match (left_rows, right_rows) {
                    // Swap when the *left* is smaller: small side should be
                    // the build (right) side. Key pairs flip accordingly.
                    (Some(l), Some(r)) if l < r => Plan::Join {
                        kind: crate::algebra::JoinKind::Inner,
                        left: Box::new(right),
                        right: Box::new(left),
                        on: on.into_iter().map(|(a, b)| (b, a)).collect(),
                    },
                    _ => Plan::Join {
                        kind: crate::algebra::JoinKind::Inner,
                        left: Box::new(left),
                        right: Box::new(right),
                        on,
                    },
                }
            }
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(self.order_joins(*input)),
                predicate,
            },
            Plan::Project { input, columns } => Plan::Project {
                input: Box::new(self.order_joins(*input)),
                columns,
            },
            Plan::Union { inputs } => {
                Plan::union(inputs.into_iter().map(|p| self.order_joins(p)).collect())
            }
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(self.order_joins(*input)),
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(self.order_joins(*input)),
                keys,
            },
            Plan::Limit { input, count } => Plan::Limit {
                input: Box::new(self.order_joins(*input)),
                count,
            },
            other => other,
        }
    }

    /// A crude cardinality estimate: scans use statistics, filters halve,
    /// joins multiply then take a tenth, unions add.
    fn estimate(&self, plan: &Plan) -> Option<usize> {
        match plan {
            Plan::Scan { relation } => self.stats.estimated_rows(relation),
            Plan::Filter { input, .. } => self.estimate(input).map(|n| n / 2),
            Plan::Project { input, .. } | Plan::Distinct { input } | Plan::Sort { input, .. } => {
                self.estimate(input)
            }
            Plan::Limit { input, count } => self.estimate(input).map(|n| n.min(*count)),
            Plan::Join { left, right, .. } => {
                let l = self.estimate(left)?;
                let r = self.estimate(right)?;
                Some((l.saturating_mul(r) / 10).max(1))
            }
            Plan::Union { inputs } => {
                let mut total = 0usize;
                for input in inputs {
                    total = total.saturating_add(self.estimate(input)?);
                }
                Some(total)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;
    use std::collections::HashMap;

    struct MapStats(HashMap<String, usize>);

    impl Statistics for MapStats {
        fn estimated_rows(&self, relation: &str) -> Option<usize> {
            self.0.get(relation).copied()
        }
    }

    fn resolve(name: &str) -> Result<Schema, String> {
        Ok(match name {
            "w1" => Schema::qualified("w1", ["id", "pName", "teamId"]),
            "w2" => Schema::qualified("w2", ["id", "name"]),
            other => return Err(format!("unknown {other}")),
        })
    }

    fn join_plan() -> Plan {
        Plan::scan("w1").join(
            Plan::scan("w2"),
            vec![(
                ColumnRef::qualified("w1", "teamId"),
                ColumnRef::qualified("w2", "id"),
            )],
        )
    }

    #[test]
    fn filter_sinks_below_join() {
        let plan = join_plan().filter(Expr::col("w1.pName").eq(Expr::lit("Messi")));
        let optimizer = Optimizer::new(&NoStatistics, &resolve);
        let optimized = optimizer.optimize(plan);
        let rendered = optimized.to_string();
        // The σ must appear inside the join, applied to w1.
        assert!(
            rendered.contains("σ[w1.pName = 'Messi'](w1)"),
            "got {rendered}"
        );
    }

    #[test]
    fn filter_over_union_distributes() {
        let plan = Plan::union(vec![Plan::scan("w1"), Plan::scan("w1")])
            .filter(Expr::col("w1.id").eq(Expr::lit(1i64)));
        let optimizer = Optimizer::new(&NoStatistics, &resolve);
        let rendered = optimizer.optimize(plan).to_string();
        assert_eq!(rendered.matches("σ[").count(), 2, "got {rendered}");
    }

    #[test]
    fn nested_unions_flatten_in_arm_order() {
        let plan = Plan::union(vec![
            Plan::union(vec![Plan::scan("w1"), Plan::scan("w2")]),
            Plan::scan("w1"),
        ]);
        let optimizer = Optimizer::new(&NoStatistics, &resolve);
        match optimizer.optimize(plan) {
            Plan::Union { inputs } => {
                let arms: Vec<String> = inputs.iter().map(Plan::to_string).collect();
                assert_eq!(arms, ["w1", "w2", "w1"]);
            }
            other => panic!("expected a flat union, got {other}"),
        }
    }

    #[test]
    fn cross_side_predicate_stays_above_join() {
        let plan = join_plan().filter(Expr::col("w1.teamId").eq(Expr::col("w2.id")));
        let optimizer = Optimizer::new(&NoStatistics, &resolve);
        let rendered = optimizer.optimize(plan).to_string();
        assert!(rendered.starts_with("σ["), "got {rendered}");
    }

    #[test]
    fn join_ordering_puts_small_side_right() {
        let stats = MapStats(HashMap::from([
            ("w1".to_string(), 1_000_000),
            ("w2".to_string(), 10),
        ]));
        let optimizer = Optimizer::new(&stats, &resolve);
        // w2 is already right (small): no swap.
        let rendered = optimizer.optimize(join_plan()).to_string();
        assert!(
            rendered.contains("(w1 ⋈[w1.teamId=w2.id] w2)"),
            "got {rendered}"
        );

        // Flip statistics: now w1 is small and should move right.
        let stats = MapStats(HashMap::from([
            ("w1".to_string(), 10),
            ("w2".to_string(), 1_000_000),
        ]));
        let optimizer = Optimizer::new(&stats, &resolve);
        let rendered = optimizer.optimize(join_plan()).to_string();
        assert!(
            rendered.contains("(w2 ⋈[w2.id=w1.teamId] w1)"),
            "got {rendered}"
        );
    }

    #[test]
    fn optimization_preserves_results() {
        use crate::executor::{Executor, MemoryCatalog};
        use crate::table::Table;
        use crate::value::Value;

        let mut catalog = MemoryCatalog::new();
        catalog.register(
            "w1",
            Table::new(
                Schema::qualified("w1", ["id", "pName", "teamId"]),
                vec![
                    vec![Value::Int(1), Value::str("Messi"), Value::Int(25)],
                    vec![Value::Int(2), Value::str("Lewandowski"), Value::Int(27)],
                ],
            )
            .unwrap(),
        );
        catalog.register(
            "w2",
            Table::new(
                Schema::qualified("w2", ["id", "name"]),
                vec![
                    vec![Value::Int(25), Value::str("FC Barcelona")],
                    vec![Value::Int(27), Value::str("Bayern Munich")],
                ],
            )
            .unwrap(),
        );
        let plan = join_plan()
            .filter(Expr::col("w1.pName").eq(Expr::lit("Messi")))
            .project_named(&[("w2.name", "team")]);
        let optimizer = Optimizer::new(&NoStatistics, &resolve);
        let optimized = optimizer.optimize(plan.clone());
        let executor = Executor::new(&catalog);
        let baseline = executor.run(&plan).unwrap().sorted();
        let improved = executor.run(&optimized).unwrap().sorted();
        assert_eq!(baseline, improved);
        assert_eq!(baseline.rows()[0][0], Value::str("FC Barcelona"));
    }
}

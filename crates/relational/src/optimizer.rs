//! Plan optimization: heuristic rewrites plus the cost-based pass.
//!
//! The paper's prototype unions SQLite queries without optimisation; a
//! production federation layer wants more. Three tiers are offered via
//! [`OptimizeMode`]:
//!
//! * **off** — execute the rewriting exactly as produced;
//! * **heuristic** — the classical statistics-free rewrites: predicate
//!   pushdown (filters sink below joins and unions to the arm that can
//!   evaluate them) and pairwise join-input ordering (the smaller
//!   estimated input becomes the hash-join build side — we express this by
//!   swapping children, since
//!   [`HashJoinExec`](crate::physical::HashJoinExec) always builds right);
//! * **cost** (the default) — everything above plus the passes driven by
//!   the [`stats`](crate::stats) catalog: projection pruning (scans are
//!   narrowed to the columns the plan above actually consumes, shrinking
//!   every downstream join gather), greedy join-region reordering
//!   (cheapest estimated join first, left-deep, build-side-small), and
//!   post-reorder union-arm dedup under `δ` (joins that become identical
//!   only once canonically ordered collapse to one branch).
//!
//! Every rewrite is semantics-preserving **including output column
//! order**: when reordering changes the left-to-right leaf order of a
//! join region, the region is wrapped in an identity projection restoring
//! the original schema, so optimized and unoptimized plans render
//! byte-identical tables.

use std::collections::HashSet;

use crate::algebra::{JoinKind, Plan};
use crate::expr::{BinOp, Expr};
use crate::metrics;
use crate::schema::{ColumnRef, Schema};

/// A structural fingerprint of a plan subtree, used by the executor to
/// detect identical UCQ branches and execute them once, and by the
/// optimizer to drop duplicate union arms under `δ`. The `Display`
/// rendering of a plan is deterministic and complete (it is the Figure-8
/// algebra expression, covering predicates, projections, join keys and
/// relation names), so equal renderings mean structurally equal plans;
/// fingerprint hits are still verified with `Plan::eq` by the caller, so a
/// 64-bit collision can never merge two different branches.
pub fn subtree_fingerprint(plan: &Plan) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    plan.to_string().hash(&mut hasher);
    hasher.finish()
}

/// Cardinality statistics for base relations; the cost model's input.
/// Implemented by the process-wide [`StatsCatalog`](crate::stats) and by
/// test/bench fixtures.
pub trait Statistics {
    /// Estimated row count of `relation`, when known.
    fn estimated_rows(&self, relation: &str) -> Option<usize>;

    /// Estimated distinct values of `column` (qualified, e.g. `w1.id`) in
    /// `relation`, when known.
    fn distinct_values(&self, _relation: &str, _column: &str) -> Option<usize> {
        None
    }

    /// Fraction of NULLs in `column` of `relation`, when known.
    fn null_fraction(&self, _relation: &str, _column: &str) -> Option<f64> {
        None
    }
}

/// How much optimization to apply to execution plans.
///
/// The rewriting itself (the Figure-8 algebra expression) is never
/// touched — all modes optimize the *executed* plan only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OptimizeMode {
    /// Execute rewritings verbatim.
    Off,
    /// Statistics-free rewrites: pushdown + pairwise join ordering.
    Heuristic,
    /// Full cost-based pass driven by the stats catalog.
    #[default]
    Cost,
}

impl OptimizeMode {
    /// Parses the CLI/server spelling (`off`, `heuristic`, `cost`).
    pub fn parse(text: &str) -> Option<OptimizeMode> {
        match text.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(OptimizeMode::Off),
            "heuristic" => Some(OptimizeMode::Heuristic),
            "cost" => Some(OptimizeMode::Cost),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            OptimizeMode::Off => "off",
            OptimizeMode::Heuristic => "heuristic",
            OptimizeMode::Cost => "cost",
        }
    }
}

impl std::fmt::Display for OptimizeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The optimizer; all rewrites are semantics-preserving.
pub struct Optimizer<'a> {
    stats: &'a dyn Statistics,
    /// Resolves relation schemas, needed to decide where predicates can
    /// sink and which scan columns are consumed.
    resolve: &'a dyn Fn(&str) -> Result<Schema, String>,
}

/// Pre-flight analysis of one inner-join region (see
/// [`Optimizer::analyze_region`]); its existence means reordering is safe.
struct RegionPrep {
    /// Estimated rows per unit.
    cards: Vec<usize>,
    /// Per join condition, the (left unit, right unit) it connects.
    edges: Vec<(usize, usize)>,
    /// The region's output schema in original unit order.
    original_schema: Schema,
}

impl<'a> Optimizer<'a> {
    pub fn new(
        stats: &'a dyn Statistics,
        resolve: &'a dyn Fn(&str) -> Result<Schema, String>,
    ) -> Self {
        Optimizer { stats, resolve }
    }

    /// Applies the full cost-based pass (the [`OptimizeMode::Cost`]
    /// pipeline).
    pub fn optimize(&self, plan: Plan) -> Plan {
        self.optimize_with(OptimizeMode::Cost, plan)
    }

    /// Applies the rewrites selected by `mode`.
    pub fn optimize_with(&self, mode: OptimizeMode, plan: Plan) -> Plan {
        match mode {
            OptimizeMode::Off => plan,
            OptimizeMode::Heuristic => {
                let plan = self.rewrite(plan);
                self.order_joins(plan)
            }
            OptimizeMode::Cost => {
                let plan = self.rewrite(plan);
                let plan = self.prune(plan, None);
                let plan = self.reorder(plan);
                self.dedup_branches(plan)
            }
        }
    }

    /// Predicate pushdown and union-arm simplification.
    fn rewrite(&self, plan: Plan) -> Plan {
        match plan {
            Plan::Filter { input, predicate } => {
                let input = self.rewrite(*input);
                self.push_filter(input, predicate)
            }
            Plan::Project { input, columns } => Plan::Project {
                input: Box::new(self.rewrite(*input)),
                columns,
            },
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => Plan::Join {
                kind,
                left: Box::new(self.rewrite(*left)),
                right: Box::new(self.rewrite(*right)),
                on,
            },
            Plan::Union { inputs } => {
                // Flatten nested unions: ∪(∪(a, b), c) → ∪(a, b, c). Arm
                // order is preserved, so results are unchanged, and the
                // widened top-level union gives the parallel executor one
                // flat set of branches to fan out.
                let mut flat = Vec::with_capacity(inputs.len());
                for input in inputs {
                    match self.rewrite(input) {
                        Plan::Union { inputs: nested } => flat.extend(nested),
                        other => flat.push(other),
                    }
                }
                Plan::union(flat)
            }
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(self.rewrite(*input)),
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(self.rewrite(*input)),
                keys,
            },
            Plan::Limit { input, count } => Plan::Limit {
                input: Box::new(self.rewrite(*input)),
                count,
            },
            leaf @ Plan::Scan { .. } => leaf,
        }
    }

    /// Sinks `predicate` as deep as its column references allow.
    fn push_filter(&self, input: Plan, predicate: Expr) -> Plan {
        match input {
            Plan::Union { inputs } => {
                // A filter over a union applies to every arm.
                Plan::union(
                    inputs
                        .into_iter()
                        .map(|arm| self.push_filter(arm, predicate.clone()))
                        .collect(),
                )
            }
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => {
                // Sink into whichever side covers all referenced columns.
                if self.covers(&left, &predicate) {
                    metrics::record_filter_pushed();
                    Plan::Join {
                        kind,
                        left: Box::new(self.push_filter(*left, predicate)),
                        right,
                        on,
                    }
                } else if self.covers(&right, &predicate) {
                    metrics::record_filter_pushed();
                    Plan::Join {
                        kind,
                        left,
                        right: Box::new(self.push_filter(*right, predicate)),
                        on,
                    }
                } else {
                    Plan::Join {
                        kind,
                        left,
                        right,
                        on,
                    }
                    .filter(predicate)
                }
            }
            other => other.filter(predicate),
        }
    }

    /// True when every column the predicate references resolves in the
    /// plan's output schema.
    fn covers(&self, plan: &Plan, predicate: &Expr) -> bool {
        let Ok(schema) = plan.schema_with(self.resolve) else {
            return false;
        };
        predicate
            .referenced_columns()
            .iter()
            .all(|column| schema.index_of(column).is_ok())
    }

    /// Projection pruning: narrows scans to the columns consumed above.
    ///
    /// `needed` is the set of column references the consumer requires;
    /// `None` means "everything" (no projection above has restarted the
    /// set). The set restarts at projections, widens through filters,
    /// joins and sorts by their own references, and resets to "everything"
    /// at distincts and unions — pruning below a `δ` would change which
    /// rows are duplicates, and union arms may disagree on names.
    fn prune(&self, plan: Plan, needed: Option<&[ColumnRef]>) -> Plan {
        match plan {
            Plan::Project { input, columns } => {
                let mut refs: Vec<ColumnRef> = Vec::new();
                for (expr, _) in &columns {
                    for column in expr.referenced_columns() {
                        if !refs.contains(column) {
                            refs.push(column.clone());
                        }
                    }
                }
                let input = self.prune(*input, Some(&refs));
                // A narrowing π the pass inserted on an earlier run looks
                // like an identity projection over the same columns; keep
                // only one so pruning is idempotent.
                let identity = columns
                    .iter()
                    .all(|(expr, out)| matches!(expr, Expr::Column(c) if c == out));
                let input = match input {
                    Plan::Project {
                        input: inner,
                        columns: inner_columns,
                    } if identity && inner_columns == columns => *inner,
                    other => other,
                };
                Plan::Project {
                    input: Box::new(input),
                    columns,
                }
            }
            Plan::Filter { input, predicate } => {
                let widened = needed.map(|base| {
                    let mut refs = base.to_vec();
                    for column in predicate.referenced_columns() {
                        if !refs.contains(column) {
                            refs.push(column.clone());
                        }
                    }
                    refs
                });
                Plan::Filter {
                    input: Box::new(self.prune(*input, widened.as_deref())),
                    predicate,
                }
            }
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => {
                let widened = needed.map(|base| {
                    let mut refs = base.to_vec();
                    for (l, r) in &on {
                        if !refs.contains(l) {
                            refs.push(l.clone());
                        }
                        if !refs.contains(r) {
                            refs.push(r.clone());
                        }
                    }
                    refs
                });
                Plan::Join {
                    kind,
                    left: Box::new(self.prune(*left, widened.as_deref())),
                    right: Box::new(self.prune(*right, widened.as_deref())),
                    on,
                }
            }
            Plan::Sort { input, keys } => {
                let widened = needed.map(|base| {
                    let mut refs = base.to_vec();
                    for (column, _) in &keys {
                        if !refs.contains(column) {
                            refs.push(column.clone());
                        }
                    }
                    refs
                });
                Plan::Sort {
                    input: Box::new(self.prune(*input, widened.as_deref())),
                    keys,
                }
            }
            Plan::Limit { input, count } => Plan::Limit {
                input: Box::new(self.prune(*input, needed)),
                count,
            },
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(self.prune(*input, None)),
            },
            Plan::Union { inputs } => Plan::Union {
                inputs: inputs
                    .into_iter()
                    .map(|arm| self.prune(arm, None))
                    .collect(),
            },
            Plan::Scan { relation } => {
                if let Some(needed) = needed {
                    if let Ok(schema) = (self.resolve)(&relation) {
                        let kept: Vec<ColumnRef> = schema
                            .columns()
                            .iter()
                            .filter(|column| needed.iter().any(|wanted| column.matches(wanted)))
                            .cloned()
                            .collect();
                        if !kept.is_empty() && kept.len() < schema.len() {
                            metrics::record_projection_pruned();
                            return Plan::Project {
                                input: Box::new(Plan::Scan { relation }),
                                columns: kept
                                    .into_iter()
                                    .map(|column| (Expr::Column(column.clone()), column))
                                    .collect(),
                            };
                        }
                    }
                }
                Plan::Scan { relation }
            }
        }
    }

    /// Greedy join-region reordering: within each maximal tree of inner
    /// joins, units (non-inner-join subtrees) are re-joined cheapest
    /// estimated join first, left-deep, with the smaller input on the
    /// right (the hash-join build side). Bails out — leaving the region
    /// untouched — whenever statistics are missing, a join condition
    /// cannot be attributed to exactly one unit per side, the region is
    /// not connected, or its schema has ambiguous columns.
    fn reorder(&self, plan: Plan) -> Plan {
        match plan {
            join @ Plan::Join {
                kind: JoinKind::Inner,
                ..
            } => self.reorder_region(join),
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => Plan::Join {
                kind,
                left: Box::new(self.reorder(*left)),
                right: Box::new(self.reorder(*right)),
                on,
            },
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(self.reorder(*input)),
                predicate,
            },
            Plan::Project { input, columns } => Plan::Project {
                input: Box::new(self.reorder(*input)),
                columns,
            },
            Plan::Union { inputs } => Plan::Union {
                inputs: inputs.into_iter().map(|arm| self.reorder(arm)).collect(),
            },
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(self.reorder(*input)),
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(self.reorder(*input)),
                keys,
            },
            Plan::Limit { input, count } => Plan::Limit {
                input: Box::new(self.reorder(*input)),
                count,
            },
            leaf @ Plan::Scan { .. } => leaf,
        }
    }

    /// Checks that the region rooted at `plan` (an inner join) can be
    /// safely reordered, returning the data the greedy pass needs.
    fn analyze_region(&self, plan: &Plan) -> Option<RegionPrep> {
        let mut units: Vec<&Plan> = Vec::new();
        let mut conds: Vec<&(ColumnRef, ColumnRef)> = Vec::new();
        region_refs(plan, &mut units, &mut conds);
        if units.len() < 2 || conds.is_empty() {
            return None;
        }
        let cards: Vec<usize> = units
            .iter()
            .map(|unit| self.estimate(unit))
            .collect::<Option<_>>()?;
        let schemas: Vec<Schema> = units
            .iter()
            .map(|unit| unit.schema_with(self.resolve).ok())
            .collect::<Option<_>>()?;
        // The restoring projection selects columns by reference, so every
        // region column must be qualified and unique.
        let mut seen = HashSet::new();
        for schema in &schemas {
            for column in schema.columns() {
                let relation = column.relation.as_ref()?;
                if !seen.insert((relation.clone(), column.name.clone())) {
                    return None;
                }
            }
        }
        let unit_relations: Vec<Vec<&str>> =
            units.iter().map(|unit| unit.scanned_relations()).collect();
        let mut edges = Vec::new();
        for (l, r) in &conds {
            let a = unit_of(&unit_relations, &schemas, l)?;
            let b = unit_of(&unit_relations, &schemas, r)?;
            if a == b {
                return None;
            }
            edges.push((a, b));
        }
        // Connectivity: every unit reachable from unit 0 over conditions.
        let mut reached = vec![false; units.len()];
        reached[0] = true;
        let mut frontier = vec![0usize];
        while let Some(at) = frontier.pop() {
            for &(a, b) in &edges {
                let next = if a == at {
                    b
                } else if b == at {
                    a
                } else {
                    continue;
                };
                if !reached[next] {
                    reached[next] = true;
                    frontier.push(next);
                }
            }
        }
        if reached.iter().any(|r| !r) {
            return None;
        }
        let mut original_schema = Schema::default();
        for schema in &schemas {
            original_schema = original_schema.concat(schema);
        }
        Some(RegionPrep {
            cards,
            edges,
            original_schema,
        })
    }

    /// Reorders one inner-join region (see [`Optimizer::reorder`]).
    fn reorder_region(&self, plan: Plan) -> Plan {
        let Some(prep) = self.analyze_region(&plan) else {
            // Not reorderable: keep the region's shape, but still visit
            // the subtrees hanging below it.
            let Plan::Join {
                kind,
                left,
                right,
                on,
            } = plan
            else {
                unreachable!("reorder_region is only called on joins");
            };
            return Plan::Join {
                kind,
                left: Box::new(self.reorder(*left)),
                right: Box::new(self.reorder(*right)),
                on,
            };
        };
        let mut units: Vec<Plan> = Vec::new();
        let mut conds: Vec<(ColumnRef, ColumnRef)> = Vec::new();
        split_region(plan, &mut units, &mut conds);
        let mut units: Vec<Option<Plan>> = units
            .into_iter()
            .map(|unit| Some(self.reorder(unit)))
            .collect();
        let n = units.len();
        let RegionPrep {
            cards,
            edges,
            original_schema,
        } = prep;
        let mut used = vec![false; conds.len()];
        let mut in_tree = vec![false; n];

        // Seed with the condition promising the cheapest two-way join.
        let mut best: Option<(usize, usize)> = None; // (cond index, cost)
        for (k, &(a, b)) in edges.iter().enumerate() {
            let cost = self.join_estimate(cards[a], cards[b], Some(&conds[k]));
            if best.is_none_or(|(_, best_cost)| cost < best_cost) {
                best = Some((k, cost));
            }
        }
        let (seed, mut tree_card) = best.expect("region has conditions");
        let (a, b) = edges[seed];
        // Smaller input on the right: that is the hash-join build side.
        let (left_unit, right_unit) = if cards[a] >= cards[b] { (a, b) } else { (b, a) };
        let mut on = Vec::new();
        for (k, &(x, y)) in edges.iter().enumerate() {
            if x == left_unit && y == right_unit {
                on.push(conds[k].clone());
                used[k] = true;
            } else if x == right_unit && y == left_unit {
                let (l, r) = conds[k].clone();
                on.push((r, l));
                used[k] = true;
            }
        }
        let mut tree = Plan::Join {
            kind: JoinKind::Inner,
            left: Box::new(units[left_unit].take().expect("unit consumed once")),
            right: Box::new(units[right_unit].take().expect("unit consumed once")),
            on,
        };
        in_tree[left_unit] = true;
        in_tree[right_unit] = true;
        let mut leaf_order = vec![left_unit, right_unit];

        // Grow: always attach the connected unit with the cheapest
        // estimated join against the current tree.
        while leaf_order.len() < n {
            let mut best: Option<(usize, usize)> = None; // (unit, cost)
            for (k, &(x, y)) in edges.iter().enumerate() {
                if used[k] || in_tree[x] == in_tree[y] {
                    continue;
                }
                let unit = if in_tree[x] { y } else { x };
                let cost = self.join_estimate(tree_card, cards[unit], Some(&conds[k]));
                if best.is_none_or(|(best_unit, best_cost)| {
                    cost < best_cost || (cost == best_cost && unit < best_unit)
                }) {
                    best = Some((unit, cost));
                }
            }
            let Some((unit, cost)) = best else {
                // Unreachable given the connectivity check; keep whatever
                // is built rather than panic in release.
                debug_assert!(false, "join region lost connectivity");
                break;
            };
            let unit_right = cards[unit] <= tree_card;
            let mut on = Vec::new();
            for (k, &(x, y)) in edges.iter().enumerate() {
                if used[k] {
                    continue;
                }
                let touches = (in_tree[x] && y == unit) || (in_tree[y] && x == unit);
                if !touches {
                    continue;
                }
                let (l, r) = conds[k].clone();
                let (tree_ref, unit_ref) = if y == unit { (l, r) } else { (r, l) };
                if unit_right {
                    on.push((tree_ref, unit_ref));
                } else {
                    on.push((unit_ref, tree_ref));
                }
                used[k] = true;
            }
            let attached = units[unit].take().expect("unit consumed once");
            tree = if unit_right {
                leaf_order.push(unit);
                Plan::Join {
                    kind: JoinKind::Inner,
                    left: Box::new(tree),
                    right: Box::new(attached),
                    on,
                }
            } else {
                leaf_order.insert(0, unit);
                Plan::Join {
                    kind: JoinKind::Inner,
                    left: Box::new(attached),
                    right: Box::new(tree),
                    on,
                }
            };
            in_tree[unit] = true;
            tree_card = cost;
        }

        // Conditions whose endpoints both entered the tree before the
        // condition was consumed (cycles) survive as equality filters.
        for (k, cond) in conds.iter().enumerate() {
            if !used[k] {
                let (l, r) = cond.clone();
                tree = tree.filter(Expr::Column(l).eq(Expr::Column(r)));
            }
        }

        // A changed leaf order permutes the join's output columns; restore
        // the original order with an identity projection so downstream
        // output is byte-identical.
        if leaf_order != (0..n).collect::<Vec<_>>() {
            metrics::record_join_reordered();
            tree = Plan::Project {
                input: Box::new(tree),
                columns: original_schema
                    .columns()
                    .iter()
                    .map(|column| (Expr::Column(column.clone()), column.clone()))
                    .collect(),
            };
        }
        tree
    }

    /// Drops duplicate union arms under a `δ` — set semantics make them
    /// redundant, and after canonical reordering previously distinct-
    /// looking joins often become structurally identical.
    fn dedup_branches(&self, plan: Plan) -> Plan {
        match plan {
            Plan::Distinct { input } => {
                let input = self.dedup_branches(*input);
                if let Plan::Union { inputs } = input {
                    let mut kept: Vec<(u64, Plan)> = Vec::new();
                    for arm in inputs {
                        let fingerprint = subtree_fingerprint(&arm);
                        if kept
                            .iter()
                            .any(|(seen, kept_arm)| *seen == fingerprint && kept_arm == &arm)
                        {
                            metrics::record_branch_deduped();
                        } else {
                            kept.push((fingerprint, arm));
                        }
                    }
                    Plan::Distinct {
                        input: Box::new(Plan::Union {
                            inputs: kept.into_iter().map(|(_, arm)| arm).collect(),
                        }),
                    }
                } else {
                    Plan::Distinct {
                        input: Box::new(input),
                    }
                }
            }
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(self.dedup_branches(*input)),
                predicate,
            },
            Plan::Project { input, columns } => Plan::Project {
                input: Box::new(self.dedup_branches(*input)),
                columns,
            },
            Plan::Join {
                kind,
                left,
                right,
                on,
            } => Plan::Join {
                kind,
                left: Box::new(self.dedup_branches(*left)),
                right: Box::new(self.dedup_branches(*right)),
                on,
            },
            Plan::Union { inputs } => Plan::Union {
                inputs: inputs
                    .into_iter()
                    .map(|arm| self.dedup_branches(arm))
                    .collect(),
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(self.dedup_branches(*input)),
                keys,
            },
            Plan::Limit { input, count } => Plan::Limit {
                input: Box::new(self.dedup_branches(*input)),
                count,
            },
            leaf @ Plan::Scan { .. } => leaf,
        }
    }

    /// Puts the smaller estimated input on the right of every inner join
    /// (the build side of our hash join). The heuristic-mode ordering
    /// pass; the cost pass orients joins while rebuilding regions instead.
    fn order_joins(&self, plan: Plan) -> Plan {
        match plan {
            Plan::Join {
                kind: JoinKind::Inner,
                left,
                right,
                on,
            } => {
                let left = self.order_joins(*left);
                let right = self.order_joins(*right);
                let left_rows = self.estimate(&left);
                let right_rows = self.estimate(&right);
                match (left_rows, right_rows) {
                    // Swap when the *left* is smaller: small side should be
                    // the build (right) side. Key pairs flip accordingly.
                    (Some(l), Some(r)) if l < r => {
                        metrics::record_join_reordered();
                        Plan::Join {
                            kind: JoinKind::Inner,
                            left: Box::new(right),
                            right: Box::new(left),
                            on: on.into_iter().map(|(a, b)| (b, a)).collect(),
                        }
                    }
                    _ => Plan::Join {
                        kind: JoinKind::Inner,
                        left: Box::new(left),
                        right: Box::new(right),
                        on,
                    },
                }
            }
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(self.order_joins(*input)),
                predicate,
            },
            Plan::Project { input, columns } => Plan::Project {
                input: Box::new(self.order_joins(*input)),
                columns,
            },
            Plan::Union { inputs } => {
                Plan::union(inputs.into_iter().map(|p| self.order_joins(p)).collect())
            }
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(self.order_joins(*input)),
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(self.order_joins(*input)),
                keys,
            },
            Plan::Limit { input, count } => Plan::Limit {
                input: Box::new(self.order_joins(*input)),
                count,
            },
            other => other,
        }
    }

    /// Estimated output cardinality of `plan`; `None` when a scanned
    /// relation has no statistics. Scans use the catalog; equality
    /// filters divide by the column's distinct count when profiled;
    /// joins divide the cross product by the larger join-key distinct
    /// count (System-R style), falling back to a tenth; unions add.
    pub fn estimate(&self, plan: &Plan) -> Option<usize> {
        match plan {
            Plan::Scan { relation } => self.stats.estimated_rows(relation),
            Plan::Filter { input, predicate } => {
                let rows = self.estimate(input)?;
                Some(self.filter_estimate(rows, predicate))
            }
            Plan::Project { input, .. } | Plan::Distinct { input } | Plan::Sort { input, .. } => {
                self.estimate(input)
            }
            Plan::Limit { input, count } => self.estimate(input).map(|n| n.min(*count)),
            Plan::Join {
                left, right, on, ..
            } => {
                let l = self.estimate(left)?;
                let r = self.estimate(right)?;
                Some(self.join_estimate(l, r, on.first()))
            }
            Plan::Union { inputs } => {
                let mut total = 0usize;
                for input in inputs {
                    total = total.saturating_add(self.estimate(input)?);
                }
                Some(total)
            }
        }
    }

    /// Selectivity of one predicate over `rows` input rows.
    fn filter_estimate(&self, rows: usize, predicate: &Expr) -> usize {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = predicate
        {
            let column = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(c)) => {
                    Some(c)
                }
                _ => None,
            };
            if let Some(column) = column {
                if let Some(distinct) = self.column_distinct(column) {
                    return (rows / distinct.max(1)).max(1);
                }
                return (rows / 3).max(1);
            }
        }
        (rows / 2).max(1)
    }

    /// Estimated size of an equi-join of `l` × `r` rows on `cond`.
    fn join_estimate(&self, l: usize, r: usize, cond: Option<&(ColumnRef, ColumnRef)>) -> usize {
        let distinct =
            cond.and_then(
                |(a, b)| match (self.column_distinct(a), self.column_distinct(b)) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (None, None) => None,
                },
            );
        match distinct {
            Some(d) => (l.saturating_mul(r) / d.max(1)).max(1),
            None => (l.saturating_mul(r) / 10).max(1),
        }
    }

    /// Distinct count of a qualified column, when profiled.
    fn column_distinct(&self, column: &ColumnRef) -> Option<usize> {
        let relation = column.relation.as_deref()?;
        self.stats.distinct_values(relation, &column.to_string())
    }
}

/// Splits a maximal inner-join tree into its units and conditions,
/// in-order (left subtree, node conditions, right subtree). Must traverse
/// identically to [`region_refs`].
fn split_region(plan: Plan, units: &mut Vec<Plan>, conds: &mut Vec<(ColumnRef, ColumnRef)>) {
    match plan {
        Plan::Join {
            kind: JoinKind::Inner,
            left,
            right,
            on,
        } => {
            split_region(*left, units, conds);
            conds.extend(on);
            split_region(*right, units, conds);
        }
        other => units.push(other),
    }
}

/// Borrowing twin of [`split_region`], for pre-flight analysis.
fn region_refs<'p>(
    plan: &'p Plan,
    units: &mut Vec<&'p Plan>,
    conds: &mut Vec<&'p (ColumnRef, ColumnRef)>,
) {
    match plan {
        Plan::Join {
            kind: JoinKind::Inner,
            left,
            right,
            on,
        } => {
            region_refs(left, units, conds);
            conds.extend(on.iter());
            region_refs(right, units, conds);
        }
        other => units.push(other),
    }
}

/// The unit index a join-condition endpoint belongs to: by relation
/// qualifier first, by schema resolution second; `None` when ambiguous.
fn unit_of(unit_relations: &[Vec<&str>], schemas: &[Schema], column: &ColumnRef) -> Option<usize> {
    if let Some(relation) = column.relation.as_deref() {
        let hits: Vec<usize> = unit_relations
            .iter()
            .enumerate()
            .filter(|(_, relations)| relations.contains(&relation))
            .map(|(i, _)| i)
            .collect();
        match hits.as_slice() {
            [index] => return Some(*index),
            [_, ..] => return None,
            [] => {}
        }
    }
    let hits: Vec<usize> = schemas
        .iter()
        .enumerate()
        .filter(|(_, schema)| schema.index_of(column).is_ok())
        .map(|(i, _)| i)
        .collect();
    match hits.as_slice() {
        [index] => Some(*index),
        _ => None,
    }
}

/// Renders `plan` as an indented one-line-per-operator tree, annotating
/// each node with its estimated (`est≈`) and, when the caller can supply
/// one, actual (`act=`) cardinality — the `explain` surface of the CLI
/// and the `/analyst/explain` route.
pub fn explain_tree(
    plan: &Plan,
    estimate: &dyn Fn(&Plan) -> Option<usize>,
    actual: &dyn Fn(&Plan) -> Option<usize>,
) -> String {
    let mut out = String::new();
    explain_node(plan, 0, estimate, actual, &mut out);
    out
}

fn explain_node(
    plan: &Plan,
    depth: usize,
    estimate: &dyn Fn(&Plan) -> Option<usize>,
    actual: &dyn Fn(&Plan) -> Option<usize>,
    out: &mut String,
) {
    let label = match plan {
        Plan::Scan { relation } => format!("scan {relation}"),
        Plan::Filter { predicate, .. } => format!("σ[{predicate}]"),
        Plan::Project { columns, .. } => {
            if columns.len() > 6 {
                format!("π[{} columns]", columns.len())
            } else {
                let cols: Vec<String> = columns
                    .iter()
                    .map(|(expr, name)| {
                        let rendered = expr.to_string();
                        if rendered == name.to_string() {
                            rendered
                        } else {
                            format!("{rendered}→{name}")
                        }
                    })
                    .collect();
                format!("π[{}]", cols.join(", "))
            }
        }
        Plan::Join { kind, on, .. } => {
            let symbol = match kind {
                JoinKind::Inner => "⋈",
                JoinKind::Left => "⟕",
            };
            let conditions: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
            format!("{symbol}[{}]", conditions.join(" ∧ "))
        }
        Plan::Union { inputs } => format!("∪ ({} arms)", inputs.len()),
        Plan::Distinct { .. } => "δ".to_string(),
        Plan::Sort { keys, .. } => format!("sort[{} keys]", keys.len()),
        Plan::Limit { count, .. } => format!("limit[{count}]"),
    };
    out.push_str(&"  ".repeat(depth));
    out.push_str(&label);
    match (estimate(plan), actual(plan)) {
        (Some(e), Some(a)) => out.push_str(&format!("  est≈{e} act={a}")),
        (Some(e), None) => out.push_str(&format!("  est≈{e}")),
        (None, Some(a)) => out.push_str(&format!("  est≈? act={a}")),
        (None, None) => {}
    }
    out.push('\n');
    match plan {
        Plan::Scan { .. } => {}
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => explain_node(input, depth + 1, estimate, actual, out),
        Plan::Join { left, right, .. } => {
            explain_node(left, depth + 1, estimate, actual, out);
            explain_node(right, depth + 1, estimate, actual, out);
        }
        Plan::Union { inputs } => {
            for input in inputs {
                explain_node(input, depth + 1, estimate, actual, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRef;
    use std::collections::HashMap;

    struct MapStats(HashMap<String, usize>);

    impl Statistics for MapStats {
        fn estimated_rows(&self, relation: &str) -> Option<usize> {
            self.0.get(relation).copied()
        }
    }

    /// Statistics that know nothing (the old `NoStatistics`).
    struct NoStats;

    impl Statistics for NoStats {
        fn estimated_rows(&self, _relation: &str) -> Option<usize> {
            None
        }
    }

    /// Row counts plus per-column distincts.
    struct FullStats {
        rows: HashMap<String, usize>,
        distinct: HashMap<(String, String), usize>,
    }

    impl Statistics for FullStats {
        fn estimated_rows(&self, relation: &str) -> Option<usize> {
            self.rows.get(relation).copied()
        }
        fn distinct_values(&self, relation: &str, column: &str) -> Option<usize> {
            self.distinct
                .get(&(relation.to_string(), column.to_string()))
                .copied()
        }
    }

    fn resolve(name: &str) -> Result<Schema, String> {
        Ok(match name {
            "w1" => Schema::qualified("w1", ["id", "pName", "teamId"]),
            "w2" => Schema::qualified("w2", ["id", "name"]),
            other => return Err(format!("unknown {other}")),
        })
    }

    fn join_plan() -> Plan {
        Plan::scan("w1").join(
            Plan::scan("w2"),
            vec![(
                ColumnRef::qualified("w1", "teamId"),
                ColumnRef::qualified("w2", "id"),
            )],
        )
    }

    #[test]
    fn mode_parses_and_round_trips() {
        assert_eq!(OptimizeMode::parse("off"), Some(OptimizeMode::Off));
        assert_eq!(
            OptimizeMode::parse("Heuristic"),
            Some(OptimizeMode::Heuristic)
        );
        assert_eq!(OptimizeMode::parse("cost"), Some(OptimizeMode::Cost));
        assert_eq!(OptimizeMode::parse("fast"), None);
        assert_eq!(OptimizeMode::default(), OptimizeMode::Cost);
        assert_eq!(OptimizeMode::Cost.to_string(), "cost");
    }

    #[test]
    fn off_mode_is_identity() {
        let plan = join_plan().filter(Expr::col("w1.pName").eq(Expr::lit("Messi")));
        let optimizer = Optimizer::new(&NoStats, &resolve);
        assert_eq!(
            optimizer.optimize_with(OptimizeMode::Off, plan.clone()),
            plan
        );
    }

    #[test]
    fn filter_sinks_below_join() {
        let plan = join_plan().filter(Expr::col("w1.pName").eq(Expr::lit("Messi")));
        let optimizer = Optimizer::new(&NoStats, &resolve);
        let optimized = optimizer.optimize(plan);
        let rendered = optimized.to_string();
        // The σ must appear inside the join, applied to w1.
        assert!(
            rendered.contains("σ[w1.pName = 'Messi'](w1)"),
            "got {rendered}"
        );
    }

    #[test]
    fn filter_over_union_distributes() {
        let plan = Plan::union(vec![Plan::scan("w1"), Plan::scan("w1")])
            .filter(Expr::col("w1.id").eq(Expr::lit(1i64)));
        let optimizer = Optimizer::new(&NoStats, &resolve);
        let rendered = optimizer.optimize(plan).to_string();
        assert_eq!(rendered.matches("σ[").count(), 2, "got {rendered}");
    }

    #[test]
    fn nested_unions_flatten_in_arm_order() {
        let plan = Plan::union(vec![
            Plan::union(vec![Plan::scan("w1"), Plan::scan("w2")]),
            Plan::scan("w1"),
        ]);
        let optimizer = Optimizer::new(&NoStats, &resolve);
        match optimizer.optimize(plan) {
            Plan::Union { inputs } => {
                let arms: Vec<String> = inputs.iter().map(Plan::to_string).collect();
                assert_eq!(arms, ["w1", "w2", "w1"]);
            }
            other => panic!("expected a flat union, got {other}"),
        }
    }

    #[test]
    fn cross_side_predicate_stays_above_join() {
        let plan = join_plan().filter(Expr::col("w1.teamId").eq(Expr::col("w2.id")));
        let optimizer = Optimizer::new(&NoStats, &resolve);
        let rendered = optimizer.optimize(plan).to_string();
        assert!(rendered.starts_with("σ["), "got {rendered}");
    }

    #[test]
    fn join_ordering_puts_small_side_right() {
        let stats = MapStats(HashMap::from([
            ("w1".to_string(), 1_000_000),
            ("w2".to_string(), 10),
        ]));
        let optimizer = Optimizer::new(&stats, &resolve);
        // w2 is already right (small): no swap.
        let rendered = optimizer.optimize(join_plan()).to_string();
        assert!(
            rendered.contains("(w1 ⋈[w1.teamId=w2.id] w2)"),
            "got {rendered}"
        );

        // Flip statistics: now w1 is small and should move right.
        let stats = MapStats(HashMap::from([
            ("w1".to_string(), 10),
            ("w2".to_string(), 1_000_000),
        ]));
        let optimizer = Optimizer::new(&stats, &resolve);
        let rendered = optimizer.optimize(join_plan()).to_string();
        assert!(
            rendered.contains("(w2 ⋈[w2.id=w1.teamId] w1)"),
            "got {rendered}"
        );
    }

    #[test]
    fn heuristic_mode_swaps_pairwise() {
        let stats = MapStats(HashMap::from([
            ("w1".to_string(), 10),
            ("w2".to_string(), 1_000_000),
        ]));
        let optimizer = Optimizer::new(&stats, &resolve);
        let rendered = optimizer
            .optimize_with(OptimizeMode::Heuristic, join_plan())
            .to_string();
        assert_eq!(rendered, "(w2 ⋈[w2.id=w1.teamId] w1)");
    }

    fn resolve3(name: &str) -> Result<Schema, String> {
        Ok(match name {
            "w1" => Schema::qualified("w1", ["id", "a", "t2"]),
            "w2" => Schema::qualified("w2", ["id", "b", "t3"]),
            "w3" => Schema::qualified("w3", ["id", "c"]),
            other => return Err(format!("unknown {other}")),
        })
    }

    fn chain_plan() -> Plan {
        Plan::scan("w1")
            .join(
                Plan::scan("w2"),
                vec![(
                    ColumnRef::qualified("w1", "t2"),
                    ColumnRef::qualified("w2", "id"),
                )],
            )
            .join(
                Plan::scan("w3"),
                vec![(
                    ColumnRef::qualified("w2", "t3"),
                    ColumnRef::qualified("w3", "id"),
                )],
            )
    }

    #[test]
    fn region_reordering_starts_with_cheapest_join() {
        // w2 ⋈ w3 is far cheaper than w1 ⋈ w2, so it becomes the seed;
        // w1 then joins the (small) tree from the left. Leaf order is
        // unchanged, so no restoring projection appears.
        let stats = MapStats(HashMap::from([
            ("w1".to_string(), 1000),
            ("w2".to_string(), 500),
            ("w3".to_string(), 2),
        ]));
        let optimizer = Optimizer::new(&stats, &resolve3);
        let rendered = optimizer.optimize(chain_plan()).to_string();
        assert_eq!(
            rendered, "(w1 ⋈[w1.t2=w2.id] (w2 ⋈[w2.t3=w3.id] w3))",
            "expected right-deep rebuild"
        );
    }

    #[test]
    fn region_reordering_restores_column_order_with_a_projection() {
        // w1 is tiny so it should end up on a build side, moving it out of
        // leaf position 0 — which must trigger the restoring projection.
        let stats = MapStats(HashMap::from([
            ("w1".to_string(), 2),
            ("w2".to_string(), 1000),
            ("w3".to_string(), 500),
        ]));
        let optimizer = Optimizer::new(&stats, &resolve3);
        let optimized = optimizer.optimize(chain_plan());
        let rendered = optimized.to_string();
        assert!(
            rendered.starts_with("π[w1.id, w1.a, w1.t2, w2.id, w2.b, w2.t3, w3.id, w3.c]("),
            "got {rendered}"
        );
        assert!(
            rendered.contains("(w2 ⋈[w2.id=w1.t2] w1)"),
            "got {rendered}"
        );
        // The restored schema matches the unoptimized plan's schema.
        let original = chain_plan().schema_with(&resolve3).unwrap();
        assert_eq!(optimized.schema_with(&resolve3).unwrap(), original);
    }

    #[test]
    fn distinct_aware_join_estimates_pick_the_selective_key() {
        let stats = FullStats {
            rows: HashMap::from([("w1".to_string(), 1000), ("w2".to_string(), 1000)]),
            distinct: HashMap::from([
                (("w1".to_string(), "w1.teamId".to_string()), 10),
                (("w2".to_string(), "w2.id".to_string()), 1000),
            ]),
        };
        let optimizer = Optimizer::new(&stats, &resolve);
        // 1000 × 1000 / max(10, 1000) = 1000, not the /10 fallback 100000.
        assert_eq!(optimizer.estimate(&join_plan()), Some(1000));
    }

    #[test]
    fn projection_pruning_narrows_scans() {
        let plan = join_plan().project_named(&[("w2.name", "team")]);
        let optimizer = Optimizer::new(&NoStats, &resolve);
        let rendered = optimizer.optimize(plan).to_string();
        // w1 keeps only its join key; w2 keeps the key and the projected
        // name (all other columns), so only w1 gets a pruning π.
        assert!(rendered.contains("π[w1.teamId](w1)"), "got {rendered}");
        assert!(
            !rendered.contains("π[w2.id, w2.name](w2)"),
            "got {rendered}"
        );
    }

    #[test]
    fn pruning_stops_at_distinct() {
        // δ below the projection consumes full rows: pruning must not
        // narrow the scan, or duplicate elimination would change.
        let plan = Plan::scan("w1")
            .distinct()
            .project_named(&[("w1.pName", "name")]);
        let optimizer = Optimizer::new(&NoStats, &resolve);
        let rendered = optimizer.optimize(plan).to_string();
        assert_eq!(rendered, "π[w1.pName→name](δ(w1))");
    }

    #[test]
    fn duplicate_union_arms_dedup_under_distinct() {
        let arm = || join_plan().project_named(&[("w1.pName", "p")]);
        let other = Plan::scan("w1").project_named(&[("w1.pName", "p")]);
        let plan = Plan::union(vec![arm(), other, arm()]).distinct();
        let optimizer = Optimizer::new(&NoStats, &resolve);
        match optimizer.optimize(plan) {
            Plan::Distinct { input } => match *input {
                Plan::Union { inputs } => assert_eq!(inputs.len(), 2),
                other => panic!("expected union, got {other}"),
            },
            other => panic!("expected distinct, got {other}"),
        }
        // Without δ the union keeps bag semantics: no dedup.
        let plan = Plan::union(vec![arm(), arm()]);
        match optimizer.optimize(plan) {
            Plan::Union { inputs } => assert_eq!(inputs.len(), 2),
            other => panic!("expected union, got {other}"),
        }
    }

    #[test]
    fn explain_tree_annotates_cardinalities() {
        let stats = MapStats(HashMap::from([
            ("w1".to_string(), 100),
            ("w2".to_string(), 10),
        ]));
        let optimizer = Optimizer::new(&stats, &resolve);
        let plan = join_plan();
        let text = explain_tree(&plan, &|p| optimizer.estimate(p), &|_| None);
        assert!(text.contains("⋈[w1.teamId=w2.id]  est≈100"), "got {text}");
        assert!(text.contains("\n  scan w1  est≈100\n"), "got {text}");
        assert!(text.contains("\n  scan w2  est≈10\n"), "got {text}");
        let with_actuals = explain_tree(&plan, &|p| optimizer.estimate(p), &|_| Some(7));
        assert!(with_actuals.contains("act=7"), "got {with_actuals}");
    }

    #[test]
    fn optimization_preserves_results() {
        use crate::executor::{Executor, MemoryCatalog};
        use crate::table::Table;
        use crate::value::Value;

        let mut catalog = MemoryCatalog::new();
        catalog.register(
            "w1",
            Table::new(
                Schema::qualified("w1", ["id", "pName", "teamId"]),
                vec![
                    vec![Value::Int(1), Value::str("Messi"), Value::Int(25)],
                    vec![Value::Int(2), Value::str("Lewandowski"), Value::Int(27)],
                ],
            )
            .unwrap(),
        );
        catalog.register(
            "w2",
            Table::new(
                Schema::qualified("w2", ["id", "name"]),
                vec![
                    vec![Value::Int(25), Value::str("FC Barcelona")],
                    vec![Value::Int(27), Value::str("Bayern Munich")],
                ],
            )
            .unwrap(),
        );
        let plan = join_plan()
            .filter(Expr::col("w1.pName").eq(Expr::lit("Messi")))
            .project_named(&[("w2.name", "team")]);
        let executor = Executor::new(&catalog);
        let baseline = executor.run(&plan).unwrap().sorted();
        // All three modes, with and without statistics, agree bytewise.
        for stats in [
            &MapStats(HashMap::from([
                ("w1".to_string(), 2),
                ("w2".to_string(), 2),
            ])) as &dyn Statistics,
            &NoStats as &dyn Statistics,
        ] {
            let optimizer = Optimizer::new(stats, &resolve);
            for mode in [
                OptimizeMode::Off,
                OptimizeMode::Heuristic,
                OptimizeMode::Cost,
            ] {
                let optimized = optimizer.optimize_with(mode, plan.clone());
                let improved = executor.run(&optimized).unwrap().sorted();
                assert_eq!(baseline, improved, "mode {mode}");
            }
        }
        assert_eq!(baseline.rows()[0][0], Value::str("FC Barcelona"));
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `Criterion::benchmark_group` /
//! `bench_function`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock loop (short warm-up, then timed
//! batches) printing mean time per iteration and, when a throughput is
//! declared, elements per second. No statistics, plots or HTML reports —
//! the numbers are comparable across runs on the same machine, which is
//! what the repo's baselines need. `--quick` and other CLI flags are
//! accepted and ignored.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque black box (re-export shape of `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs closures and measures mean wall-clock time per iteration.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_nanos: f64,
}

impl Bencher {
    /// Times `routine`: short warm-up, then batches until the measurement
    /// budget (~120 ms) is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, at most ~20 ms.
        let warmup_deadline = Instant::now() + Duration::from_millis(20);
        let start = Instant::now();
        black_box(routine());
        let mut probe = start.elapsed().max(Duration::from_nanos(1));
        while Instant::now() < warmup_deadline && probe < Duration::from_millis(20) {
            let start = Instant::now();
            black_box(routine());
            probe = start.elapsed().max(Duration::from_nanos(1));
        }

        // Measurement: batches sized so one batch is ~10 ms.
        let batch = (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 10_000);
        let budget = Duration::from_millis(120);
        let mut iterations: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iterations += batch as u64;
        }
        self.mean_nanos = elapsed.as_nanos() as f64 / iterations as f64;
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in sizes runs by time.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { mean_nanos: 0.0 };
        f(&mut bencher);
        self.report(&id, bencher.mean_nanos);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { mean_nanos: 0.0 };
        f(&mut bencher, input);
        self.report(&id, bencher.mean_nanos);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, mean_nanos: f64) {
        let label = format!("{}/{}", self.name, id);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_second = n as f64 / (mean_nanos / 1e9);
                println!(
                    "{label:<50} time: {:>12}   thrpt: {per_second:>12.0} elem/s",
                    format_nanos(mean_nanos)
                );
            }
            Some(Throughput::Bytes(n)) => {
                let per_second = n as f64 / (mean_nanos / 1e9);
                println!(
                    "{label:<50} time: {:>12}   thrpt: {:>9.2} MiB/s",
                    format_nanos(mean_nanos),
                    per_second / (1024.0 * 1024.0)
                );
            }
            None => {
                println!("{label:<50} time: {:>12}", format_nanos(mean_nanos));
            }
        }
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores CLI flags (`--quick`, `--bench`, filters …).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(BenchmarkId::from(""), f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn id_renderings() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

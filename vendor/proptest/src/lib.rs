//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest's API its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`,
//! range / tuple / string-pattern / collection strategies, `Just`, `any`,
//! and the `proptest!`, `prop_oneof!`, `prop_assert!*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimised;
//! * **deterministic RNG** — cases derive from a fixed per-test seed, so
//!   runs are reproducible without a `proptest-regressions` file (existing
//!   regression files are ignored);
//! * string patterns support the regex subset the tests use (character
//!   classes, `{m,n}`/`*`/`+`/`?` quantifiers, groups, alternation).

pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (e.g. the test name).
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for byte in label.bytes() {
                state ^= byte as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A test-case failure (or rejection) carried out of the test body.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type of a generated test body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A value generator. Unlike real proptest there is no value tree and
    /// therefore no shrinking: a strategy is just a deterministic function
    /// of the RNG state.
    pub trait Strategy: 'static {
        type Value: 'static;

        /// Generates one value.
        fn gen_one(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.gen_one(rng)))
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized,
            O: 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| f(inner.gen_one(rng))))
        }

        /// Recursive strategies: the closure receives the strategy for the
        /// previous depth and wraps it one level deeper. This stand-in
        /// unrolls the recursion `depth` times instead of generating with a
        /// size budget.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            S: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat).boxed();
            }
            strat
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> BoxedStrategy<T> {
        pub fn new(generate: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy(Rc::new(generate))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_one(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;

        fn gen_one(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A weighted union of strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T: 'static> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            Union { arms }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;

        fn gen_one(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut draw = rng.below(total);
            for (weight, strat) in &self.arms {
                if draw < *weight as u64 {
                    return strat.gen_one(rng);
                }
                draw -= *weight as u64;
            }
            unreachable!("weighted draw out of range")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn gen_one(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn gen_one(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// String patterns: a `&str` literal is a strategy generating strings
    /// matching the regex subset described in [`crate::string`].
    impl Strategy for &'static str {
        type Value = String;

        fn gen_one(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_one(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::BoxedStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + 'static {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `A` (`any::<i64>()` etc.).
    pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
        BoxedStrategy::new(A::arbitrary)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly printable ASCII with an occasional wider scalar.
            if rng.below(8) == 0 {
                char::from_u32(0x00A0 + (rng.below(0x2000)) as u32).unwrap_or('�')
            } else {
                (b' ' + rng.below(95) as u8) as char
            }
        }
    }
}

pub mod collection {
    use std::collections::BTreeMap;

    use crate::strategy::{BoxedStrategy, Strategy};

    /// Sizes accepted by the collection strategies.
    pub trait SizeBounds {
        /// `(min, max)` inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeBounds for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// `Vec` strategy with lengths in `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl SizeBounds + 'static,
    ) -> BoxedStrategy<Vec<S::Value>> {
        let (min, max) = size.bounds();
        let element = element.boxed();
        BoxedStrategy::new(move |rng| {
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len).map(|_| element.gen_one(rng)).collect()
        })
    }

    /// `BTreeMap` strategy with sizes in `size` (duplicate keys permitting:
    /// the map may come out smaller than drawn when the key domain is tiny).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl SizeBounds + 'static,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        let (min, max) = size.bounds();
        let keys = keys.boxed();
        let values = values.boxed();
        BoxedStrategy::new(move |rng| {
            let target = min + rng.below((max - min + 1) as u64) as usize;
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < target && attempts < target * 4 + 8 {
                map.insert(keys.gen_one(rng), values.gen_one(rng));
                attempts += 1;
            }
            map
        })
    }
}

pub mod string {
    //! Generation for the regex subset used as string strategies.
    //!
    //! Supported: literal characters, `[...]` character classes (ranges,
    //! escapes, leading-`^` negation over printable ASCII), `(...)` groups,
    //! `|` alternation, `.` (printable ASCII), and the quantifiers `{n}`,
    //! `{m,n}`, `*` (0–4), `+` (1–4), `?`.

    use crate::test_runner::TestRng;

    #[derive(Clone, Debug)]
    enum Node {
        Literal(char),
        Class { options: Vec<char>, negated: bool },
        Group(Vec<Vec<Node>>),
        AnyPrintable,
        Repeat(Box<Node>, usize, usize),
    }

    /// Generates one string matching `pattern`. Panics on syntax this
    /// subset does not understand — that is a test-authoring error.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let (alternatives, consumed) = parse_alternation(&chars, 0, false);
        assert!(
            consumed == chars.len(),
            "unsupported regex pattern: {pattern:?}"
        );
        let mut out = String::new();
        emit_alternation(&alternatives, rng, &mut out);
        out
    }

    fn parse_alternation(
        chars: &[char],
        mut pos: usize,
        in_group: bool,
    ) -> (Vec<Vec<Node>>, usize) {
        let mut alternatives = Vec::new();
        let mut current = Vec::new();
        while pos < chars.len() {
            match chars[pos] {
                ')' if in_group => break,
                '|' => {
                    alternatives.push(std::mem::take(&mut current));
                    pos += 1;
                }
                _ => {
                    let (node, next) = parse_item(chars, pos, in_group);
                    current.push(node);
                    pos = next;
                }
            }
        }
        alternatives.push(current);
        (alternatives, pos)
    }

    fn parse_item(chars: &[char], pos: usize, in_group: bool) -> (Node, usize) {
        let (atom, next) = parse_atom(chars, pos, in_group);
        if next < chars.len() {
            match chars[next] {
                '{' => {
                    let close = chars[next..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|i| next + i)
                        .expect("unterminated {...} quantifier");
                    let spec: String = chars[next + 1..close].iter().collect();
                    let (min, max) = match spec.split_once(',') {
                        Some((m, n)) => (
                            m.parse().expect("bad quantifier"),
                            n.parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = spec.parse().expect("bad quantifier");
                            (n, n)
                        }
                    };
                    return (Node::Repeat(Box::new(atom), min, max), close + 1);
                }
                '*' => return (Node::Repeat(Box::new(atom), 0, 4), next + 1),
                '+' => return (Node::Repeat(Box::new(atom), 1, 4), next + 1),
                '?' => return (Node::Repeat(Box::new(atom), 0, 1), next + 1),
                _ => {}
            }
        }
        (atom, next)
    }

    fn parse_atom(chars: &[char], pos: usize, _in_group: bool) -> (Node, usize) {
        match chars[pos] {
            '(' => {
                let (alternatives, end) = parse_alternation(chars, pos + 1, true);
                assert!(
                    end < chars.len() && chars[end] == ')',
                    "unterminated group in pattern"
                );
                (Node::Group(alternatives), end + 1)
            }
            '[' => parse_class(chars, pos + 1),
            '.' => (Node::AnyPrintable, pos + 1),
            '\\' => (
                Node::Literal(*chars.get(pos + 1).expect("dangling escape")),
                pos + 2,
            ),
            c => (Node::Literal(c), pos + 1),
        }
    }

    fn parse_class(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut options = Vec::new();
        let mut negated = false;
        if chars.get(pos) == Some(&'^') {
            negated = true;
            pos += 1;
        }
        let mut first = true;
        while pos < chars.len() && (chars[pos] != ']' || first) {
            first = false;
            let c = if chars[pos] == '\\' {
                pos += 1;
                *chars.get(pos).expect("dangling escape in class")
            } else {
                chars[pos]
            };
            // Range `a-z` (a `-` at the end of the class is a literal).
            if chars.get(pos + 1) == Some(&'-') && chars.get(pos + 2).is_some_and(|&n| n != ']') {
                let hi = chars[pos + 2];
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        options.push(ch);
                    }
                }
                pos += 3;
            } else {
                options.push(c);
                pos += 1;
            }
        }
        assert!(chars.get(pos) == Some(&']'), "unterminated character class");
        (Node::Class { options, negated }, pos + 1)
    }

    fn emit_alternation(alternatives: &[Vec<Node>], rng: &mut TestRng, out: &mut String) {
        let pick = rng.below(alternatives.len() as u64) as usize;
        for node in &alternatives[pick] {
            emit(node, rng, out);
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::AnyPrintable => out.push((b' ' + rng.below(95) as u8) as char),
            Node::Class { options, negated } => {
                if *negated {
                    loop {
                        let candidate = (b' ' + rng.below(95) as u8) as char;
                        if !options.contains(&candidate) {
                            out.push(candidate);
                            break;
                        }
                    }
                } else {
                    assert!(!options.is_empty(), "empty character class");
                    out.push(options[rng.below(options.len() as u64) as usize]);
                }
            }
            Node::Group(alternatives) => emit_alternation(alternatives, rng, out),
            Node::Repeat(inner, min, max) => {
                let count = *min + rng.below((*max - *min + 1) as u64) as usize;
                for _ in 0..count {
                    emit(inner, rng, out);
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs reported) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)*);
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    };
}

/// A (possibly weighted) union of strategies over the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` generated cases; the body may
/// use `prop_assert!*`, `?` on `TestCaseResult`, and `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_internal! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_internal! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_internal {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let combined = ($($strategy,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let ($($parm,)+) = $crate::strategy::Strategy::gen_one(&combined, &mut rng);
                let inputs = format!(
                    concat!($(stringify!($parm), " = {:?}; ",)+),
                    $(&$parm,)+
                );
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed at case {}/{}:\n{}\ninputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg,
                            inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::deterministic("shape");
        for _ in 0..200 {
            let s = crate::string::generate("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = crate::string::generate("x(ab|cd)?[0-9]{2}", &mut rng);
            assert!(t.starts_with('x'), "{t:?}");
            assert!(t.ends_with(|c: char| c.is_ascii_digit()), "{t:?}");
        }
    }

    #[test]
    fn unicode_classes_generate() {
        let mut rng = TestRng::deterministic("unicode");
        let s = crate::string::generate("[ -~àé😀]{0,10}", &mut rng);
        assert!(s.chars().count() <= 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(pair in (0usize..10, 1i64..5), flag in any::<bool>()) {
            prop_assert!(pair.0 < 10);
            prop_assert!((1..5).contains(&pair.1));
            let _ = flag;
        }

        #[test]
        fn collections_respect_sizes(
            items in crate::collection::vec(0u8..4, 2..6),
            map in crate::collection::btree_map("[a-z]{1,3}", 0i64..9, 0..4),
        ) {
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(map.len() < 4);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            2 => (0u8..10).prop_map(i64::from),
            1 => Just(-1i64),
        ]) {
            prop_assert!(v == -1 || (0..10).contains(&v));
        }
    }
}

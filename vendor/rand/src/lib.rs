//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`RngCore`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`]. The generator is SplitMix64 — statistically fine for
//! synthetic-data generation, *not* cryptographic. Deterministic for a
//! given seed, which is what the workload generators rely on.

/// A source of random 32/64-bit values.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` or `[low, high]`.
    fn sample_between(
        low: Self,
        high: Self,
        inclusive: bool,
        draw: &mut dyn FnMut() -> u64,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between(
                low: Self,
                high: Self,
                inclusive: bool,
                draw: &mut dyn FnMut() -> u64,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let offset = (draw() as u128) % span;
                (low as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_between(
        low: Self,
        high: Self,
        _inclusive: bool,
        draw: &mut dyn FnMut() -> u64,
    ) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = (draw() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Ranges [`Rng::gen_range`] can sample from. The single blanket impl per
/// range shape keeps type inference identical to the real crate (the range
/// element type *is* the produced type).
pub trait SampleRange<T> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, draw)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(start, end, true, draw)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (modulo bias is acceptable here).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 in this stand-in.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let n: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

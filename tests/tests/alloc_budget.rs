//! Allocation-budget regression test for the zero-copy data plane.
//!
//! Re-running a warmed E6 query (the paper's 4-branch version-crossing UCQ)
//! must stay under a recorded heap-allocation ceiling. Interned strings,
//! shared batches, and selection vectors exist precisely to keep per-query
//! allocations proportional to result size rather than to (rows × string
//! columns); this test pins that property so a regression that quietly
//! reintroduces per-cell `String` clones fails CI instead of only showing
//! up in benchmarks.
//!
//! The counting allocator wraps [`System`] and lives in its own integration
//! test binary so the count reflects only this file's work.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mdm_core::synthetic::{chain_walk, mdm_from_synthetic};
use mdm_relational::{ExecOptions, Executor};
use mdm_wrappers::workload::{build, WorkloadConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap-allocation ceiling for one warmed sequential E6 execution at 10k
/// rows per wrapper. Measured 84,468 allocations on the recording machine
/// under the columnar plane (≈2 per result row — operators move 16-byte
/// term ids and only the surviving result rows decode back into `Value`s;
/// the row plane spent ~882k here, ≈22 per result row). The ceiling leaves
/// ~10% headroom for stdlib drift while still catching a regression that
/// silently falls back to row-at-a-time decode — that alone costs one
/// allocation per string cell per operator, i.e. hundreds of thousands at
/// this scale.
const E6_10K_ALLOC_CEILING: u64 = 93_000;

#[test]
fn warmed_e6_execution_stays_under_allocation_budget() {
    // The E6 shape from EXPERIMENTS.md: 2 chained concepts × 2 coexisting
    // versions per source → a 4-branch UCQ (mdm_bench::mixed_system(2, 2, n)
    // rebuilt here because the test crate does not depend on mdm-bench).
    let config = WorkloadConfig {
        concepts: 2,
        features_per_concept: 3,
        versions_per_source: 2,
        rows_per_wrapper: 10_000,
        seed: 42,
    };
    let eco = build(&config);
    let mdm = mdm_from_synthetic(&eco).expect("synthetic system builds");
    let walk = chain_walk(&eco, 2);
    let rewriting = mdm.rewrite(&walk).expect("rewrites");

    // Warm run: parses wrapper payloads, fills memoized row caches, interns
    // the string domain. Sequential options keep the count deterministic.
    let executor = Executor::with_options(mdm.catalog(), ExecOptions::sequential());
    let warm = executor.run(&rewriting.plan).expect("warm run executes");
    assert!(!warm.is_empty(), "E6 must produce rows");

    // Measured run: the steady-state query path the server actually serves.
    let before = allocations();
    let table = executor
        .run(&rewriting.plan)
        .expect("measured run executes");
    let spent = allocations() - before;

    assert_eq!(table.len(), warm.len(), "warm and measured runs agree");
    eprintln!("warmed E6 @10k spent {spent} allocations (ceiling {E6_10K_ALLOC_CEILING})");
    assert!(
        spent <= E6_10K_ALLOC_CEILING,
        "warmed E6 @10k spent {spent} allocations, budget is {E6_10K_ALLOC_CEILING}"
    );
}

//! End-to-end integration: the full steward → analyst lifecycle over the
//! paper's motivational use case, asserting the regenerated artifacts of
//! Figures 5–8 and Table 1 (experiments E1–E7 of DESIGN.md).

use mdm_core::usecase;
use mdm_relational::schema::ColumnRef;
use mdm_wrappers::football;

#[test]
fn e3_global_graph_lists_figure5_elements() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let text = mdm.render_global_graph();
    for needle in [
        "concept ex:Player",
        "concept sc:SportsTeam",
        "concept ex:League",
        "concept ex:Country",
        "[id] ex:playerId",
        "[id] ex:teamId",
        "ex:playerName",
        "ex:teamName",
        "ex:Player --ex:hasTeam--> sc:SportsTeam",
        "sc:SportsTeam --ex:playsIn--> ex:League",
    ] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }
}

#[test]
fn e4_source_graph_lists_figure6_signatures() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let text = mdm.render_source_graph();
    assert!(text.contains("dataSource PlayersAPI"));
    assert!(text.contains("dataSource TeamsAPI"));
    // The exact signature of Figure 6 with its renames.
    assert!(text.contains("w1(id, pName, height, weight, score, foot, teamId)"));
    assert!(text.contains("w2(id, name, shortName)"));
}

#[test]
fn e5_mappings_show_figure7_contours() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let text = mdm.render_mappings();
    assert!(text.contains("named graph w1"));
    assert!(text.contains("named graph w2"));
    // w1's contour includes the relation and the team identifier (the
    // Figure 7 overlap on sc:SportsTeam / sc:identifier).
    assert!(text.contains("ex:Player ex:hasTeam sc:SportsTeam"));
    assert!(text.contains("sameAs: teamId ≡ ex:teamId"));
    assert!(text.contains("sameAs: pName ≡ ex:playerName"));
}

#[test]
fn e6_figure8_sparql_and_algebra() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let rewriting = mdm.rewrite(&usecase::figure8_walk()).unwrap();
    // SPARQL side of Figure 8.
    assert!(rewriting.sparql.contains("SELECT ?teamName ?playerName"));
    assert!(rewriting
        .sparql
        .contains("?Player ex:hasTeam ?SportsTeam ."));
    mdm_sparql::parse_query(&rewriting.sparql).expect("generated SPARQL parses");
    // Algebra side of Figure 8: a single CQ joining w1 and w2 on team id.
    assert_eq!(
        rewriting.algebra(),
        "δ(π[w2.name→ex:teamName, w1.pName→ex:playerName]((w2 ⋈[w2.id=w1.teamId] w1)))"
    );
}

#[test]
fn e7_table1_rows_come_out_of_the_federated_engine() {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).unwrap();
    usecase::register_players_v2(&mut mdm, &eco).unwrap();
    let answer = mdm.query(&usecase::figure8_walk()).unwrap();
    let teams = answer
        .table
        .column(&ColumnRef::bare("ex:teamName"))
        .unwrap()
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>();
    let players = answer
        .table
        .column(&ColumnRef::bare("ex:playerName"))
        .unwrap()
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>();
    let pairs: Vec<(String, String)> = teams.into_iter().zip(players).collect();
    // Table 1's three sample rows, exactly.
    for expected in [
        ("FC Barcelona", "Lionel Messi"),
        ("Bayern Munich", "Robert Lewandowski"),
        ("Manchester United", "Zlatan Ibrahimovic"),
    ] {
        assert!(
            pairs
                .iter()
                .any(|(t, p)| t == expected.0 && p == expected.1),
            "missing Table 1 row {expected:?} in {pairs:?}"
        );
    }
}

#[test]
fn e2_source_payloads_match_figure2_shapes() {
    let eco = football::build_default();
    // Players API serves JSON with the Figure 2 fields.
    let players = eco.players_api.release(1).unwrap();
    let value = players.parse().unwrap();
    let first = value.at(0).unwrap();
    for field in [
        "id",
        "name",
        "height",
        "weight",
        "rating",
        "preferred_foot",
        "team_id",
    ] {
        assert!(first.get(field).is_some(), "missing {field}");
    }
    // Teams API serves XML with id/name/shortName elements.
    let teams = eco.teams_api.release(1).unwrap();
    assert!(teams.body.starts_with("<teams>"));
    let value = teams.parse().unwrap();
    let team = value.get("team").unwrap().as_array().unwrap();
    assert!(team[0].get("id").is_some());
    assert!(team[0].get("shortName").is_some());
}

#[test]
fn analyst_errors_are_typed_and_actionable() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    // Unknown feature in the walk.
    let bad = mdm_core::Walk::new().feature(&usecase::ex("Player"), &usecase::ex("shoeSize"));
    let err = mdm.query(&bad).unwrap_err();
    assert_eq!(err.category(), "walk");
    // A mapped-but-uncovered feature (score exists only in v1's wrapper; it
    // IS covered, so use a fresh feature instead).
    let mut mdm2 = usecase::football_mdm(&eco).unwrap();
    mdm2.define_feature(&usecase::ex("Player"), &usecase::ex("birthday"))
        .unwrap();
    let uncovered = mdm_core::Walk::new().feature(&usecase::ex("Player"), &usecase::ex("birthday"));
    let err = mdm2.query(&uncovered).unwrap_err();
    assert_eq!(err.category(), "rewrite");
    assert!(err.message().contains("birthday"));
}

#[test]
fn snapshot_restore_preserves_query_semantics() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let restored = mdm_core::Mdm::restore_metadata(&mdm.snapshot()).unwrap();
    let a = mdm.rewrite(&usecase::figure8_walk()).unwrap();
    let b = restored.rewrite(&usecase::figure8_walk()).unwrap();
    assert_eq!(a.algebra(), b.algebra());
    assert_eq!(a.sparql, b.sparql);
}

//! Replication suite: WAL-shipping read replicas against a live primary.
//!
//! Two layers of evidence:
//!
//! * A property test that the **wire path** (snapshot + CRC-framed records
//!   through [`ReplicationBatch`] encode/decode, replayed via the journal
//!   apply path) reproduces, for ANY valid mutation script and ANY prefix
//!   length, a state byte-identical to an in-memory primary that executed
//!   the same prefix — same canonical snapshot, same epoch.
//! * Real-TCP integration: a primary with a durable journal, two
//!   [`ReplicaNode`]s bootstrapping over HTTP, convergence after a breaking
//!   release within one long-poll cycle, byte-identical analyst answers, a
//!   mid-stream disconnect/reconnect (severed through a TCP proxy), and the
//!   poison latch on a corrupt WAL record served by a hostile primary.
//!
//! Shared plumbing (mutation scripts, node helpers, the severable proxy,
//! the hostile primary) lives in `common`; the failover suite reuses it.

mod common;

use std::sync::atomic::Ordering;
use std::thread;
use std::time::{Duration, Instant};

use common::*;
use mdm_core::{FsyncPolicy, Mdm, MetaStore, MutationOp};
use mdm_replica::{ReplicaConfig, ReplicaNode};
use mdm_server::client;
use mdm_server::replication::ReplicaState;
use mdm_store::{ReplicationBatch, WalRecord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any prefix of the primary's WAL, shipped through the binary wire
    /// format, replays to a byte-identical canonical snapshot at the same
    /// epoch as an in-memory primary that ran the same prefix.
    #[test]
    fn wire_replay_is_byte_identical_for_any_prefix(
        codes in proptest::collection::vec(any::<u8>(), 1..24),
        prefix_selector in any::<u16>(),
    ) {
        let ops = build_ops(&codes);
        let dir = temp_dir("prop");
        let (store, mut primary, _report) =
            MetaStore::attach(&dir, FsyncPolicy::Never, Mdm::new()).unwrap();
        for op in &ops {
            op.apply(&mut primary).unwrap();
        }
        let prefix = prefix_selector as usize % (ops.len() + 1);

        // Replica's first request: generation 0 forces a snapshot resync.
        let batch = store.replication_batch(0, 0, prefix, primary.epoch());
        let decoded = ReplicationBatch::decode(&batch.encode()).unwrap();
        prop_assert_eq!(decoded.records.len(), prefix);
        let replica = replay_batch(&decoded);

        let mut reference = Mdm::new();
        for op in &ops[..prefix] {
            op.apply(&mut reference).unwrap();
        }
        prop_assert_eq!(replica.epoch(), reference.epoch());
        prop_assert_eq!(replica.snapshot_stamped(), reference.snapshot_stamped());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Real-TCP integration
// ---------------------------------------------------------------------

#[test]
fn two_replicas_bootstrap_converge_and_answer_byte_identically() {
    let (primary, dir) = start_primary("converge");
    let addr = primary.addr();
    let initial_epoch = int_of(&get_json(addr, "/epoch"), "metadata_epoch") as u64;

    let replica_a = start_replica(addr);
    let replica_b = start_replica(addr);
    assert!(replica_a.wait_for_epoch(initial_epoch, Duration::from_secs(20)));
    assert!(replica_b.wait_for_epoch(initial_epoch, Duration::from_secs(20)));

    // Bootstrapped replicas are healthy and advertise their role and the
    // fencing term they observed from the stream.
    for replica in [&replica_a, &replica_b] {
        let health = get_json(replica.addr(), "/healthz");
        assert_eq!(str_of(&health, "status"), "ok");
        assert_eq!(str_of(&health, "replica_state"), "replicating");
        assert_eq!(int_of(&health, "term"), 1);
        let epoch = get_json(replica.addr(), "/epoch");
        assert_eq!(str_of(&epoch, "role"), "replica");
        assert_eq!(int_of(&epoch, "metadata_epoch") as u64, initial_epoch);
        assert_eq!(int_of(&epoch, "term"), 1);
        assert_eq!(int_of(&epoch, "replay_lag"), 0);
    }
    assert_eq!(str_of(&get_json(addr, "/epoch"), "role"), "primary");
    assert_eq!(int_of(&get_json(addr, "/epoch"), "term"), 1);

    // Byte-identical analyst answers at the same epoch — including real
    // execution, which needs the hydrated wrapper payloads.
    let on_primary = query_body(addr, FIG8_WALK);
    assert_eq!(query_body(replica_a.addr(), FIG8_WALK), on_primary);
    assert_eq!(query_body(replica_b.addr(), FIG8_WALK), on_primary);
    assert!(on_primary.contains("Lionel Messi"), "{on_primary}");

    // Steward mutations belong on the primary.
    let denied = client::post_json(
        replica_a.addr(),
        "/steward/concepts",
        r#"{"concept": "ex:Referee"}"#,
    )
    .unwrap();
    assert_eq!(denied.status, 421);
    assert!(denied
        .header("location")
        .unwrap_or("")
        .contains(&addr.to_string()));

    // The breaking v2 release: both replicas catch up within one long-poll
    // cycle (500 ms here; generous bound for a loaded 1-CPU runner).
    let new_epoch = register_v2_over_http(addr);
    let started = Instant::now();
    assert!(replica_a.wait_for_epoch(new_epoch, Duration::from_secs(10)));
    assert!(replica_b.wait_for_epoch(new_epoch, Duration::from_secs(10)));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "catch-up took {:?}",
        started.elapsed()
    );
    let nationality_walk = "ex:Player { ex:playerName, ex:nationality }";
    let on_primary = query_body(addr, nationality_walk);
    assert_eq!(query_body(replica_a.addr(), nationality_walk), on_primary);
    assert_eq!(query_body(replica_b.addr(), nationality_walk), on_primary);

    // Primary-side gauges saw both replicas.
    let metrics = get_json(addr, "/metrics");
    let replication = metrics.get("replication").expect("replication gauges");
    assert_eq!(str_of(replication, "role"), "primary");
    assert_eq!(int_of(replication, "connected_replicas"), 2);
    assert!(int_of(replication, "streamed_records") >= 3);
    assert!(int_of(replication, "snapshots_served") >= 2);

    // Replica-side gauges mirror the replay.
    let metrics = get_json(replica_a.addr(), "/metrics");
    let replication = metrics.get("replication").expect("replication gauges");
    assert_eq!(str_of(replication, "role"), "replica");
    assert_eq!(int_of(replication, "replay_lag"), 0);
    assert!(int_of(replication, "records_applied") >= 3);
    let failover = metrics.get("failover").expect("failover gauges");
    assert_eq!(int_of(failover, "promotions"), 0);
    assert_eq!(int_of(failover, "rejoins"), 0);

    replica_a.shutdown();
    replica_b.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Mid-stream disconnect via a severable TCP proxy
// ---------------------------------------------------------------------

#[test]
fn replica_survives_a_midstream_disconnect_and_reconnects() {
    let (primary, dir) = start_primary("sever");
    let addr = primary.addr();
    let proxy = Proxy::start(addr);

    let replica = start_replica(proxy.addr);
    let initial_epoch = int_of(&get_json(addr, "/epoch"), "metadata_epoch") as u64;
    assert!(replica.wait_for_epoch(initial_epoch, Duration::from_secs(20)));

    // Cut every proxied byte stream while the replica long-polls.
    proxy.sever();
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.status().reconnects.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "replica never noticed the cut");
        thread::sleep(Duration::from_millis(20));
    }
    // Through the disconnect it keeps serving at its (stale but real)
    // epoch: /healthz stays ok, because the bootstrap already happened.
    let health = get_json(replica.addr(), "/healthz");
    assert_eq!(str_of(&health, "status"), "ok");

    // Meanwhile the primary moves on; the replica reconnects through the
    // same proxy address and catches up.
    let new_epoch = register_v2_over_http(addr);
    assert!(replica.wait_for_epoch(new_epoch, Duration::from_secs(20)));
    assert_eq!(
        str_of(&get_json(replica.addr(), "/healthz"), "replica_state"),
        "replicating"
    );
    let walk = "ex:Player { ex:playerName, ex:nationality }";
    assert_eq!(query_body(replica.addr(), walk), query_body(addr, walk));

    replica.shutdown();
    proxy.stop();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Poison latch: corrupt WAL records must not panic the replay thread
// ---------------------------------------------------------------------

#[test]
fn corrupt_record_poisons_the_replica_with_its_offset() {
    let mut seed = Mdm::new();
    seed.define_concept(&mdm_core::usecase::ex("Player"))
        .unwrap();
    let batch = ReplicationBatch {
        term: 1,
        term_start_epoch: 0,
        generation: 1,
        base_epoch: seed.epoch(),
        primary_epoch: seed.epoch() + 3,
        start: 0,
        wal_len: 2,
        snapshot: Some(seed.snapshot_stamped()),
        records: vec![
            WalRecord {
                epoch: seed.epoch() + 1,
                payload: MutationOp::DefineConcept {
                    concept: ns("Fine"),
                }
                .encode(),
            },
            // Tag 250 is no MutationOp: decodes must fail, replay must
            // poison (not panic), and the offset must be recorded.
            WalRecord {
                epoch: seed.epoch() + 2,
                payload: vec![250, 1, 2, 3],
            },
        ],
    };
    let addr = hostile_primary(batch);

    let mut config = ReplicaConfig::new(addr.to_string());
    config.wait_ms = 200;
    config.min_backoff = Duration::from_millis(20);
    config.max_backoff = Duration::from_millis(100);
    config.server.workers = 2;
    let replica = ReplicaNode::start(config).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.status().state() != ReplicaState::Poisoned {
        assert!(Instant::now() < deadline, "replica never poisoned");
        thread::sleep(Duration::from_millis(20));
    }
    // The good record before the poison applied; the latch names the bad
    // offset (the second record, offset 1).
    assert_eq!(replica.status().poisoned_offset(), 1);
    let health = get_json(replica.addr(), "/healthz");
    assert_eq!(str_of(&health, "status"), "degraded");
    assert_eq!(str_of(&health, "replica_state"), "poisoned");
    assert_eq!(int_of(&health, "poisoned_offset"), 1);
    assert!(str_of(&health, "replica_error").contains("decode"));
    // Poisoned is terminal: no amount of waiting resumes replay.
    assert!(!replica.wait_for_epoch(u64::MAX, Duration::from_millis(200)));
    replica.shutdown();
}

//! Replication suite: WAL-shipping read replicas against a live primary.
//!
//! Two layers of evidence:
//!
//! * A property test that the **wire path** (snapshot + CRC-framed records
//!   through [`ReplicationBatch`] encode/decode, replayed via the journal
//!   apply path) reproduces, for ANY valid mutation script and ANY prefix
//!   length, a state byte-identical to an in-memory primary that executed
//!   the same prefix — same canonical snapshot, same epoch.
//! * Real-TCP integration: a primary with a durable journal, two
//!   [`ReplicaNode`]s bootstrapping over HTTP, convergence after a breaking
//!   release within one long-poll cycle, byte-identical analyst answers, a
//!   mid-stream disconnect/reconnect (severed through a TCP proxy), and the
//!   poison latch on a corrupt WAL record served by a hostile primary.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mdm_core::usecase;
use mdm_core::{FsyncPolicy, Mdm, MetaStore, MutationOp};
use mdm_dataform::{json, Value};
use mdm_replica::{ReplicaConfig, ReplicaHandle, ReplicaNode};
use mdm_server::client;
use mdm_server::replication::ReplicaState;
use mdm_server::{serve_on, ServerConfig, ServerHandle};
use mdm_store::{ReplicationBatch, WalRecord};
use mdm_wrappers::football;
use proptest::prelude::*;

const FIG8_WALK: &str =
    "ex:Player { ex:playerName }\nsc:SportsTeam { ex:teamName }\nex:Player -ex:hasTeam-> sc:SportsTeam";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdm-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ns(local: &str) -> String {
    format!("http://example.org/{local}")
}

/// Deterministically expands action codes into a valid mutation script
/// (mirrors the durability suite's generator, trimmed to the op kinds that
/// exercise distinct replay paths).
fn build_ops(codes: &[u8]) -> Vec<MutationOp> {
    let mut concepts: Vec<(String, String)> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    let mut ops = Vec::new();
    let mut serial = 0usize;
    let mut fresh = || {
        serial += 1;
        serial
    };
    for &code in codes {
        match code % 7 {
            0 => {
                let n = fresh();
                let concept = ns(&format!("C{n}"));
                let id = ns(&format!("C{n}_id"));
                ops.push(MutationOp::DefineConcept {
                    concept: concept.clone(),
                });
                ops.push(MutationOp::DefineFeature {
                    concept: concept.clone(),
                    feature: id.clone(),
                    identifier: true,
                });
                concepts.push((concept, id));
            }
            1 => {
                if concepts.is_empty() {
                    continue;
                }
                let index = code as usize % concepts.len();
                ops.push(MutationOp::DefineFeature {
                    concept: concepts[index].0.clone(),
                    feature: ns(&format!("f{}", fresh())),
                    identifier: false,
                });
            }
            2 => {
                let name = format!("S{}", fresh());
                ops.push(MutationOp::AddSource { name: name.clone() });
                sources.push(name);
            }
            3 => {
                if sources.is_empty() {
                    continue;
                }
                ops.push(MutationOp::RegisterWrapper {
                    source: sources.last().unwrap().clone(),
                    wrapper: format!("w{}", fresh()),
                    version: (code as u32 % 3) + 1,
                    attributes: vec!["id".into(), "v".into()],
                });
            }
            4 => {
                if concepts.len() < 2 {
                    continue;
                }
                let from = code as usize % concepts.len();
                let to = (from + 1) % concepts.len();
                ops.push(MutationOp::DefineRelation {
                    from: concepts[from].0.clone(),
                    property: ns(&format!("rel{}", fresh())),
                    to: concepts[to].0.clone(),
                });
            }
            5 => {
                let n = fresh();
                ops.push(MutationOp::BindPrefix {
                    prefix: format!("p{n}"),
                    namespace: format!("http://example.org/ns{n}#"),
                });
            }
            _ => {
                ops.push(MutationOp::SetOptions {
                    distinct: code % 2 == 0,
                    max_branches: 4096,
                });
            }
        }
    }
    if ops.is_empty() {
        ops.push(MutationOp::DefineConcept {
            concept: ns("Anchor"),
        });
    }
    ops
}

/// Replays a decoded batch exactly as the replica sync thread does:
/// snapshot restore, then record decode + apply + epoch alignment.
fn replay_batch(batch: &ReplicationBatch) -> Mdm {
    let snapshot = batch.snapshot.as_deref().expect("bootstrap batch");
    let mut mdm = Mdm::restore_metadata(snapshot).expect("snapshot restores");
    mdm.ensure_epoch_at_least(batch.base_epoch);
    for record in &batch.records {
        let op = MutationOp::decode(&record.payload).expect("record decodes");
        op.apply(&mut mdm).expect("record applies");
        mdm.ensure_epoch_at_least(record.epoch);
    }
    mdm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any prefix of the primary's WAL, shipped through the binary wire
    /// format, replays to a byte-identical canonical snapshot at the same
    /// epoch as an in-memory primary that ran the same prefix.
    #[test]
    fn wire_replay_is_byte_identical_for_any_prefix(
        codes in proptest::collection::vec(any::<u8>(), 1..24),
        prefix_selector in any::<u16>(),
    ) {
        let ops = build_ops(&codes);
        let dir = temp_dir("prop");
        let (store, mut primary, _report) =
            MetaStore::attach(&dir, FsyncPolicy::Never, Mdm::new()).unwrap();
        for op in &ops {
            op.apply(&mut primary).unwrap();
        }
        let prefix = prefix_selector as usize % (ops.len() + 1);

        // Replica's first request: generation 0 forces a snapshot resync.
        let batch = store.replication_batch(0, 0, prefix, primary.epoch());
        let decoded = ReplicationBatch::decode(&batch.encode()).unwrap();
        prop_assert_eq!(decoded.records.len(), prefix);
        let replica = replay_batch(&decoded);

        let mut reference = Mdm::new();
        for op in &ops[..prefix] {
            op.apply(&mut reference).unwrap();
        }
        prop_assert_eq!(replica.epoch(), reference.epoch());
        prop_assert_eq!(replica.snapshot_stamped(), reference.snapshot_stamped());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Real-TCP integration
// ---------------------------------------------------------------------

fn primary_config(dir: PathBuf) -> ServerConfig {
    ServerConfig {
        workers: 4,
        data_dir: Some(dir),
        fsync: FsyncPolicy::Never,
        ..ServerConfig::default()
    }
}

fn start_primary(tag: &str) -> (ServerHandle, PathBuf) {
    let dir = temp_dir(tag);
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = serve_on(listener, &primary_config(dir.clone()), mdm).unwrap();
    (server, dir)
}

fn start_replica(primary: SocketAddr) -> ReplicaHandle {
    let mut config = ReplicaConfig::new(primary.to_string());
    config.wait_ms = 500;
    config.min_backoff = Duration::from_millis(20);
    config.max_backoff = Duration::from_millis(200);
    config.server.workers = 2;
    ReplicaNode::start(config).unwrap()
}

fn get_json(addr: SocketAddr, path: &str) -> Value {
    let response = client::get(addr, path).unwrap_or_else(|e| panic!("GET {path}: {e}"));
    assert_eq!(response.status, 200, "GET {path}: {}", response.body);
    json::parse(&response.body).expect("JSON body")
}

fn query_body(addr: SocketAddr, walk: &str) -> String {
    let body = json::to_string(&Value::object([("walk", Value::string(walk))]));
    let response =
        client::post_json(addr, "/analyst/query", &body).unwrap_or_else(|e| panic!("query: {e}"));
    assert_eq!(response.status, 200, "{}", response.body);
    response.body
}

fn int_of(value: &Value, field: &str) -> i64 {
    value
        .get(field)
        .and_then(Value::as_number)
        .and_then(|n| n.as_i64())
        .unwrap_or_else(|| panic!("missing numeric '{field}' in {value:?}"))
}

fn str_of<'v>(value: &'v Value, field: &str) -> &'v str {
    value
        .get(field)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string '{field}' in {value:?}"))
}

/// Registers the breaking Players v2 release over HTTP (nationality
/// feature, wrapper w3, its LAV mapping); returns the resulting epoch.
fn register_v2_over_http(addr: SocketAddr) -> u64 {
    let eco = football::build_default();
    let v2 = eco.players_api.release(2).expect("v2 published");
    let post = |path: &str, body: &str| {
        let response = client::post_json(addr, path, body).unwrap();
        assert!(
            (200..300).contains(&response.status),
            "POST {path}: HTTP {} {}",
            response.status,
            response.body
        );
        json::parse(&response.body).unwrap()
    };
    post(
        "/steward/features",
        r#"{"concept": "ex:Player", "feature": "ex:nationality"}"#,
    );
    let wrapper = Value::object([
        ("name", Value::string("w3")),
        ("source", Value::string("PlayersAPI")),
        ("version", Value::int(i64::from(v2.version))),
        ("format", Value::string("json")),
        ("payload", Value::string(v2.body.as_str())),
        (
            "attributes",
            Value::array(
                [
                    "id",
                    "pName",
                    "height",
                    "weight",
                    "foot",
                    "teamId",
                    "nationality",
                ]
                .into_iter()
                .map(Value::string),
            ),
        ),
        (
            "bindings",
            Value::object([
                ("id", Value::string("players_id")),
                ("pName", Value::string("players_full_name")),
                ("height", Value::string("players_height")),
                ("weight", Value::string("players_weight")),
                ("foot", Value::string("players_foot")),
                ("teamId", Value::string("players_team_id")),
                ("nationality", Value::string("players_nationality")),
            ]),
        ),
    ]);
    post("/steward/wrappers", &json::to_string(&wrapper));
    let ack = post(
        "/steward/mappings",
        r#"{
            "wrapper": "w3",
            "concepts": ["ex:Player", "sc:SportsTeam"],
            "features": ["ex:playerId", "ex:playerName", "ex:height", "ex:weight",
                         "ex:foot", "ex:nationality", "ex:teamId"],
            "relations": [{"from": "ex:Player", "property": "ex:hasTeam", "to": "sc:SportsTeam"}],
            "same_as": [
                {"attribute": "id", "feature": "ex:playerId"},
                {"attribute": "pName", "feature": "ex:playerName"},
                {"attribute": "height", "feature": "ex:height"},
                {"attribute": "weight", "feature": "ex:weight"},
                {"attribute": "foot", "feature": "ex:foot"},
                {"attribute": "nationality", "feature": "ex:nationality"},
                {"attribute": "teamId", "feature": "ex:teamId"}
            ]
        }"#,
    );
    int_of(&ack, "epoch") as u64
}

#[test]
fn two_replicas_bootstrap_converge_and_answer_byte_identically() {
    let (primary, dir) = start_primary("converge");
    let addr = primary.addr();
    let initial_epoch = int_of(&get_json(addr, "/epoch"), "metadata_epoch") as u64;

    let replica_a = start_replica(addr);
    let replica_b = start_replica(addr);
    assert!(replica_a.wait_for_epoch(initial_epoch, Duration::from_secs(20)));
    assert!(replica_b.wait_for_epoch(initial_epoch, Duration::from_secs(20)));

    // Bootstrapped replicas are healthy and advertise their role.
    for replica in [&replica_a, &replica_b] {
        let health = get_json(replica.addr(), "/healthz");
        assert_eq!(str_of(&health, "status"), "ok");
        assert_eq!(str_of(&health, "replica_state"), "replicating");
        let epoch = get_json(replica.addr(), "/epoch");
        assert_eq!(str_of(&epoch, "role"), "replica");
        assert_eq!(int_of(&epoch, "metadata_epoch") as u64, initial_epoch);
        assert_eq!(int_of(&epoch, "replay_lag"), 0);
    }
    assert_eq!(str_of(&get_json(addr, "/epoch"), "role"), "primary");

    // Byte-identical analyst answers at the same epoch — including real
    // execution, which needs the hydrated wrapper payloads.
    let on_primary = query_body(addr, FIG8_WALK);
    assert_eq!(query_body(replica_a.addr(), FIG8_WALK), on_primary);
    assert_eq!(query_body(replica_b.addr(), FIG8_WALK), on_primary);
    assert!(on_primary.contains("Lionel Messi"), "{on_primary}");

    // Steward mutations belong on the primary.
    let denied = client::post_json(
        replica_a.addr(),
        "/steward/concepts",
        r#"{"concept": "ex:Referee"}"#,
    )
    .unwrap();
    assert_eq!(denied.status, 421);
    assert!(denied
        .header("location")
        .unwrap_or("")
        .contains(&addr.to_string()));

    // The breaking v2 release: both replicas catch up within one long-poll
    // cycle (500 ms here; generous bound for a loaded 1-CPU runner).
    let new_epoch = register_v2_over_http(addr);
    let started = Instant::now();
    assert!(replica_a.wait_for_epoch(new_epoch, Duration::from_secs(10)));
    assert!(replica_b.wait_for_epoch(new_epoch, Duration::from_secs(10)));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "catch-up took {:?}",
        started.elapsed()
    );
    let nationality_walk = "ex:Player { ex:playerName, ex:nationality }";
    let on_primary = query_body(addr, nationality_walk);
    assert_eq!(query_body(replica_a.addr(), nationality_walk), on_primary);
    assert_eq!(query_body(replica_b.addr(), nationality_walk), on_primary);

    // Primary-side gauges saw both replicas.
    let metrics = get_json(addr, "/metrics");
    let replication = metrics.get("replication").expect("replication gauges");
    assert_eq!(str_of(replication, "role"), "primary");
    assert_eq!(int_of(replication, "connected_replicas"), 2);
    assert!(int_of(replication, "streamed_records") >= 3);
    assert!(int_of(replication, "snapshots_served") >= 2);

    // Replica-side gauges mirror the replay.
    let metrics = get_json(replica_a.addr(), "/metrics");
    let replication = metrics.get("replication").expect("replication gauges");
    assert_eq!(str_of(replication, "role"), "replica");
    assert_eq!(int_of(replication, "replay_lag"), 0);
    assert!(int_of(replication, "records_applied") >= 3);

    replica_a.shutdown();
    replica_b.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Mid-stream disconnect via a severable TCP proxy
// ---------------------------------------------------------------------

/// A pass-through TCP proxy whose live connections can be severed without
/// touching its listener — a reconnect through the same address works.
struct Proxy {
    addr: SocketAddr,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
}

impl Proxy {
    fn start(upstream: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        {
            let conns = Arc::clone(&conns);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                for inbound in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(inbound) = inbound else { break };
                    let Ok(outbound) = TcpStream::connect(upstream) else {
                        continue;
                    };
                    {
                        let mut held = conns.lock().unwrap();
                        held.push(inbound.try_clone().unwrap());
                        held.push(outbound.try_clone().unwrap());
                    }
                    pump(inbound.try_clone().unwrap(), outbound.try_clone().unwrap());
                    pump(outbound, inbound);
                }
            });
        }
        Proxy { addr, conns, stop }
    }

    /// Kills every live proxied connection mid-stream.
    fn sever(&self) {
        for stream in self.conns.lock().unwrap().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.sever();
        // Unblock accept() so the thread observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// One-directional byte pump on its own thread; dies with the sockets.
fn pump(mut from: TcpStream, to: TcpStream) {
    thread::spawn(move || {
        let mut to = to;
        let mut buf = [0u8; 4096];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = to.shutdown(Shutdown::Both);
    });
}

#[test]
fn replica_survives_a_midstream_disconnect_and_reconnects() {
    let (primary, dir) = start_primary("sever");
    let addr = primary.addr();
    let proxy = Proxy::start(addr);

    let replica = start_replica(proxy.addr);
    let initial_epoch = int_of(&get_json(addr, "/epoch"), "metadata_epoch") as u64;
    assert!(replica.wait_for_epoch(initial_epoch, Duration::from_secs(20)));

    // Cut every proxied byte stream while the replica long-polls.
    proxy.sever();
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.status().reconnects.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "replica never noticed the cut");
        thread::sleep(Duration::from_millis(20));
    }
    // Through the disconnect it keeps serving at its (stale but real)
    // epoch: /healthz stays ok, because the bootstrap already happened.
    let health = get_json(replica.addr(), "/healthz");
    assert_eq!(str_of(&health, "status"), "ok");

    // Meanwhile the primary moves on; the replica reconnects through the
    // same proxy address and catches up.
    let new_epoch = register_v2_over_http(addr);
    assert!(replica.wait_for_epoch(new_epoch, Duration::from_secs(20)));
    assert_eq!(
        str_of(&get_json(replica.addr(), "/healthz"), "replica_state"),
        "replicating"
    );
    let walk = "ex:Player { ex:playerName, ex:nationality }";
    assert_eq!(query_body(replica.addr(), walk), query_body(addr, walk));

    replica.shutdown();
    proxy.stop();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Poison latch: corrupt WAL records must not panic the replay thread
// ---------------------------------------------------------------------

/// A minimal hostile primary: speaks just enough HTTP to serve one
/// replication bootstrap whose WAL record is garbage (valid CRC framing,
/// undecodable op payload).
fn hostile_primary(batch: ReplicationBatch) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let batch = batch.clone();
            thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    // Requests are header-only GETs: serve per blank line.
                    let Ok(n) = stream.read(&mut chunk) else {
                        return;
                    };
                    if n == 0 {
                        return;
                    }
                    buf.extend_from_slice(&chunk[..n]);
                    while let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                        let head = String::from_utf8_lossy(&buf[..end]).to_string();
                        buf.drain(..end + 4);
                        let body: Vec<u8> = if head.contains("/replication/stream") {
                            batch.encode()
                        } else {
                            br#"{"wrappers": []}"#.to_vec()
                        };
                        let header = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n\r\n",
                            body.len()
                        );
                        if stream.write_all(header.as_bytes()).is_err()
                            || stream.write_all(&body).is_err()
                        {
                            return;
                        }
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn corrupt_record_poisons_the_replica_with_its_offset() {
    let mut seed = Mdm::new();
    seed.define_concept(&mdm_core::usecase::ex("Player"))
        .unwrap();
    let batch = ReplicationBatch {
        generation: 1,
        base_epoch: seed.epoch(),
        primary_epoch: seed.epoch() + 3,
        start: 0,
        wal_len: 2,
        snapshot: Some(seed.snapshot_stamped()),
        records: vec![
            WalRecord {
                epoch: seed.epoch() + 1,
                payload: MutationOp::DefineConcept {
                    concept: ns("Fine"),
                }
                .encode(),
            },
            // Tag 250 is no MutationOp: decodes must fail, replay must
            // poison (not panic), and the offset must be recorded.
            WalRecord {
                epoch: seed.epoch() + 2,
                payload: vec![250, 1, 2, 3],
            },
        ],
    };
    let addr = hostile_primary(batch);

    let mut config = ReplicaConfig::new(addr.to_string());
    config.wait_ms = 200;
    config.min_backoff = Duration::from_millis(20);
    config.max_backoff = Duration::from_millis(100);
    config.server.workers = 2;
    let replica = ReplicaNode::start(config).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.status().state() != ReplicaState::Poisoned {
        assert!(Instant::now() < deadline, "replica never poisoned");
        thread::sleep(Duration::from_millis(20));
    }
    // The good record before the poison applied; the latch names the bad
    // offset (the second record, offset 1).
    assert_eq!(replica.status().poisoned_offset(), 1);
    let health = get_json(replica.addr(), "/healthz");
    assert_eq!(str_of(&health, "status"), "degraded");
    assert_eq!(str_of(&health, "replica_state"), "poisoned");
    assert_eq!(int_of(&health, "poisoned_offset"), 1);
    assert!(str_of(&health, "replica_error").contains("decode"));
    // Poisoned is terminal: no amount of waiting resumes replay.
    assert!(!replica.wait_for_epoch(u64::MAX, Duration::from_millis(200)));
    replica.shutdown();
}

//! Cross-engine agreement: the SPARQL query MDM generates for a walk,
//! evaluated over a *materialised* RDF view of the source data, returns the
//! same answer set as the rewritten relational plan executed federatedly.
//!
//! This is the strongest correctness check available to a LAV system: two
//! independent semantics (triple-store evaluation vs. UCQ over wrappers)
//! must coincide on the certain answers.

use std::collections::BTreeSet;

use mdm_core::usecase::{self, ex, sports_team};
use mdm_rdf::{Dataset, Term};
use mdm_wrappers::football::{self, FootballEcosystem};

/// Materialises the football records as instance triples of the global
/// graph (the "virtual graph" a triple store would hold).
fn materialise(eco: &FootballEcosystem) -> Dataset {
    let mut ds = Dataset::new();
    let g = ds.default_graph_mut();
    let rdf_type = mdm_rdf::vocab::rdf::TYPE.term();
    for p in &eco.players {
        let node = Term::iri(format!("http://data.example/player/{}", p.id));
        g.insert((node.clone(), rdf_type.clone(), ex("Player").term()));
        g.insert((node.clone(), ex("playerId").term(), Term::integer(p.id)));
        g.insert((
            node.clone(),
            ex("playerName").term(),
            Term::string(p.name.clone()),
        ));
        g.insert((node.clone(), ex("height").term(), Term::double(p.height)));
        g.insert((node.clone(), ex("weight").term(), Term::integer(p.weight)));
        g.insert((
            node.clone(),
            ex("foot").term(),
            Term::string(p.preferred_foot),
        ));
        let team = Term::iri(format!("http://data.example/team/{}", p.team_id));
        g.insert((node.clone(), ex("hasTeam").term(), team));
        // The virtual graph only holds what the mappings expose: `score` and
        // the hasNationality edge come from v1 wrappers (w1/w7), so v2-only
        // players don't have them; `nationality` (the feature) is v2-only.
        if eco.served_on_v1(p.id) {
            g.insert((node.clone(), ex("score").term(), Term::integer(p.rating)));
            let country = Term::iri(format!("http://data.example/country/{}", p.country_id));
            g.insert((node.clone(), ex("hasNationality").term(), country));
        } else {
            g.insert((
                node.clone(),
                ex("nationality").term(),
                Term::integer(p.country_id),
            ));
        }
    }
    for t in &eco.teams {
        let node = Term::iri(format!("http://data.example/team/{}", t.id));
        g.insert((node.clone(), rdf_type.clone(), sports_team().term()));
        g.insert((node.clone(), ex("teamId").term(), Term::integer(t.id)));
        g.insert((
            node.clone(),
            ex("teamName").term(),
            Term::string(t.name.clone()),
        ));
        g.insert((
            node.clone(),
            ex("shortName").term(),
            Term::string(t.short_name.clone()),
        ));
        let league = Term::iri(format!("http://data.example/league/{}", t.league_id));
        g.insert((node, ex("playsIn").term(), league));
    }
    for (id, name, country_id) in &eco.leagues {
        let node = Term::iri(format!("http://data.example/league/{id}"));
        g.insert((node.clone(), rdf_type.clone(), ex("League").term()));
        g.insert((node.clone(), ex("leagueId").term(), Term::integer(*id)));
        g.insert((
            node.clone(),
            ex("leagueName").term(),
            Term::string(name.clone()),
        ));
        let country = Term::iri(format!("http://data.example/country/{country_id}"));
        g.insert((node, ex("ofCountry").term(), country));
    }
    for (id, name) in &eco.countries {
        let node = Term::iri(format!("http://data.example/country/{id}"));
        g.insert((node.clone(), rdf_type.clone(), ex("Country").term()));
        g.insert((node.clone(), ex("countryId").term(), Term::integer(*id)));
        g.insert((node, ex("countryName").term(), Term::string(name.clone())));
    }
    ds
}

/// Runs both engines on a walk and compares answer sets.
fn assert_agreement(walk: &mdm_core::Walk, projected: &[&str]) {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).unwrap();
    usecase::register_players_v2(&mut mdm, &eco).unwrap();

    // Engine 1: federated execution of the rewritten plan.
    let answer = mdm.query(walk).unwrap();
    let federated: BTreeSet<Vec<String>> = answer
        .table
        .rows()
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();

    // Engine 2: SPARQL over the materialised instance graph.
    let results = mdm_sparql::execute(&answer.rewriting.sparql, &materialise(&eco)).unwrap();
    let triple_store: BTreeSet<Vec<String>> = results
        .rows
        .iter()
        .map(|solution| {
            projected
                .iter()
                .map(|v| solution.get(*v).map(|t| t.to_string()).unwrap_or_default())
                .collect()
        })
        .collect();

    assert_eq!(federated, triple_store, "engines disagree on {projected:?}");
}

#[test]
fn figure8_walk_agrees_across_engines() {
    assert_agreement(&usecase::figure8_walk(), &["teamName", "playerName"]);
}

#[test]
fn single_concept_walk_agrees() {
    let walk = mdm_core::Walk::new()
        .feature(&ex("Player"), &ex("playerName"))
        .feature(&ex("Player"), &ex("foot"));
    assert_agreement(&walk, &["playerName", "foot"]);
}

#[test]
fn team_league_walk_agrees() {
    let walk = mdm_core::Walk::new()
        .feature(&sports_team(), &ex("teamName"))
        .feature(&ex("League"), &ex("leagueName"))
        .relation(&sports_team(), &ex("playsIn"), &ex("League"));
    assert_agreement(&walk, &["teamName", "leagueName"]);
}

#[test]
fn nationality_league_walk_agrees() {
    assert_agreement(
        &usecase::nationality_league_walk(),
        &["playerName", "leagueName", "countryName", "teamName"],
    );
}

#[test]
fn league_country_walk_agrees() {
    let walk = mdm_core::Walk::new()
        .feature(&ex("League"), &ex("leagueName"))
        .feature(&ex("Country"), &ex("countryName"))
        .relation(&ex("League"), &ex("ofCountry"), &ex("Country"));
    assert_agreement(&walk, &["leagueName", "countryName"]);
}

//! Failover suite: fenced primary promotion under crash/chaos schedules.
//!
//! The invariant under test is the **fencing term**: at most one node
//! accepts steward mutations per term, and every acknowledged mutation
//! survives any schedule of kills, promotions and rejoins — except writes
//! acknowledged by a primary *after* it was partitioned away from the
//! node that gets promoted; those form a divergent tail that the demoted
//! primary must discard when it rejoins.
//!
//! Layers of evidence:
//!
//! * A chaos harness: primary + two replicas under sustained mixed
//!   steward/analyst load, three scripted kill → promote → rejoin cycles
//!   (with a mid-stream severed connection thrown in), asserting zero
//!   acknowledged mutations lost, exactly one writable node per term, and
//!   byte-identical snapshots at equal epochs on every survivor.
//! * A split-brain test: the old primary keeps running, learns of the new
//!   term, fences itself, and refuses steward writes with 409.
//! * A divergence test: a partitioned-away replica is promoted while the
//!   doomed primary keeps acknowledging writes; on rejoin the demoted
//!   primary discards exactly its divergent records and converges.
//! * A property test: promoting after ANY replayed WAL prefix opens a
//!   durable store whose recovered snapshot equals the primary's at that
//!   epoch, under the bumped term.
//! * Promotion refusals: poisoned and never-bootstrapped replicas (and
//!   primaries) answer 409 instead of forking the timeline.
//!
//! Chaos schedules derive from `MDM_CHAOS_SEED` (see `common`), so a
//! failing run can be replayed exactly.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use common::*;
use mdm_core::{FsyncPolicy, Mdm, MetaStore};
use mdm_dataform::{json, Value};
use mdm_replica::ReplicaHandle;
use mdm_server::client;
use mdm_server::replication::ReplicaState;
use mdm_server::ServerHandle;
use mdm_store::{ReplicationBatch, Store, WalRecord};
use proptest::prelude::*;

/// SplitMix64 lane derivation: every thread/node in the chaos schedule
/// gets its own deterministic stream off the one `MDM_CHAOS_SEED`.
fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed.wrapping_add(lane.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A node slot in the chaos harness: its handle changes type across
/// incarnations (a promoted replica keeps its `ReplicaHandle`).
enum Node {
    Primary(ServerHandle),
    Replica(ReplicaHandle),
}

impl Node {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Node::Primary(handle) => handle.addr(),
            Node::Replica(handle) => handle.addr(),
        }
    }

    fn shutdown(self) {
        match self {
            Node::Primary(handle) => handle.shutdown(),
            Node::Replica(handle) => handle.shutdown(),
        }
    }
}

fn failover_gauges(addr: std::net::SocketAddr) -> Value {
    let metrics = get_json(addr, "/metrics");
    metrics.get("failover").expect("failover gauges").clone()
}

// ---------------------------------------------------------------------
// The chaos harness: three kill → promote → rejoin cycles under load
// ---------------------------------------------------------------------

/// Three nodes, three cycles; the roles rotate so every node is killed,
/// promoted and rejoined exactly once:
///
/// | cycle | primary (killed) | promoted (term) | restarted bystander |
/// |-------|------------------|-----------------|---------------------|
/// | 0     | n0               | n1 (term 2)     | n2                  |
/// | 1     | n1               | n2 (term 3)     | n0                  |
/// | 2     | n2               | n0 (term 4)     | n1                  |
///
/// Each cycle runs a mixed steward/analyst workload, drains the promotion
/// target, kills the primary, promotes, probes that exactly one node
/// accepts writes, re-points the bystander (replicas follow a fixed
/// address), rejoins the dead primary over its old journal, and asserts
/// byte-identical convergence with every acknowledged mutation present.
#[test]
fn three_failover_cycles_lose_no_acknowledged_mutation() {
    let seed = chaos_seed();
    let dirs = [
        temp_dir("chaos-n0"),
        temp_dir("chaos-n1"),
        temp_dir("chaos-n2"),
    ];
    let mut nodes: Vec<Option<Node>> = Vec::new();

    let server = start_primary_in(dirs[0].clone());
    let initial_epoch = int_of(&get_json(server.addr(), "/epoch"), "metadata_epoch") as u64;
    // n1 follows through a severable proxy: cycle 0 cuts its stream
    // mid-workload and it must reconnect before the drain.
    let proxy = Proxy::start(server.addr());
    let n1 = start_replica_at(&proxy.addr.to_string(), Some(dirs[1].clone()), mix(seed, 1));
    let n2 = start_replica_at(
        &server.addr().to_string(),
        Some(dirs[2].clone()),
        mix(seed, 2),
    );
    assert!(n1.wait_for_epoch(initial_epoch, Duration::from_secs(20)));
    assert!(n2.wait_for_epoch(initial_epoch, Duration::from_secs(20)));
    nodes.push(Some(Node::Primary(server)));
    nodes.push(Some(Node::Replica(n1)));
    nodes.push(Some(Node::Replica(n2)));

    // Acknowledged mutations across ALL cycles: every one must be present
    // in every converged snapshot until the end of the test.
    let mut acked: Vec<String> = Vec::new();

    for cycle in 0..3usize {
        let p = cycle % 3; // current primary: killed this cycle
        let t = (cycle + 1) % 3; // promotion target
        let b = (cycle + 2) % 3; // bystander: re-pointed after promotion
        let primary_addr = nodes[p].as_ref().unwrap().addr();
        let target_addr = nodes[t].as_ref().unwrap().addr();
        let bystander_addr = nodes[b].as_ref().unwrap().addr();
        let expected_term = cycle as i64 + 2;

        // -- Mixed workload: steward writes on the primary, analyst reads
        // on the replicas, both on their own threads.
        let stop = Arc::new(AtomicBool::new(false));
        let steward = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut acked = Vec::new();
                let mut i = 0u32;
                while !stop.load(Ordering::SeqCst) {
                    // Zero-padded so no name is a prefix of another: the
                    // presence check below is a plain substring match.
                    let name = format!("Cycle{cycle}Item{i:04}");
                    match define_concept(primary_addr, &ns(&name)) {
                        Ok(_epoch) => acked.push(name),
                        Err(r) => panic!(
                            "cycle {cycle}: steward write refused mid-workload: HTTP {} {}",
                            r.status, r.body
                        ),
                    }
                    i += 1;
                    thread::sleep(Duration::from_millis(2));
                }
                acked
            })
        };
        let analyst = {
            let stop = Arc::clone(&stop);
            let lane = mix(seed, 300 + cycle as u64);
            thread::spawn(move || {
                let replicas = [target_addr, bystander_addr];
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let addr = replicas[(mix(lane, i) % 2) as usize];
                    let epoch = get_json(addr, "/epoch");
                    assert_eq!(str_of(&epoch, "role"), "replica");
                    if i.is_multiple_of(8) {
                        // Real execution (stale reads are fine; errors
                        // are not).
                        assert!(query_body(addr, FIG8_WALK).contains("Lionel Messi"));
                    }
                    i += 1;
                    thread::sleep(Duration::from_millis(5));
                }
                i
            })
        };
        thread::sleep(Duration::from_millis(150));
        if cycle == 0 {
            // Mid-stream cut: n1's replication connection dies; it must
            // reconnect through the same proxy address and catch up.
            proxy.sever();
        }
        thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::SeqCst);
        let cycle_acked = steward.join().expect("steward thread");
        let analyst_reads = analyst.join().expect("analyst thread");
        assert!(
            !cycle_acked.is_empty(),
            "cycle {cycle}: steward made no progress"
        );
        assert!(analyst_reads > 0, "cycle {cycle}: analyst made no progress");
        acked.extend(cycle_acked);

        // -- Drain: every acknowledged epoch must be replayed on the
        // promotion target before the kill (async replication cannot
        // save what never arrived).
        let drained = int_of(&get_json(primary_addr, "/epoch"), "metadata_epoch") as u64;
        {
            let Some(Node::Replica(target)) = nodes[t].as_ref() else {
                unreachable!("promotion targets are always replicas")
            };
            assert!(
                target.wait_for_epoch(drained, Duration::from_secs(30)),
                "cycle {cycle}: target never drained to epoch {drained}"
            );
        }

        // -- Kill the primary (its journal directory survives for the
        // rejoin below).
        nodes[p].take().unwrap().shutdown();
        if cycle == 0 {
            // The proxy fronted n0; with n0 dead it goes dark for good.
            proxy.stop();
        }

        // -- Promote the drained target.
        let response = client::post_json(target_addr, "/admin/promote", "{}").unwrap();
        assert_eq!(
            response.status, 200,
            "cycle {cycle}: promotion failed: {}",
            response.body
        );
        let ack = json::parse(&response.body).unwrap();
        assert_eq!(int_of(&ack, "term"), expected_term, "cycle {cycle}");
        assert_eq!(str_of(&ack, "role"), "primary");
        assert!(int_of(&ack, "generation") >= 1, "promotion opens a journal");

        // -- Exactly one writable node per term: the new primary accepts,
        // every other live node refuses.
        let probe = format!("Cycle{cycle}Probe");
        match define_concept(target_addr, &ns(&probe)) {
            Ok(_epoch) => acked.push(probe),
            Err(r) => panic!(
                "cycle {cycle}: new primary refused a write: HTTP {} {}",
                r.status, r.body
            ),
        }
        let denied = define_concept(bystander_addr, &ns(&format!("Cycle{cycle}Rogue")))
            .expect_err("bystander replica must not accept steward writes");
        assert_eq!(denied.status, 421, "cycle {cycle}: {}", denied.body);

        // -- Replicas follow a fixed address: re-point the bystander at
        // the new primary, and rejoin the dead primary over its old
        // journal (it recovers, detects the newer term, resyncs).
        nodes[b].take().unwrap().shutdown();
        nodes[b] = Some(Node::Replica(start_replica_at(
            &target_addr.to_string(),
            Some(dirs[b].clone()),
            mix(seed, 100 + (cycle * 3 + b) as u64),
        )));
        nodes[p] = Some(Node::Replica(start_replica_at(
            &target_addr.to_string(),
            Some(dirs[p].clone()),
            mix(seed, 200 + (cycle * 3 + p) as u64),
        )));

        // -- Convergence: both followers reach the primary's exact epoch.
        let primary_epoch = int_of(&get_json(target_addr, "/epoch"), "metadata_epoch");
        for slot in [p, b] {
            let addr = nodes[slot].as_ref().unwrap().addr();
            wait_until(Duration::from_secs(30), "cycle convergence", || {
                let epoch = get_json(addr, "/epoch");
                int_of(&epoch, "metadata_epoch") == primary_epoch
                    && int_of(&epoch, "replay_lag") == 0
            });
        }

        // Byte-identical snapshots at equal epochs on every survivor, and
        // every mutation ever acknowledged is present.
        let (reference_snapshot, reference_epoch) = snapshot_of(target_addr);
        for slot in [p, b] {
            let (snapshot, epoch) = snapshot_of(nodes[slot].as_ref().unwrap().addr());
            assert_eq!(epoch, reference_epoch, "cycle {cycle}: epochs diverge");
            assert_eq!(
                snapshot, reference_snapshot,
                "cycle {cycle}: snapshots diverge"
            );
        }
        for name in &acked {
            assert!(
                reference_snapshot.contains(name.as_str()),
                "cycle {cycle}: acknowledged mutation {name} was lost"
            );
        }

        // Everyone agrees on the term; the rejoined ex-primary discarded
        // nothing (the drain guaranteed it held no divergent tail) but
        // did go through the rejoin handshake.
        for slot in [p, t, b] {
            let addr = nodes[slot].as_ref().unwrap().addr();
            assert_eq!(
                int_of(&get_json(addr, "/epoch"), "term"),
                expected_term,
                "cycle {cycle}: node {slot} disagrees on the term"
            );
        }
        let rejoined = failover_gauges(nodes[p].as_ref().unwrap().addr());
        assert_eq!(int_of(&rejoined, "rejoins"), 1, "cycle {cycle}");
        assert_eq!(
            int_of(&rejoined, "divergent_records_discarded"),
            0,
            "cycle {cycle}: a drained primary has no divergent tail"
        );
        let promoted = failover_gauges(target_addr);
        assert_eq!(int_of(&promoted, "promotions"), 1, "cycle {cycle}");
    }

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

// ---------------------------------------------------------------------
// Split brain: the stale primary fences itself and refuses writes
// ---------------------------------------------------------------------

#[test]
fn stale_primary_is_fenced_and_refuses_writes_with_409() {
    let (primary, dir) = start_primary("fence");
    let addr = primary.addr();
    let replica = start_replica(addr);
    let seeded = define_concept(addr, &ns("BeforeFailover")).unwrap();
    assert!(replica.wait_for_epoch(seeded, Duration::from_secs(20)));

    // Promote while the old primary still runs: a split brain in the
    // making — the fencing term resolves it.
    let response = client::post_json(replica.addr(), "/admin/promote", "{}").unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let ack = json::parse(&response.body).unwrap();
    assert_eq!(int_of(&ack, "term"), 2);
    assert_eq!(str_of(&ack, "role"), "primary");

    // First contact with evidence of the newer term — a replica-style
    // stream request stamped term=2 — fences the old primary on the spot.
    let raw = client::get_raw(
        addr,
        "/replication/stream?generation=0&from=0&wait_ms=0&term=2",
    )
    .unwrap();
    assert_eq!(raw.status, 409);
    assert!(String::from_utf8_lossy(&raw.body).contains("fencing"));

    // Steward writes on the fenced node: 409 carrying the observed term
    // (the exactly-one-writable-node-per-term invariant, negative half).
    let denied = define_concept(addr, &ns("AfterFence")).unwrap_err();
    assert_eq!(denied.status, 409, "{}", denied.body);
    let body = json::parse(&denied.body).unwrap();
    assert_eq!(int_of(&body, "observed_term"), 2);
    // ...while the new primary accepts (positive half).
    define_concept(replica.addr(), &ns("AfterFence")).unwrap();

    // The fenced node keeps serving reads, honestly labelled degraded.
    let health = get_json(addr, "/healthz");
    assert_eq!(str_of(&health, "status"), "degraded");
    assert_eq!(int_of(&health, "fenced_by_term"), 2);
    assert_eq!(int_of(&health, "term"), 1);
    let (snapshot, _) = snapshot_of(addr);
    assert!(snapshot.contains("BeforeFailover"));

    // Explicit fencing: a stale term is refused, a newer one lands.
    let stale = client::post_json(addr, "/admin/fence", r#"{"term": 1}"#).unwrap();
    assert_eq!(stale.status, 409, "{}", stale.body);
    let newer = client::post_json(addr, "/admin/fence", r#"{"term": 9}"#).unwrap();
    assert_eq!(newer.status, 200, "{}", newer.body);
    let newer = json::parse(&newer.body).unwrap();
    assert_eq!(newer.get("fenced").and_then(Value::as_bool), Some(true));

    // Gauges: the fenced node counted its rejections (stream fence,
    // steward denial, stale explicit fence); the new primary counted the
    // promotion and reports the new term on both /epoch and /metrics.
    let fenced = failover_gauges(addr);
    assert!(int_of(&fenced, "fenced_rejections") >= 3);
    assert_eq!(fenced.get("fenced").and_then(Value::as_bool), Some(true));
    let promoted = failover_gauges(replica.addr());
    assert_eq!(int_of(&promoted, "promotions"), 1);
    assert_eq!(int_of(&promoted, "term"), 2);
    assert_eq!(int_of(&get_json(replica.addr(), "/epoch"), "term"), 2);

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Divergence: a demoted primary discards its unreplicated tail on rejoin
// ---------------------------------------------------------------------

#[test]
fn demoted_primary_rejoins_and_discards_its_divergent_tail() {
    let seed = chaos_seed();
    let old_dir = temp_dir("rejoin-old");
    let new_dir = temp_dir("rejoin-new");
    let primary = start_primary_in(old_dir.clone());
    let addr = primary.addr();
    // The replica follows through a proxy so the partition can outlive
    // the connection: `stop()` kills the listener, reconnects fail.
    let proxy = Proxy::start(addr);
    let replica = start_replica_at(&proxy.addr.to_string(), Some(new_dir.clone()), seed);

    let shared = define_concept(addr, &ns("SharedHistory")).unwrap();
    assert!(replica.wait_for_epoch(shared, Duration::from_secs(20)));

    // Partition the replica away for good, then keep writing on the
    // doomed primary: three acknowledged mutations that never replicate.
    proxy.stop();
    for i in 0..3 {
        define_concept(addr, &ns(&format!("Doomed{i}"))).unwrap();
    }
    primary.shutdown(); // the divergent journal survives in old_dir

    // The partitioned survivor is promoted (it never saw the tail)...
    let response = client::post_json(replica.addr(), "/admin/promote", "{}").unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let new_addr = replica.addr();
    // ...and history moves on under term 2.
    let moved_on = define_concept(new_addr, &ns("NewHistory")).unwrap();

    // The demoted primary rejoins over its old journal: it recovers
    // (serving stale reads), presents its term-1 credentials, learns the
    // fork epoch from the 409 handshake, discards exactly its three
    // divergent records, purges, and resyncs from the new snapshot.
    let rejoined = start_replica_at(&new_addr.to_string(), Some(old_dir.clone()), mix(seed, 7));
    let rejoined_addr = rejoined.addr();
    wait_until(Duration::from_secs(30), "rejoin convergence", || {
        let gauges = failover_gauges(rejoined_addr);
        let epoch = get_json(rejoined_addr, "/epoch");
        int_of(&gauges, "rejoins") >= 1 && int_of(&epoch, "metadata_epoch") as u64 == moved_on
    });
    let gauges = failover_gauges(rejoined_addr);
    assert_eq!(int_of(&gauges, "rejoins"), 1);
    assert_eq!(int_of(&gauges, "divergent_records_discarded"), 3);
    assert_eq!(int_of(&get_json(rejoined_addr, "/epoch"), "term"), 2);
    let health = get_json(rejoined_addr, "/healthz");
    assert_eq!(str_of(&health, "status"), "ok");
    assert_eq!(str_of(&health, "replica_state"), "replicating");

    // New writes keep propagating; the converged snapshot is
    // byte-identical, contains the surviving history, and none of the
    // doomed tail.
    let extra = define_concept(new_addr, &ns("PostRejoin")).unwrap();
    assert!(rejoined.wait_for_epoch(extra, Duration::from_secs(20)));
    let (on_primary, primary_epoch) = snapshot_of(new_addr);
    let (on_rejoined, rejoined_epoch) = snapshot_of(rejoined_addr);
    assert_eq!(primary_epoch, rejoined_epoch);
    assert_eq!(on_primary, on_rejoined);
    assert!(on_rejoined.contains("SharedHistory"));
    assert!(on_rejoined.contains("NewHistory"));
    assert!(on_rejoined.contains("PostRejoin"));
    assert!(
        !on_rejoined.contains("Doomed"),
        "divergent writes must not survive the rejoin"
    );

    rejoined.shutdown();
    replica.shutdown();
    let _ = std::fs::remove_dir_all(old_dir);
    let _ = std::fs::remove_dir_all(new_dir);
}

// ---------------------------------------------------------------------
// Property: promotion after ANY replayed prefix matches the primary
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Promoting a replica that replayed an arbitrary WAL prefix opens a
    /// durable store that recovers to the exact snapshot the primary had
    /// at that epoch, under the bumped term starting there.
    #[test]
    fn promotion_after_any_replayed_prefix_matches_the_primary(
        codes in proptest::collection::vec(any::<u8>(), 1..24),
        prefix_selector in any::<u16>(),
    ) {
        let ops = build_ops(&codes);
        let primary_dir = temp_dir("promote-prop-primary");
        let promoted_dir = temp_dir("promote-prop-promoted");
        let (store, mut primary, _report) =
            MetaStore::attach(&primary_dir, FsyncPolicy::Never, Mdm::new()).unwrap();
        for op in &ops {
            op.apply(&mut primary).unwrap();
        }
        let prefix = prefix_selector as usize % (ops.len() + 1);

        // Ship the prefix over the wire format and replay it replica-style.
        let batch = store.replication_batch(0, 0, prefix, primary.epoch());
        let replica = replay_batch(&ReplicationBatch::decode(&batch.encode()).unwrap());

        // Promote the replayed state into its own store at term 2...
        let promoted =
            MetaStore::promote_in(&promoted_dir, FsyncPolicy::Never, &replica, 2).unwrap();
        drop(promoted);

        // ...and recover it: the snapshot is the primary's at that epoch,
        // the WAL is empty, and the term starts at the promotion epoch.
        let mut reference = Mdm::new();
        for op in &ops[..prefix] {
            op.apply(&mut reference).unwrap();
        }
        let (reopened, recovered) = Store::open(&promoted_dir, FsyncPolicy::Never)
            .unwrap()
            .expect("promotion created a store");
        prop_assert_eq!(recovered.snapshot, reference.snapshot_stamped());
        prop_assert_eq!(recovered.base_epoch, reference.epoch());
        prop_assert!(recovered.records.is_empty());
        prop_assert_eq!(reopened.term(), 2);
        prop_assert_eq!(reopened.term_start_epoch(), reference.epoch());

        drop(store);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&promoted_dir);
    }
}

// ---------------------------------------------------------------------
// Promotion refusals: never fork the timeline from unfit state
// ---------------------------------------------------------------------

#[test]
fn unfit_nodes_refuse_promotion_with_a_clear_409() {
    // A poisoned replica (corrupt WAL record from a hostile primary) may
    // have diverged: promotion is refused, naming the poisoned offset.
    let mut seed_mdm = Mdm::new();
    seed_mdm
        .define_concept(&mdm_core::usecase::ex("Player"))
        .unwrap();
    let batch = ReplicationBatch {
        term: 1,
        term_start_epoch: 0,
        generation: 1,
        base_epoch: seed_mdm.epoch(),
        primary_epoch: seed_mdm.epoch() + 1,
        start: 0,
        wal_len: 1,
        snapshot: Some(seed_mdm.snapshot_stamped()),
        records: vec![WalRecord {
            epoch: seed_mdm.epoch() + 1,
            // Tag 250 is no MutationOp: replay poisons at offset 0.
            payload: vec![250, 1, 2, 3],
        }],
    };
    let hostile = hostile_primary(batch);
    let poisoned = start_replica_at(&hostile.to_string(), None, chaos_seed());
    wait_until(Duration::from_secs(10), "replica to poison", || {
        poisoned.status().state() == ReplicaState::Poisoned
    });
    let denied = client::post_json(poisoned.addr(), "/admin/promote", "{}").unwrap();
    assert_eq!(denied.status, 409, "{}", denied.body);
    assert!(denied.body.contains("poisoned"), "{}", denied.body);
    assert!(denied.body.contains("offset 0"), "{}", denied.body);
    poisoned.shutdown();

    // A replica that never bootstrapped holds nothing worth promoting.
    let unbootstrapped = start_replica_at("127.0.0.1:1", None, chaos_seed());
    let denied = client::post_json(unbootstrapped.addr(), "/admin/promote", "{}").unwrap();
    assert_eq!(denied.status, 409, "{}", denied.body);
    assert!(
        denied.body.contains("never bootstrapped"),
        "{}",
        denied.body
    );
    // The replica arm of /admin/fence: it adopts the newer term (so its
    // next stream request would fence a stale primary).
    let fenced =
        client::post_json(unbootstrapped.addr(), "/admin/fence", r#"{"term": 7}"#).unwrap();
    assert_eq!(fenced.status, 200, "{}", fenced.body);
    let fenced = json::parse(&fenced.body).unwrap();
    assert_eq!(str_of(&fenced, "role"), "replica");
    assert_eq!(int_of(&fenced, "term"), 7);
    unbootstrapped.shutdown();

    // A primary is already a primary.
    let (primary, dir) = start_primary("promote-refuse");
    let denied = client::post_json(primary.addr(), "/admin/promote", "{}").unwrap();
    assert_eq!(denied.status, 409, "{}", denied.body);
    assert!(denied.body.contains("not a replica"), "{}", denied.body);
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

//! The governance-of-evolution scenario (E8) and the LAV-vs-GAV
//! differential under randomized evolution streams (the measured core of
//! experiment P3).

use mdm_core::synthetic::{chain_walk, mdm_from_synthetic};
use mdm_core::usecase;
use mdm_wrappers::football;
use mdm_wrappers::workload::{build, evolve_all, WorkloadConfig};

#[test]
fn e8_queries_survive_the_breaking_release() {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).unwrap();
    let walk = usecase::figure8_walk();

    // Before the governance step: the query runs but misses the players the
    // provider moved to the v2 endpoint.
    let before = mdm.query(&walk).unwrap();
    assert!(!before.render().contains("Zlatan Ibrahimovic"));

    // Steward registers the v2 wrapper and mapping — the analyst's walk is
    // untouched.
    usecase::register_players_v2(&mut mdm, &eco).unwrap();
    let after = mdm.query(&walk).unwrap();

    // "the two schema versions are now fetched and yield correct results"
    assert!(after.render().contains("Zlatan Ibrahimovic"));
    assert!(after.table.len() > before.table.len());
    assert!(after.rewriting.branch_count() > before.rewriting.branch_count());

    // Every pre-release row is still in the post-release answer
    // (monotonicity of LAV under added wrappers).
    for row in before.table.rows() {
        assert!(
            after.table.rows().contains(row),
            "row {row:?} lost after the release"
        );
    }
}

#[test]
fn lav_results_are_monotonic_under_releases() {
    // Synthetic: each extra version adds rows, never removes them.
    let config = WorkloadConfig {
        concepts: 2,
        features_per_concept: 2,
        versions_per_source: 1,
        rows_per_wrapper: 30,
        seed: 5,
    };
    let mut eco = build(&config);
    let mut previous_rows = {
        let mdm = mdm_from_synthetic(&eco).unwrap();
        mdm.query(&chain_walk(&eco, 2)).unwrap().table.len()
    };
    for round in 0..3 {
        evolve_all(&mut eco, 1, 100 + round);
        let mdm = mdm_from_synthetic(&eco).unwrap();
        let rows = mdm.query(&chain_walk(&eco, 2)).unwrap().table.len();
        assert!(
            rows >= previous_rows,
            "round {round}: rows dropped {previous_rows} -> {rows}"
        );
        previous_rows = rows;
    }
}

#[test]
fn gav_goes_stale_where_lav_does_not() {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).unwrap();
    // Freeze GAV at design time (v1 only).
    let gav = mdm.derive_gav().unwrap();

    // Evolution happens.
    usecase::register_players_v2(&mut mdm, &eco).unwrap();

    // LAV answers the walk over both versions.
    let lav_answer = mdm.query(&usecase::figure8_walk()).unwrap();
    let lav_rows = lav_answer.table.len();

    // GAV still rewrites (the old wrappers exist) but scans v1 only: its
    // result is a strict subset.
    let (gav_cq, gav_plan, _) = gav
        .rewrite(mdm.ontology(), &usecase::figure8_walk())
        .unwrap();
    assert!(!gav_cq.atoms.contains(&"w3".to_string()));
    let gav_table = mdm_relational::Executor::new(mdm.catalog())
        .run(&gav_plan)
        .unwrap();
    assert!(
        gav_table.len() < lav_rows,
        "GAV ({}) must miss rows LAV ({lav_rows}) returns",
        gav_table.len()
    );

    // And the v2-only feature is simply unanswerable for stale GAV.
    let nationality_walk = mdm_core::Walk::new()
        .feature(&usecase::ex("Player"), &usecase::ex("playerId"))
        .feature(&usecase::ex("Player"), &usecase::ex("nationality"));
    assert!(gav.rewrite(mdm.ontology(), &nationality_walk).is_err());
    // While LAV answers it.
    assert!(mdm.query(&nationality_walk).is_ok());
}

#[test]
fn randomized_evolution_stream_keeps_lav_answering() {
    // 10 evolution events over a 3-concept chain; after every event the
    // walk must still rewrite and return at least the original rows.
    let config = WorkloadConfig {
        concepts: 3,
        features_per_concept: 2,
        versions_per_source: 1,
        rows_per_wrapper: 15,
        seed: 77,
    };
    let mut eco = build(&config);
    let baseline = {
        let mdm = mdm_from_synthetic(&eco).unwrap();
        mdm.query(&chain_walk(&eco, 3)).unwrap().table.len()
    };
    assert!(baseline > 0);
    for event in 0..10 {
        evolve_all(&mut eco, 1, 1000 + event);
        let mdm = mdm_from_synthetic(&eco).unwrap();
        let walk = chain_walk(&eco, 3);
        match mdm.query(&walk) {
            Ok(answer) => assert!(
                answer.table.len() >= baseline,
                "event {event}: {} < baseline {baseline}",
                answer.table.len()
            ),
            Err(e) => {
                // The only acceptable failure is the UCQ-width guard; a
                // rewriting crash would reproduce the problem MDM solves.
                assert!(
                    e.message().contains("union branches"),
                    "event {event}: unexpected failure {e}"
                );
                return;
            }
        }
    }
}

#[test]
fn breaking_changes_produce_dangling_bindings_outside_mdm() {
    // Quantifies the failure mode for an unmanaged consumer: every breaking
    // change leaves at least one dangling binding in a wrapper that was not
    // re-bound; non-breaking changes leave none.
    use mdm_wrappers::evolution::{ChangeKind, EvolvingSource, FieldType, SchemaSpec};
    use mdm_wrappers::wrapper::{Signature, Wrapper};

    let schema = SchemaSpec::new([
        ("id", FieldType::Int),
        ("name", FieldType::Text),
        ("rating", FieldType::Int),
    ]);
    let mut source = EvolvingSource::new("API", schema, 10, 3);
    let bind_v = |source: &EvolvingSource, version: u32| {
        Wrapper::over_release(
            Signature::new(format!("naive_v{version}"), ["id", "name", "rating"]).unwrap(),
            "API",
            source.endpoint.release(version).unwrap().clone(),
            [("id", "id"), ("name", "name"), ("rating", "rating")],
        )
        .unwrap()
    };

    // Non-breaking: ADD.
    source
        .evolve(ChangeKind::AddField {
            name: "bonus".to_string(),
            field_type: FieldType::Int,
        })
        .unwrap();
    assert!(bind_v(&source, 2).dangling_bindings().unwrap().is_empty());

    // Breaking: RENAME.
    source
        .evolve(ChangeKind::RenameField {
            from: "name".to_string(),
            to: "full_name".to_string(),
        })
        .unwrap();
    assert_eq!(
        bind_v(&source, 3).dangling_bindings().unwrap(),
        vec!["name"]
    );

    // Breaking: REMOVE.
    source
        .evolve(ChangeKind::RemoveField {
            name: "rating".to_string(),
        })
        .unwrap();
    let naive_v4 = bind_v(&source, 4);
    let dangling = naive_v4.dangling_bindings().unwrap();
    assert!(dangling.contains(&"rating"));
}

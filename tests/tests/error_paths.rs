//! Systematic error-path coverage of the public API: every failure mode
//! surfaces as a typed [`MdmError`] with an actionable message — never a
//! panic, never silent partial state.

use mdm_core::mapping::MappingBuilder;
use mdm_core::usecase::{self, ex, sports_team};
use mdm_core::{Mdm, Walk};
use mdm_wrappers::football;
use mdm_wrappers::rest::{Format, Release, RestSource};
use mdm_wrappers::wrapper::{Signature, Wrapper};

fn system() -> Mdm {
    let eco = football::build_default();
    usecase::football_mdm(&eco).unwrap()
}

#[test]
fn ontology_errors() {
    let mut mdm = system();
    // Feature on unknown concept.
    let err = mdm.define_feature(&ex("Ghost"), &ex("f")).unwrap_err();
    assert_eq!(err.category(), "ontology");
    // Relation to unknown concept.
    let err = mdm
        .define_relation(&ex("Player"), &ex("p"), &ex("Ghost"))
        .unwrap_err();
    assert_eq!(err.category(), "ontology");
    // Feature stealing across concepts.
    let err = mdm
        .define_feature(&sports_team(), &ex("playerName"))
        .unwrap_err();
    assert!(err.message().contains("exactly one concept"));
}

#[test]
fn registration_errors() {
    let mut mdm = system();
    let release = Release {
        version: 1,
        format: Format::Json,
        body: "[]".to_string(),
        notes: String::new(),
    };
    // Wrapper against an unregistered source.
    let orphan = Wrapper::identity_over_release(
        Signature::new("w_orphan", ["id"]).unwrap(),
        "UnknownSource",
        release.clone(),
    )
    .unwrap();
    let err = mdm.register_wrapper(orphan).unwrap_err();
    assert_eq!(err.category(), "registration");
    assert!(err.message().contains("UnknownSource"));
    // Duplicate wrapper name.
    let dup = Wrapper::identity_over_release(
        Signature::new("w1", ["id"]).unwrap(),
        "PlayersAPI",
        release,
    )
    .unwrap();
    let err = mdm.register_wrapper(dup).unwrap_err();
    assert!(err.message().contains("already registered"));
    // Metadata unchanged by the failures: still 6 wrappers.
    assert_eq!(mdm.ontology().wrappers().len(), 6);
    assert_eq!(mdm.catalog().len(), 6);
}

#[test]
fn mapping_errors_leave_no_partial_state() {
    let mut mdm = system();
    let eco = football::build_default();
    mdm.register_wrapper(football::w3_players_v2(&eco)).unwrap();
    let mappings_before = mdm.ontology().mappings().named_graph_count();
    let source_before = mdm.ontology().source_graph().len();
    // Valid contour but a sameAs to a foreign attribute → rejected whole.
    let err = mdm
        .define_mapping(
            MappingBuilder::for_wrapper("w3")
                .cover_concept(&ex("Player"))
                .cover_feature(&ex("playerId"))
                .same_as("id", &ex("playerId"))
                .same_as("name", &ex("playerId")), // w3 has no 'name'
        )
        .unwrap_err();
    assert_eq!(err.category(), "mapping");
    assert_eq!(
        mdm.ontology().mappings().named_graph_count(),
        mappings_before
    );
    assert_eq!(mdm.ontology().source_graph().len(), source_before);
}

#[test]
fn walk_and_rewrite_errors() {
    let mdm = system();
    // Disconnected walk.
    let err = mdm
        .query(
            &Walk::new()
                .feature(&ex("Player"), &ex("playerName"))
                .feature(&ex("Country"), &ex("countryName")),
        )
        .unwrap_err();
    assert_eq!(err.category(), "walk");
    assert!(err.message().contains("not connected"));
    // Relation direction matters.
    let err = mdm
        .query(
            &Walk::new()
                .feature(&ex("Player"), &ex("playerName"))
                .feature(&sports_team(), &ex("teamName"))
                .relation(&sports_team(), &ex("hasTeam"), &ex("Player")),
        )
        .unwrap_err();
    assert!(err.message().contains("not a relation"));
}

#[test]
fn execution_errors_from_broken_sources() {
    // A wrapper over a malformed payload: registration succeeds (metadata
    // is schema-level), execution surfaces the parse failure.
    let mut mdm = system();
    let mut broken_api = RestSource::new("BrokenAPI");
    broken_api.publish(Release {
        version: 1,
        format: Format::Json,
        body: "{definitely not json".to_string(),
        notes: String::new(),
    });
    mdm.add_source("BrokenAPI").unwrap();
    let wrapper = Wrapper::identity_over_release(
        Signature::new("wbroken", ["id", "teamName"]).unwrap(),
        "BrokenAPI",
        broken_api.release(1).unwrap().clone(),
    )
    .unwrap();
    mdm.register_wrapper(wrapper).unwrap();
    mdm.define_mapping(
        MappingBuilder::for_wrapper("wbroken")
            .cover_concept(&sports_team())
            .cover_feature(&ex("teamId"))
            .cover_feature(&ex("teamName"))
            .same_as("id", &ex("teamId"))
            .same_as("teamName", &ex("teamName")),
    )
    .unwrap();
    let err = mdm
        .query(&Walk::new().feature(&sports_team(), &ex("teamName")))
        .unwrap_err();
    assert_eq!(err.category(), "execution");
    assert!(err.message().contains("json"), "{err}");
}

#[test]
fn repository_errors() {
    assert!(Mdm::restore_metadata("garbage").is_err());
    assert!(Mdm::restore_metadata("# MDM SNAPSHOT v1\ntruncated").is_err());
    // A snapshot with corrupted Turtle inside.
    let mut snapshot = system().snapshot();
    snapshot.push_str("\n=== MAPPINGS ===\nGRAPH <oops> { broken");
    // Either section parsing or mapping parsing fails — must be an error,
    // not a partial restore.
    assert!(Mdm::restore_metadata(&snapshot).is_err());
}

#[test]
fn onboard_errors_are_atomic_per_wrapper() {
    let mut mdm = system();
    let endpoint = RestSource::new("Empty");
    // Config referencing a version the endpoint never published.
    let config = r#"{
        "source": "Empty",
        "wrappers": [{
            "name": "we1",
            "version": 5,
            "bindings": [{"attribute": "id", "column": "id"}]
        }]
    }"#;
    let err = mdm.onboard_source(&endpoint, config).unwrap_err();
    assert_eq!(err.category(), "registration");
    assert!(err.message().contains("v5"));
    // Nothing was registered.
    assert!(!mdm
        .ontology()
        .wrappers()
        .iter()
        .any(|w| w.local_name() == "we1"));
}

//! Fault-tolerance integration tests: deterministic fault injection on the
//! wrappers, retry/backoff absorption, degraded-mode federated execution
//! with completeness reports, circuit breakers in `/metrics`, server load
//! shedding (503 + `Retry-After`) and graceful drain on shutdown.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;

use mdm_core::usecase;
use mdm_core::Mdm;
use mdm_dataform::{json, Value};
use mdm_relational::{BreakerConfig, Deadline, RetryPolicy};
use mdm_server::{client, serve, ServerConfig};
use mdm_wrappers::football;
use mdm_wrappers::FaultPlan;

const FIG8_WALK: &str =
    "ex:Player { ex:playerName }\nsc:SportsTeam { ex:teamName }\nex:Player -ex:hasTeam-> sc:SportsTeam";

/// The evolved football system: v1 wrappers plus the breaking Players v2
/// release (wrapper `w3`), i.e. the system that produced Table 1.
fn evolved_mdm() -> Mdm {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).unwrap();
    usecase::register_players_v2(&mut mdm, &eco).unwrap();
    mdm
}

/// A retry policy that never sleeps — keeps the suite fast while still
/// exercising the full attempt accounting.
fn instant_retries(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        jitter_seed: 0x7e57,
    }
}

fn table1_golden() -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .join("artifacts/table1_query_output.txt");
    std::fs::read_to_string(path).expect("checked-in Table 1 artifact")
}

fn walk_body() -> String {
    json::to_string(&Value::object([("walk", Value::string(FIG8_WALK))]))
}

// ---------------------------------------------------------------------
// (a) transient faults + retry reproduce the fault-free answer exactly
// ---------------------------------------------------------------------

#[test]
fn transient_faults_with_retry_reproduce_table1_byte_for_byte() {
    let mut mdm = evolved_mdm();
    // Every wrapper fails its first two fetch attempts, then recovers —
    // fully deterministic (rates are 0 or 1, no randomness involved).
    mdm.set_fault_plan(Some(Arc::new(
        FaultPlan::seeded(0xfa17)
            .transient_window(1, 1.0)
            .transient_window(3, 0.0),
    )));
    mdm.set_retry_policy(instant_retries(4));

    let answer = mdm
        .query_degraded(&usecase::figure8_walk(), Deadline::none())
        .expect("transient faults are absorbed by the retry policy");

    assert_eq!(
        answer.render(),
        table1_golden(),
        "the degraded-mode answer under transient faults must match Table 1"
    );
    assert!(answer.completeness.is_complete());
    // The UCQ has four branches: {playerName, hasTeam} each come from w1
    // or w3 independently, always joined with w2 for the team name.
    assert_eq!(answer.completeness.total_branches, 4);
    assert_eq!(answer.completeness.executed_branches, 4);
    // Two failed attempts per wrapper; w1, w2, w3 each pay them once
    // (attempt counters are per wrapper, shared across branches).
    assert_eq!(
        answer.completeness.retries,
        6,
        "{}",
        answer.completeness.summary()
    );
    assert!(
        answer
            .completeness
            .contributors
            .iter()
            .any(|c| c == "w3@v2"),
        "contributors name wrapper@version: {:?}",
        answer.completeness.contributors
    );
}

// ---------------------------------------------------------------------
// (b) a dead wrapper degrades the UCQ with an honest completeness report
//     and trips its circuit breaker (visible in /metrics)
// ---------------------------------------------------------------------

#[test]
fn dead_wrapper_degrades_with_completeness_report_and_open_breaker() {
    let mut mdm = evolved_mdm();
    mdm.set_fault_plan(Some(Arc::new(FaultPlan::seeded(7).kill("w3"))));
    mdm.set_retry_policy(RetryPolicy::none());
    // The per-query scan cache fetches w3 exactly once no matter how many
    // branches reference it, so one dead-wrapper query records exactly one
    // breaker failure; threshold 1 trips it at the end of the first query.
    mdm.set_breaker_config(BreakerConfig {
        failure_threshold: 1,
        cooldown: Duration::from_secs(60),
    });
    let walk = usecase::figure8_walk();
    let golden = table1_golden();

    let first = mdm.query_degraded(&walk, Deadline::none()).unwrap();
    assert!(!first.completeness.is_complete());
    // Only the pure-w1 branch survives; every w3-touching branch drops.
    assert_eq!(first.completeness.total_branches, 4);
    assert_eq!(first.completeness.executed_branches, 1);
    assert_eq!(first.completeness.dropped.len(), 3);
    for dropped in &first.completeness.dropped {
        assert!(
            dropped.wrappers.contains(&"w3@v2".to_string()),
            "dropped branch names the dead wrapper with its version: {dropped:?}"
        );
        assert_eq!(dropped.kind, "permanent");
        assert!(
            dropped.reason.contains("injected terminal fault"),
            "reason surfaces the underlying error: {}",
            dropped.reason
        );
    }
    assert!(first.completeness.summary().starts_with("PARTIAL"));

    // The surviving rows are exactly a subset of the fault-free Table 1:
    // w3's contribution (the only source of Zlatan Ibrahimovic) is gone.
    let golden_lines: BTreeSet<&str> = golden.lines().collect();
    for line in first.render().lines() {
        assert!(
            golden_lines.contains(line),
            "degraded answer invented a row: {line}"
        );
    }
    let rendered = first.render();
    assert!(rendered.contains("Lionel Messi"));
    assert!(!rendered.contains("Zlatan Ibrahimovic"));

    // The single (cached) failed fetch tripped the breaker during that
    // query — all three dropped branches shared one wrapper failure …
    let w3 = mdm
        .breaker_snapshots()
        .into_iter()
        .find(|b| b.relation == "w3")
        .expect("w3 breaker tracked");
    assert_eq!(w3.state, "open");
    assert_eq!(w3.failures_total, 1);

    // … so the next query is rejected at admission, without touching w3,
    // and admission rejections do not inflate the failure count.
    let second = mdm.query_degraded(&walk, Deadline::none()).unwrap();
    assert!(!second.completeness.is_complete());
    assert!(
        second
            .completeness
            .dropped
            .iter()
            .all(|d| d.reason.contains("circuit breaker open")),
        "open breaker short-circuits the scan: {:?}",
        second.completeness.dropped
    );
    let w3 = mdm
        .breaker_snapshots()
        .into_iter()
        .find(|b| b.relation == "w3")
        .expect("w3 breaker tracked");
    assert_eq!(w3.failures_total, 1);

    // The open breaker and the completeness report are visible over HTTP.
    let server = serve(ServerConfig::default(), mdm).unwrap();
    let metrics = client::get(server.addr(), "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let parsed = json::parse(&metrics.body).expect("metrics is JSON");
    let breakers = parsed
        .get("breakers")
        .and_then(Value::as_array)
        .expect("metrics exposes breakers");
    let w3_json = breakers
        .iter()
        .find(|b| b.get("relation").and_then(Value::as_str) == Some("w3"))
        .expect("w3 breaker in /metrics");
    assert_eq!(w3_json.get("state").and_then(Value::as_str), Some("open"));

    let answer = client::post_json(server.addr(), "/analyst/query", &walk_body()).unwrap();
    assert_eq!(answer.status, 200, "{}", answer.body);
    let parsed = json::parse(&answer.body).unwrap();
    let completeness = parsed.get("completeness").expect("completeness field");
    assert_eq!(
        completeness.get("complete").and_then(Value::as_bool),
        Some(false)
    );
    assert!(answer.body.contains("w3@v2"), "{}", answer.body);
    server.shutdown();
}

// ---------------------------------------------------------------------
// (c) a saturated server sheds load with 503 + Retry-After
// ---------------------------------------------------------------------

#[test]
fn saturated_server_sheds_503_with_retry_after() {
    let mut mdm = evolved_mdm();
    // Every fetch stalls 150ms, so one analyst query occupies the single
    // worker long enough to observe the queue filling up.
    mdm.set_fault_plan(Some(Arc::new(
        FaultPlan::seeded(3).latency(Duration::from_millis(150), 1.0),
    )));
    let config = ServerConfig {
        workers: 1,
        max_pending: 1,
        retry_after: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = serve(config, mdm).unwrap();
    let addr = server.addr();

    let slow = thread::spawn(move || client::post_json(addr, "/analyst/query", &walk_body()));
    thread::sleep(Duration::from_millis(150));
    // Fills the one queue slot while the worker is busy.
    let queued = thread::spawn(move || client::post_json(addr, "/analyst/query", &walk_body()));
    thread::sleep(Duration::from_millis(100));

    // Queue saturated: this connection is shed by the acceptor.
    let shed = client::get(addr, "/healthz").unwrap();
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert_eq!(shed.header("retry-after"), Some("2"));
    assert!(shed.body.contains("saturated"), "{}", shed.body);

    // The in-flight and queued requests still complete normally.
    let slow = slow.join().unwrap().unwrap();
    assert_eq!(slow.status, 200, "{}", slow.body);
    let queued = queued.join().unwrap().unwrap();
    assert_eq!(queued.status, 200, "{}", queued.body);

    let metrics = client::get(addr, "/metrics").unwrap();
    let parsed = json::parse(&metrics.body).unwrap();
    let availability = parsed.get("availability").expect("availability section");
    let shed_total = availability
        .get("shed_total")
        .and_then(Value::as_number)
        .and_then(|n| n.as_i64())
        .unwrap();
    assert!(shed_total >= 1, "shed_total = {shed_total}");
    server.shutdown();
}

// ---------------------------------------------------------------------
// (d) shutdown drains: in-flight requests complete, queued ones get 503
// ---------------------------------------------------------------------

#[test]
fn shutdown_drains_inflight_requests_and_sheds_queued_ones() {
    let mut mdm = evolved_mdm();
    mdm.set_fault_plan(Some(Arc::new(
        FaultPlan::seeded(9).latency(Duration::from_millis(200), 1.0),
    )));
    let config = ServerConfig {
        workers: 1,
        max_pending: 4,
        ..ServerConfig::default()
    };
    let server = serve(config, mdm).unwrap();
    let addr = server.addr();

    let inflight = thread::spawn(move || client::post_json(addr, "/analyst/query", &walk_body()));
    thread::sleep(Duration::from_millis(150));
    // Queued behind the busy worker; never reaches a worker before drain.
    let queued = thread::spawn(move || client::get(addr, "/healthz"));
    thread::sleep(Duration::from_millis(100));

    // Blocks until the acceptor stopped, the in-flight response was
    // written, the queue was drained and every worker joined.
    server.shutdown();

    let inflight = inflight.join().unwrap().expect("in-flight answered");
    assert_eq!(inflight.status, 200, "{}", inflight.body);
    assert!(inflight.body.contains("Lionel Messi"), "{}", inflight.body);

    let queued = queued.join().unwrap().expect("queued answered, not reset");
    assert_eq!(queued.status, 503, "{}", queued.body);
    assert!(queued.body.contains("shutting down"), "{}", queued.body);
    assert!(queued.header("retry-after").is_some());
}

// ---------------------------------------------------------------------
// (e) deadlines surface as timeouts (504 over HTTP)
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_maps_to_gateway_timeout() {
    let mut mdm = evolved_mdm();
    let err = mdm
        .query_degraded(&usecase::figure8_walk(), Deadline::in_ms(0))
        .expect_err("zero budget cannot execute");
    assert_eq!(err.category(), "timeout");

    mdm.set_fault_plan(None);
    let config = ServerConfig {
        request_deadline: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let server = serve(config, mdm).unwrap();
    let response = client::post_json(server.addr(), "/analyst/query", &walk_body()).unwrap();
    assert_eq!(response.status, 504, "{}", response.body);
    assert!(response.body.contains("timeout"), "{}", response.body);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Transient-only fault schedules are *invisible* in the result: with
    /// enough retry budget the answer table is identical to the fault-free
    /// run and the completeness report stays complete.
    #[test]
    fn transient_faults_never_change_the_answer(seed in 0u64..10_000, rate_pct in 0u32..31) {
        let walk = usecase::figure8_walk();
        let mut mdm = evolved_mdm();
        mdm.set_retry_policy(instant_retries(12));
        let baseline = mdm.query_degraded(&walk, Deadline::none()).unwrap();

        mdm.set_fault_plan(Some(Arc::new(
            FaultPlan::seeded(seed).transient_rate(f64::from(rate_pct) / 100.0),
        )));
        let faulted = mdm.query_degraded(&walk, Deadline::none()).unwrap();

        prop_assert_eq!(&baseline.table, &faulted.table);
        prop_assert!(faulted.completeness.is_complete());
        prop_assert_eq!(
            faulted.completeness.contributors,
            baseline.completeness.contributors
        );
    }

    /// Killing any single wrapper yields a strict subset of the fault-free
    /// rows plus a completeness report naming the dead wrapper — or, when
    /// the victim carried *every* branch (w2 joins both), a hard error.
    #[test]
    fn killed_wrapper_degrades_to_a_named_subset(seed in 0u64..10_000, victim_idx in 0usize..3) {
        let victim = ["w1", "w2", "w3"][victim_idx];
        let walk = usecase::figure8_walk();
        let mut mdm = evolved_mdm();
        mdm.set_retry_policy(RetryPolicy::none());
        let baseline = mdm.query_degraded(&walk, Deadline::none()).unwrap();

        mdm.set_fault_plan(Some(Arc::new(FaultPlan::seeded(seed).kill(victim))));
        match mdm.query_degraded(&walk, Deadline::none()) {
            Ok(answer) => {
                prop_assert!(!answer.completeness.is_complete());
                prop_assert!(
                    answer.completeness.dropped.iter().any(|d| {
                        d.wrappers.iter().any(|w| w.starts_with(victim))
                    }),
                    "dropped branches {:?} must name {}",
                    answer.completeness.dropped,
                    victim
                );
                let baseline_rows: BTreeSet<_> = baseline.table.rows().iter().collect();
                for row in answer.table.rows() {
                    prop_assert!(baseline_rows.contains(row), "invented row {row:?}");
                }
                prop_assert!(answer.table.len() < baseline.table.len());
            }
            Err(e) => {
                // Only the branch-carrying wrapper w2 can take down the
                // whole UCQ; anything else must degrade, not fail.
                prop_assert_eq!(victim, "w2");
                prop_assert_eq!(e.category(), "execution");
            }
        }
    }
}

//! Crash-recovery suite for the durable metadata store (`mdm-store` +
//! `mdm_core::durable`).
//!
//! The central property: for ANY interleaving of steward mutations and ANY
//! crash point — a record boundary, a torn mid-record write, or a flipped
//! bit — recovery yields a state whose canonical snapshot is **byte
//! identical** to replaying the surviving prefix of the *original* ops in
//! memory, with a continuous epoch. The reference replay uses the op values
//! the test itself constructed (never bytes read back from disk), so the
//! property also proves WAL encode/decode fidelity.

use std::path::{Path, PathBuf};

use mdm_core::{FsyncPolicy, Mdm, MetaStore, MutationOp, RecoveryReport};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdm-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ns(local: &str) -> String {
    format!("http://example.org/{local}")
}

/// Deterministically expands action codes into a VALID mutation sequence:
/// every op applies cleanly to a fresh `Mdm` in order. Codes with unmet
/// prerequisites fall back to creating them, so any byte string maps to a
/// useful script.
fn build_ops(codes: &[u8]) -> Vec<MutationOp> {
    // (concept, identifier, extra features)
    let mut concepts: Vec<(String, String, Vec<String>)> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    // (wrapper, concept index) not yet mapped
    let mut unmapped: Vec<(String, usize)> = Vec::new();
    let mut ops = Vec::new();
    let mut serial = 0usize;
    let mut fresh = || {
        serial += 1;
        serial
    };

    for &code in codes {
        match code % 9 {
            // New concept with its identifier (mappings need one).
            0 => {
                let n = fresh();
                let concept = ns(&format!("C{n}"));
                let id = ns(&format!("C{n}_id"));
                ops.push(MutationOp::DefineConcept {
                    concept: concept.clone(),
                });
                ops.push(MutationOp::DefineFeature {
                    concept: concept.clone(),
                    feature: id.clone(),
                    identifier: true,
                });
                concepts.push((concept, id, Vec::new()));
            }
            // New feature on an existing concept.
            1 => {
                if concepts.is_empty() {
                    continue;
                }
                let index = code as usize % concepts.len();
                let n = fresh();
                let feature = ns(&format!("f{n}"));
                ops.push(MutationOp::DefineFeature {
                    concept: concepts[index].0.clone(),
                    feature: feature.clone(),
                    identifier: false,
                });
                concepts[index].2.push(feature);
            }
            // New source.
            2 => {
                let name = format!("S{}", fresh());
                ops.push(MutationOp::AddSource { name: name.clone() });
                sources.push(name);
            }
            // Register a wrapper over the last source.
            3 => {
                if sources.is_empty() || concepts.is_empty() {
                    continue;
                }
                let wrapper = format!("w{}", fresh());
                ops.push(MutationOp::RegisterWrapper {
                    source: sources.last().unwrap().clone(),
                    wrapper: wrapper.clone(),
                    version: (code as u32 % 3) + 1,
                    attributes: vec!["id".into(), "v".into()],
                });
                unmapped.push((wrapper, code as usize % concepts.len()));
            }
            // Map the oldest unmapped wrapper onto its concept.
            4 => {
                let Some((wrapper, concept_index)) = unmapped.first().cloned() else {
                    continue;
                };
                let (concept, id, extras) = &mut concepts[concept_index];
                if extras.is_empty() {
                    // The 'v' attribute needs a non-identifier feature.
                    let feature = ns(&format!("f{}", fresh()));
                    ops.push(MutationOp::DefineFeature {
                        concept: concept.clone(),
                        feature: feature.clone(),
                        identifier: false,
                    });
                    extras.push(feature);
                }
                ops.push(MutationOp::DefineMapping {
                    wrapper,
                    concepts: vec![concept.clone()],
                    features: vec![id.clone(), extras[0].clone()],
                    relations: Vec::new(),
                    same_as: vec![("id".into(), id.clone()), ("v".into(), extras[0].clone())],
                });
                unmapped.remove(0);
            }
            // Relation between two concepts.
            5 => {
                if concepts.len() < 2 {
                    continue;
                }
                let from = code as usize % concepts.len();
                let to = (from + 1) % concepts.len();
                ops.push(MutationOp::DefineRelation {
                    from: concepts[from].0.clone(),
                    property: ns(&format!("rel{}", fresh())),
                    to: concepts[to].0.clone(),
                });
            }
            // New subconcept under an existing concept. Identifiers are
            // inherited through the taxonomy, so the sub reuses sup's.
            6 => {
                if concepts.is_empty() {
                    continue;
                }
                let sup = code as usize % concepts.len();
                let sub = ns(&format!("Sub{}", fresh()));
                ops.push(MutationOp::DefineConcept {
                    concept: sub.clone(),
                });
                ops.push(MutationOp::DefineSubconcept {
                    sub: sub.clone(),
                    sup: concepts[sup].0.clone(),
                });
                let inherited_id = concepts[sup].1.clone();
                concepts.push((sub, inherited_id, Vec::new()));
            }
            // Bind a rendering prefix.
            7 => {
                let n = fresh();
                ops.push(MutationOp::BindPrefix {
                    prefix: format!("p{n}"),
                    namespace: format!("http://example.org/ns{n}#"),
                });
            }
            // Toggle rewriting options.
            _ => {
                ops.push(MutationOp::SetOptions {
                    distinct: code % 2 == 0,
                    max_branches: 4096,
                });
            }
        }
    }
    if ops.is_empty() {
        // Skipped codes can leave nothing; anchor with one concept so
        // every script exercises the journal.
        ops.push(MutationOp::DefineConcept {
            concept: ns("Anchor"),
        });
    }
    ops
}

/// Replays `ops` against a fresh in-memory system — the reference state.
fn reference(ops: &[MutationOp]) -> Mdm {
    let mut mdm = Mdm::new();
    for op in ops {
        op.apply(&mut mdm).unwrap();
    }
    mdm
}

/// Creates a store in `dir` and applies `ops` through the journalling
/// facade, then drops everything without compaction — the on-disk WAL now
/// holds one record per op.
fn run_with_store(dir: &Path, ops: &[MutationOp]) {
    let (meta, mut mdm, report) = MetaStore::attach(dir, FsyncPolicy::Always, Mdm::new()).unwrap();
    assert!(!report.recovered);
    for op in ops {
        op.apply(&mut mdm).unwrap();
    }
    assert_eq!(meta.stats().wal_records, ops.len() as u64);
    drop((meta, mdm)); // kill -9: no shutdown hook runs, the WAL is as-is
}

fn recover(dir: &Path) -> (Mdm, RecoveryReport) {
    let (_meta, mdm, report) = MetaStore::attach(dir, FsyncPolicy::Always, Mdm::new()).unwrap();
    (mdm, report)
}

fn live_wal(dir: &Path) -> PathBuf {
    // CURRENT holds "generation term term_start_epoch" (the fencing term
    // rides along since the failover work); the WAL is named by the first.
    let current = std::fs::read_to_string(dir.join("CURRENT")).unwrap();
    let generation: u64 = current
        .split_whitespace()
        .next()
        .expect("CURRENT names a generation")
        .parse()
        .unwrap();
    dir.join(format!("wal.gen-{generation}.log"))
}

const WAL_HEADER_BYTES: u64 = 28;

/// The recovered state must equal the in-memory replay of the first
/// `report.replayed` ORIGINAL ops — byte-identical snapshot, equal epoch.
fn assert_prefix_equivalence(recovered: &Mdm, report: &RecoveryReport, ops: &[MutationOp]) {
    let survived = report.replayed as usize;
    assert!(survived <= ops.len(), "{survived} > {}", ops.len());
    let expected = reference(&ops[..survived]);
    assert_eq!(
        recovered.snapshot(),
        expected.snapshot(),
        "snapshot diverges after replaying {survived}/{} ops",
        ops.len()
    );
    assert_eq!(recovered.epoch(), expected.epoch(), "epoch diverges");
}

// ---------------------------------------------------------------------
// Deterministic crash tests
// ---------------------------------------------------------------------

/// A canonical 20-action script covering every op kind.
fn sample_codes() -> Vec<u8> {
    vec![0, 1, 2, 3, 4, 0, 5, 6, 7, 8, 1, 2, 3, 4, 5, 1, 3, 4, 7, 8]
}

#[test]
fn clean_restart_replays_everything() {
    let dir = temp_dir("clean");
    let ops = build_ops(&sample_codes());
    run_with_store(&dir, &ops);
    let (recovered, report) = recover(&dir);
    assert_eq!(report.replayed as usize, ops.len());
    assert!(!report.truncated_tail);
    assert_prefix_equivalence(&recovered, &report, &ops);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn epoch_continues_across_crash_and_recovery() {
    let dir = temp_dir("epoch");
    let ops = build_ops(&sample_codes());
    run_with_store(&dir, &ops);

    let (_meta, mut recovered, report) =
        MetaStore::attach(&dir, FsyncPolicy::Always, Mdm::new()).unwrap();
    assert_eq!(
        recovered.epoch(),
        report.replayed,
        "one epoch per op from 0"
    );
    // The next mutation continues the sequence — no silent reset to 0.
    let before = recovered.epoch();
    recovered
        .define_concept(&mdm_rdf::term::Iri::new(ns("AfterCrash").as_str()))
        .unwrap();
    assert_eq!(recovered.epoch(), before + 1);
    drop((_meta, recovered));

    // And that post-recovery mutation is itself journalled + recoverable.
    let (after, report) = recover(&dir);
    assert_eq!(report.replayed, before + 1);
    assert_eq!(after.epoch(), before + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_mid_record_is_truncated_not_fatal() {
    let dir = temp_dir("torn");
    let ops = build_ops(&sample_codes());
    run_with_store(&dir, &ops);
    let wal = live_wal(&dir);
    let len = std::fs::metadata(&wal).unwrap().len();
    // Cut 5 bytes — guaranteed mid-record (record headers alone are 16B).
    let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 5).unwrap();
    drop(file);

    let (recovered, report) = recover(&dir);
    assert!(report.truncated_tail);
    assert_eq!(report.replayed as usize, ops.len() - 1);
    assert_prefix_equivalence(&recovered, &report, &ops);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_after_compaction_replays_only_the_new_wal() {
    let dir = temp_dir("postcompact");
    let ops = build_ops(&sample_codes());
    let split = ops.len() / 2;

    let (meta, mut mdm, _) = MetaStore::attach(&dir, FsyncPolicy::Always, Mdm::new()).unwrap();
    for op in &ops[..split] {
        op.apply(&mut mdm).unwrap();
    }
    meta.compact(&mdm).unwrap();
    for op in &ops[split..] {
        op.apply(&mut mdm).unwrap();
    }
    assert_eq!(meta.stats().wal_records as usize, ops.len() - split);
    let expected_snapshot = mdm.snapshot();
    let expected_epoch = mdm.epoch();
    drop((meta, mdm));

    let (recovered, report) = recover(&dir);
    assert_eq!(report.generation, 2);
    assert_eq!(report.base_epoch as usize, split);
    assert_eq!(report.replayed as usize, ops.len() - split);
    assert_eq!(recovered.snapshot(), expected_snapshot);
    assert_eq!(recovered.epoch(), expected_epoch);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Property tests: crash anywhere, flip anything
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the WAL at ANY byte (record boundary or mid-record)
    /// recovers exactly the surviving prefix of the original mutations.
    #[test]
    fn crash_at_any_byte_recovers_the_surviving_prefix(
        codes in proptest::collection::vec(0u8..=255, 1..32),
        cut_permille in 0u64..=1000,
    ) {
        let ops = build_ops(&codes);
        let dir = temp_dir("prop-cut");
        run_with_store(&dir, &ops);

        let wal = live_wal(&dir);
        let len = std::fs::metadata(&wal).unwrap().len();
        let payload = len - WAL_HEADER_BYTES;
        let cut = WAL_HEADER_BYTES + payload * cut_permille / 1000;
        let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let (recovered, report) = recover(&dir);
        let survived = report.replayed as usize;
        prop_assert!(survived <= ops.len());
        if cut < len {
            prop_assert!(survived < ops.len() || report.truncated_tail);
        }
        let expected = reference(&ops[..survived]);
        prop_assert_eq!(recovered.snapshot(), expected.snapshot());
        prop_assert_eq!(recovered.epoch(), expected.epoch());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping ANY byte of the WAL body makes recovery stop at (or before)
    /// the corrupt record — never crash, never replay garbage.
    #[test]
    fn bit_flip_anywhere_truncates_to_a_valid_prefix(
        codes in proptest::collection::vec(0u8..=255, 1..24),
        flip_permille in 0u64..1000,
        flip_bit in 0u8..8,
    ) {
        let ops = build_ops(&codes);
        let dir = temp_dir("prop-flip");
        run_with_store(&dir, &ops);

        let wal = live_wal(&dir);
        let mut bytes = std::fs::read(&wal).unwrap();
        let body = bytes.len() - WAL_HEADER_BYTES as usize;
        let position = WAL_HEADER_BYTES as usize + body * flip_permille as usize / 1000;
        let position = position.min(bytes.len() - 1);
        bytes[position] ^= 1 << flip_bit;
        std::fs::write(&wal, &bytes).unwrap();

        let (recovered, report) = recover(&dir);
        let survived = report.replayed as usize;
        prop_assert!(survived < ops.len(), "corrupt record must not replay");
        let expected = reference(&ops[..survived]);
        prop_assert_eq!(recovered.snapshot(), expected.snapshot());
        prop_assert_eq!(recovered.epoch(), expected.epoch());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// The durable server: restart, metrics, compaction over HTTP
// ---------------------------------------------------------------------

#[test]
fn server_restart_over_same_data_dir_preserves_acknowledged_mutations() {
    use mdm_dataform::{json, Value};
    use mdm_server::{client, serve, ServerConfig};

    fn get(addr: std::net::SocketAddr, path: &str) -> Value {
        let response = client::get(addr, path).unwrap();
        assert_eq!(response.status, 200, "GET {path}: {}", response.body);
        json::parse(&response.body).expect("response is JSON")
    }
    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Value {
        let response = client::post_json(addr, path, body).unwrap();
        assert_eq!(response.status, 200, "POST {path}: {}", response.body);
        json::parse(&response.body).expect("response is JSON")
    }
    fn int_of(value: &Value, field: &str) -> i64 {
        value
            .get(field)
            .and_then(Value::as_number)
            .and_then(|n| n.as_i64())
            .unwrap_or_else(|| panic!("missing numeric '{field}' in {value:?}"))
    }

    let dir = temp_dir("server");
    let config = || ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // First server life: steward a concept + a source over HTTP.
    let server = serve(config(), Mdm::new()).unwrap();
    let addr = server.addr();
    post(
        addr,
        "/steward/concepts",
        r#"{"concept": "<http://example.org/Player>"}"#,
    );
    post(addr, "/steward/sources", r#"{"name": "PlayersAPI"}"#);
    let metrics = get(addr, "/metrics");
    let journal = metrics.get("journal").expect("journal metrics present");
    assert_eq!(int_of(journal, "wal_records"), 2);
    assert_eq!(
        journal.get("fsync_policy").and_then(Value::as_str),
        Some("always")
    );
    let health = get(addr, "/healthz");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    server.shutdown(); // graceful drain: flush + fsync

    // Second life: the journal replays, the epoch continues.
    let server = serve(config(), Mdm::new()).unwrap();
    let addr = server.addr();
    let health = get(addr, "/healthz");
    assert_eq!(int_of(&health, "epoch"), 2, "both mutations survived");

    // Compact over HTTP: generation advances, the WAL resets.
    let compacted = post(addr, "/admin/compact", "{}");
    assert_eq!(int_of(&compacted, "generation"), 2);
    assert_eq!(int_of(&compacted, "epoch"), 2, "compaction keeps the epoch");
    let metrics = get(addr, "/metrics");
    let journal = metrics.get("journal").expect("journal metrics present");
    assert_eq!(int_of(journal, "wal_records"), 0);
    assert_eq!(int_of(journal, "last_compaction_gen"), 2);

    // Third life: recovery starts from the compacted generation with the
    // exact same published snapshot.
    let snapshot_before = get(addr, "/steward/snapshot");
    server.shutdown();
    let server = serve(config(), Mdm::new()).unwrap();
    let snapshot_after = get(server.addr(), "/steward/snapshot");
    assert_eq!(
        snapshot_before.get("snapshot").and_then(Value::as_str),
        snapshot_after.get("snapshot").and_then(Value::as_str)
    );
    assert_eq!(
        int_of(&snapshot_before, "epoch"),
        int_of(&snapshot_after, "epoch")
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_without_data_dir_is_a_clean_409() {
    use mdm_server::{client, serve, ServerConfig};
    let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
    let response = client::post_json(server.addr(), "/admin/compact", "{}").unwrap();
    assert_eq!(response.status, 409, "{}", response.body);
    assert!(response.body.contains("compact"), "{}", response.body);
    server.shutdown();
}

//! Churn suite for surgical plan invalidation (the P15 companion).
//!
//! Three layers of evidence:
//!
//! * A property test that under ANY interleaving of breaking feature
//!   definitions, extension releases (wrapper + mapping), unrelated source
//!   registrations and analyst queries — across both layouts and both
//!   execution modes — every plan served from the footprint-validated cache
//!   (hit, survivor, or incremental extension) is byte-identical to a cold
//!   rewrite at the same epoch. No stale unions, ever.
//! * Deterministic hit-rate checks: disjoint-footprint churn keeps
//!   unrelated plans hot (no recompiles), mapping-only churn repairs plans
//!   by incremental UCQ extension, and overlapping mutations still
//!   invalidate.
//! * The `/changes` changefeed over real TCP: exactly-once delivery per
//!   cursor, long-poll wake on commit, cursors surviving a reconnect, and
//!   a replica serving the same feed (with the evolution counters exported
//!   on both roles).

mod common;

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use common::*;
use mdm_core::synthetic::{
    chain_walk, concept_iri, feature_iri, register_synthetic_wrapper, relation_iri,
};
use mdm_core::Mdm;
use mdm_dataform::{json, Value};
use mdm_relational::Layout;
use mdm_server::client;
use mdm_wrappers::workload::{build, SyntheticEcosystem, WorkloadConfig};
use proptest::prelude::*;

/// Builds the ecosystem's global graph and sources but registers only the
/// v1 wrapper of each source — the later versions stay in `eco` as the
/// churn supply (mirrors `mdm_from_synthetic`, which registers everything).
fn synthetic_base(eco: &SyntheticEcosystem) -> Mdm {
    let mut mdm = Mdm::new();
    for c in 0..eco.config.concepts {
        let concept = concept_iri(c);
        mdm.define_concept(&concept).unwrap();
        for attribute in eco.concept_attributes(c) {
            let feature = feature_iri(c, &attribute);
            if attribute == "id" {
                mdm.define_identifier(&concept, &feature).unwrap();
            } else {
                mdm.define_feature(&concept, &feature).unwrap();
            }
        }
    }
    for c in 0..eco.config.concepts.saturating_sub(1) {
        mdm.define_relation(&concept_iri(c), &relation_iri(c), &concept_iri(c + 1))
            .unwrap();
    }
    for source in &eco.sources {
        mdm.add_source(source.source.endpoint.name()).unwrap();
        register_synthetic_wrapper(&mut mdm, eco, source.concept, source.wrappers[0].clone())
            .unwrap();
    }
    mdm
}

/// Total textual identity of a rewriting: union branches, plan, SPARQL,
/// output columns and the phase-(a) expansions.
fn fingerprint(rewriting: &mdm_core::Rewriting) -> String {
    format!("{rewriting:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random churn scripts — extension releases, breaking feature
    /// definitions, unrelated sources — interleaved with chain-walk
    /// queries: whatever the cache serves (equality hit, footprint
    /// survivor, or incrementally extended plan) must be byte-identical to
    /// a cold rewrite at the same epoch, under both layouts and both
    /// parallel and sequential execution; executed answers agree too.
    #[test]
    fn churned_cache_matches_cold_rewrite(
        codes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..32),
        columnar in any::<bool>(),
        parallel in any::<bool>(),
    ) {
        let eco = build(&WorkloadConfig {
            concepts: 4,
            features_per_concept: 2,
            versions_per_source: 4,
            rows_per_wrapper: 3,
            seed: 21,
        });
        let mut mdm = synthetic_base(&eco);
        mdm.set_layout(if columnar { Layout::Columnar } else { Layout::Row });
        mdm.set_threads(if parallel { 2 } else { 1 });

        // Warm every walk so the churn below has plans to test against.
        for k in 1..=eco.config.concepts {
            let walk = chain_walk(&eco, k);
            let cached = mdm.rewrite_cached(&walk).unwrap();
            prop_assert_eq!(
                fingerprint(&cached),
                fingerprint(&mdm.rewrite(&walk).unwrap())
            );
        }

        let mut next_version = vec![1usize; eco.config.concepts];
        let mut fresh = 0usize;
        for (action, operand) in codes {
            let c = operand as usize % eco.config.concepts;
            match action % 4 {
                0 => {
                    // Extension release: the source's next wrapper version
                    // plus its mapping; falls back to a no-footprint source
                    // registration once the version supply is exhausted.
                    if next_version[c] < eco.sources[c].wrappers.len() {
                        let wrapper = eco.sources[c].wrappers[next_version[c]].clone();
                        next_version[c] += 1;
                        register_synthetic_wrapper(&mut mdm, &eco, c, wrapper).unwrap();
                    } else {
                        mdm.add_source(&format!("Fresh{fresh}")).unwrap();
                        fresh += 1;
                    }
                }
                1 => {
                    // Breaking mutation on concept c's fragment.
                    fresh += 1;
                    mdm.define_feature(
                        &concept_iri(c),
                        &feature_iri(c, &format!("late{fresh}")),
                    )
                    .unwrap();
                }
                2 => {
                    // Empty footprint: invisible to every cached plan.
                    mdm.add_source(&format!("Fresh{fresh}")).unwrap();
                    fresh += 1;
                }
                _ => {} // pure query step
            }
            let walk = chain_walk(&eco, 1 + operand as usize % eco.config.concepts);
            let cached = mdm.rewrite_cached(&walk).unwrap();
            prop_assert_eq!(
                fingerprint(&cached),
                fingerprint(&mdm.rewrite(&walk).unwrap())
            );
        }

        // Execution through the cache agrees with a cold end-to-end query.
        let walk = chain_walk(&eco, eco.config.concepts);
        prop_assert_eq!(
            mdm.query_cached(&walk).unwrap().render(),
            mdm.query(&walk).unwrap().render()
        );
    }
}

/// Releases over concepts far down the chain leave a plan over the head of
/// the chain hot: zero recompiles across the whole churn, survivals
/// counted, and a genuinely overlapping mutation still invalidates.
#[test]
fn disjoint_churn_keeps_unrelated_plans_hot() {
    let eco = build(&WorkloadConfig {
        concepts: 8,
        features_per_concept: 2,
        versions_per_source: 4,
        rows_per_wrapper: 2,
        seed: 33,
    });
    let mut mdm = synthetic_base(&eco);
    let walk = chain_walk(&eco, 2); // reads concepts c0, c1
    let warm = mdm.rewrite_cached(&walk).unwrap();
    let stats = mdm.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 1));
    assert_eq!(stats.full_rewrites, 1);

    // Churn at concept 5: each release is a RegisterWrapper (a wrapper the
    // plan has never heard of) plus a DefineMapping covering c5 and its
    // edge witness c6 — a gap of ≥ 2 from the cached walk's {c0, c1}.
    for round in 1..eco.sources[5].wrappers.len() {
        let wrapper = eco.sources[5].wrappers[round].clone();
        register_synthetic_wrapper(&mut mdm, &eco, 5, wrapper).unwrap();
        let again = mdm.rewrite_cached(&walk).unwrap();
        assert_eq!(fingerprint(&warm), fingerprint(&again));
    }
    let stats = mdm.cache_stats();
    assert_eq!(stats.misses, 1, "disjoint churn must not force a replan");
    assert_eq!(stats.full_rewrites, 1);
    assert_eq!(stats.incremental_extensions, 0);
    assert!(stats.survivals >= 1, "footprint test must record survivals");
    assert_eq!(stats.surgical_invalidations, 0);

    // An overlapping mutation — a new feature on c0 — still invalidates.
    mdm.define_feature(&concept_iri(0), &feature_iri(0, "c0_late"))
        .unwrap();
    mdm.rewrite_cached(&walk).unwrap();
    let stats = mdm.cache_stats();
    assert_eq!(stats.misses, 2, "the overlapping release forces one replan");
    assert!(stats.surgical_invalidations >= 1);
}

/// A mapping-only release over a concept the plan reads repairs the cached
/// plan by incremental UCQ extension — no full rewrite, output
/// byte-identical to a cold rewrite at the new epoch — and the extended
/// plan is itself cached.
#[test]
fn mapping_only_churn_extends_the_cached_plan() {
    let eco = build(&WorkloadConfig {
        concepts: 3,
        features_per_concept: 2,
        versions_per_source: 3,
        rows_per_wrapper: 2,
        seed: 44,
    });
    let mut mdm = synthetic_base(&eco);
    let walk = chain_walk(&eco, 2);
    let before = mdm.rewrite_cached(&walk).unwrap();
    let branches_before = before.branch_count();

    // Concept 0's next wrapper version: RegisterWrapper is invisible to
    // the plan (fresh name), DefineMapping is an extension covering c0.
    let wrapper = eco.sources[0].wrappers[1].clone();
    register_synthetic_wrapper(&mut mdm, &eco, 0, wrapper).unwrap();

    let extended = mdm.rewrite_cached(&walk).unwrap();
    let stats = mdm.cache_stats();
    assert_eq!(stats.incremental_extensions, 1, "repaired, not recompiled");
    assert_eq!(stats.full_rewrites, 1, "only the initial compile");
    assert!(
        extended.branch_count() > branches_before,
        "the new wrapper version must union in ({} -> {})",
        branches_before,
        extended.branch_count()
    );
    assert_eq!(
        fingerprint(&extended),
        fingerprint(&mdm.rewrite(&walk).unwrap()),
        "incremental extension must be byte-identical to a cold rewrite"
    );

    // The spliced plan is cached: the next lookup is an equality hit.
    let again = mdm.rewrite_cached(&walk).unwrap();
    assert!(Arc::ptr_eq(&extended, &again));
}

// ---------------------------------------------------------------------
// The /changes changefeed over real TCP
// ---------------------------------------------------------------------

fn changes_of(page: &Value) -> Vec<Value> {
    page.get("changes")
        .and_then(Value::as_array)
        .expect("changes array")
        .to_vec()
}

/// Paging the feed from cursor 0 yields every committed mutation exactly
/// once, in epoch order; a new mutation lands exactly once at the tail,
/// carrying its kind and footprint summary.
#[test]
fn changefeed_delivers_every_mutation_exactly_once_per_cursor() {
    let (primary, dir) = start_primary("changes-once");
    let addr = primary.addr();
    let epoch = int_of(&get_json(addr, "/epoch"), "metadata_epoch");

    let mut cursor = 0i64;
    let mut seen = Vec::new();
    loop {
        let page = get_json(addr, &format!("/changes?since={cursor}&limit=5"));
        assert_eq!(int_of(&page, "since"), cursor);
        let records = changes_of(&page);
        if records.is_empty() {
            assert_eq!(int_of(&page, "next"), cursor, "empty page keeps the cursor");
            break;
        }
        assert!(records.len() <= 5, "limit respected");
        seen.extend(records.iter().map(|r| int_of(r, "epoch")));
        cursor = int_of(&page, "next");
    }
    let expected: Vec<i64> = (1..=epoch).collect();
    assert_eq!(seen, expected, "every mutation exactly once, in order");

    let ack = define_concept(addr, &ns("Referee")).unwrap();
    let page = get_json(addr, &format!("/changes?since={cursor}"));
    let records = changes_of(&page);
    assert_eq!(records.len(), 1, "exactly the one new mutation");
    assert_eq!(int_of(&records[0], "epoch") as u64, ack);
    assert_eq!(str_of(&records[0], "kind"), "define_concept");
    let footprint = records[0].get("footprint").expect("footprint summary");
    assert!(
        footprint
            .get("concepts")
            .and_then(Value::as_array)
            .is_some_and(|concepts| !concepts.is_empty()),
        "a concept definition's footprint names the concept: {footprint:?}"
    );
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// A parked long-poll wakes when the steward commits — well before its
/// timeout — and delivers exactly the new record.
#[test]
fn changefeed_long_poll_wakes_on_commit() {
    let (primary, dir) = start_primary("changes-poll");
    let addr = primary.addr();
    let epoch = int_of(&get_json(addr, "/epoch"), "metadata_epoch");

    let waiter = thread::spawn(move || {
        let started = Instant::now();
        let page = get_json(addr, &format!("/changes?since={epoch}&wait_ms=10000"));
        (started.elapsed(), page)
    });
    thread::sleep(Duration::from_millis(120));
    let ack = define_concept(addr, &ns("LongPoll")).unwrap();

    let (elapsed, page) = waiter.join().unwrap();
    assert!(
        elapsed < Duration::from_secs(8),
        "long-poll must wake on commit, took {elapsed:?}"
    );
    let records = changes_of(&page);
    assert_eq!(records.len(), 1);
    assert_eq!(int_of(&records[0], "epoch") as u64, ack);
    assert_eq!(int_of(&page, "next") as u64, ack);

    // With nothing new, a bounded wait drains empty at its deadline.
    let page = get_json(addr, &format!("/changes?since={ack}&wait_ms=100"));
    assert!(changes_of(&page).is_empty());
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// A cursor is just an epoch, so it survives its connection: half the feed
/// read on one connection resumes on a fresh one with no gaps and no
/// duplicates — and a replica, replaying the stream through the same
/// commit path, serves the feed (and the evolution counters) too.
#[test]
fn changes_cursor_survives_reconnect_and_replicas_serve_the_feed() {
    let (primary, dir) = start_primary("changes-replica");
    let addr = primary.addr();
    let epoch = int_of(&get_json(addr, "/epoch"), "metadata_epoch");

    let replica = start_replica(addr);
    assert!(replica.wait_for_epoch(epoch as u64, Duration::from_secs(20)));

    // Read the head of the feed on a dedicated connection, then drop it.
    let mut connection = client::Connection::open(addr).unwrap();
    let response = connection
        .send("GET", "/changes?since=0&limit=2", None)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let page = json::parse(&response.body).unwrap();
    let head: Vec<i64> = changes_of(&page)
        .iter()
        .map(|r| int_of(r, "epoch"))
        .collect();
    assert_eq!(head, vec![1, 2]);
    let cursor = int_of(&page, "next");
    drop(connection);

    // Resume from the same cursor on a fresh connection: the tail follows
    // seamlessly — no gaps, no duplicates.
    let page = get_json(addr, &format!("/changes?since={cursor}"));
    let tail: Vec<i64> = changes_of(&page)
        .iter()
        .map(|r| int_of(r, "epoch"))
        .collect();
    let expected: Vec<i64> = (cursor + 1..=epoch).collect();
    assert_eq!(tail, expected);

    // A fresh mutation reaches the replica's feed at the same epoch.
    let ack = define_concept(addr, &ns("Fanout")).unwrap();
    assert!(replica.wait_for_epoch(ack, Duration::from_secs(10)));
    let on_replica = get_json(replica.addr(), &format!("/changes?since={}", ack - 1));
    let records = changes_of(&on_replica);
    assert_eq!(records.len(), 1, "the replica serves the new record");
    assert_eq!(int_of(&records[0], "epoch") as u64, ack);
    assert_eq!(str_of(&records[0], "kind"), "define_concept");

    // The evolution counters are exported on both roles.
    for node in [addr, replica.addr()] {
        let metrics = get_json(node, "/metrics");
        let evolution = metrics.get("evolution").expect("evolution counters");
        assert_eq!(str_of(evolution, "invalidation_mode"), "surgical");
        for field in [
            "surgical_invalidations",
            "survivals",
            "incremental_extensions",
            "full_rewrites",
        ] {
            assert!(
                evolution.get(field).and_then(Value::as_number).is_some(),
                "evolution misses numeric '{field}': {evolution:?}"
            );
        }
    }

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

//! Parallel-execution integration tests: the worker pool fans UCQ branches
//! out without changing a single byte of any answer, and the per-query scan
//! cache collapses repeated wrapper fetches to one per wrapper per query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use mdm_core::synthetic::{chain_walk, mdm_from_synthetic};
use mdm_core::usecase;
use mdm_core::Mdm;
use mdm_relational::{
    BinOp, Catalog, Deadline, ExecError, ExecOptions, Executor, Expr, Plan, Pool, RelationProvider,
    RetryPolicy, ScanCache, Schema, Tuple, Value,
};
use mdm_wrappers::football;
use mdm_wrappers::workload::{build, WorkloadConfig};
use mdm_wrappers::FaultPlan;

// ---------------------------------------------------------------------
// (a) the scan cache: 8 branches over 2 wrappers = exactly 2 fetches
// ---------------------------------------------------------------------

/// A provider that counts how many times its rows were materialised.
struct Counting {
    name: &'static str,
    fetches: AtomicU64,
}

impl Counting {
    fn new(name: &'static str) -> Self {
        Counting {
            name,
            fetches: AtomicU64::new(0),
        }
    }
}

impl RelationProvider for Counting {
    fn provider_schema(&self) -> Schema {
        Schema::qualified(self.name, ["id"])
    }

    fn rows(&self) -> Result<Vec<Tuple>, ExecError> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Ok((0..16).map(|n| vec![Value::Int(n)]).collect())
    }
}

struct PairCatalog {
    wa: Counting,
    wb: Counting,
}

impl Catalog for PairCatalog {
    fn provider(&self, name: &str) -> Option<&dyn RelationProvider> {
        match name {
            "wa" => Some(&self.wa),
            "wb" => Some(&self.wb),
            _ => None,
        }
    }
}

#[test]
fn eight_branches_over_two_wrappers_fetch_each_wrapper_once() {
    let catalog = PairCatalog {
        wa: Counting::new("wa"),
        wb: Counting::new("wb"),
    };
    // Eight *distinct* union branches alternating over the two providers —
    // the shape a version-crossing UCQ takes when branches share wrappers.
    // Each branch carries its own (always-true) predicate so no two
    // branches are structurally equal and every one consults the cache.
    let plan = Plan::union(
        (0..8)
            .map(|i| {
                Plan::scan(if i % 2 == 0 { "wa" } else { "wb" })
                    .filter(Expr::col("id").binary(BinOp::Gt, Expr::lit(-1 - i as i64)))
            })
            .collect(),
    )
    .distinct();
    let cache = ScanCache::new();
    let options = ExecOptions {
        pool: Some(Arc::new(Pool::new(4))),
        ..ExecOptions::default()
    };
    let table = Executor::with_options(&catalog, options.clone())
        .with_scan_cache(&cache)
        .run(&plan)
        .unwrap();
    assert_eq!(
        table.len(),
        16,
        "distinct collapses the 8 overlapping scans"
    );
    assert_eq!(catalog.wa.fetches.load(Ordering::Relaxed), 1);
    assert_eq!(catalog.wb.fetches.load(Ordering::Relaxed), 1);
    let stats = cache.stats();
    assert_eq!(
        (stats.misses, stats.hits),
        (2, 6),
        "8 branch scans collapse to 2 provider fetches"
    );

    // Structurally *identical* branches are shared one level higher: the
    // executor runs each unique branch once, so duplicates never reach the
    // scan cache at all — 2 misses, 0 hits, still 1 fetch per wrapper.
    let catalog = PairCatalog {
        wa: Counting::new("wa"),
        wb: Counting::new("wb"),
    };
    let plan = Plan::union(
        (0..8)
            .map(|i| Plan::scan(if i % 2 == 0 { "wa" } else { "wb" }))
            .collect(),
    )
    .distinct();
    let cache = ScanCache::new();
    let table = Executor::with_options(&catalog, options)
        .with_scan_cache(&cache)
        .run(&plan)
        .unwrap();
    assert_eq!(table.len(), 16, "distinct collapses the 8 identical scans");
    assert_eq!(catalog.wa.fetches.load(Ordering::Relaxed), 1);
    assert_eq!(catalog.wb.fetches.load(Ordering::Relaxed), 1);
    let stats = cache.stats();
    assert_eq!(
        (stats.misses, stats.hits),
        (2, 0),
        "identical branches are deduplicated before the cache is consulted"
    );
}

#[test]
fn wrappers_are_fetched_once_per_query_through_the_facade() {
    // The evolved football system: the figure-8 walk rewrites to 4 branches
    // (w1|w3 for the player features × w1|w3 for the relation), every one
    // of which joins w2 for the team name. Without the scan cache w2 paid
    // 4 fetches per query.
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).unwrap();
    usecase::register_players_v2(&mut mdm, &eco).unwrap();
    let answer = mdm.query(&usecase::figure8_walk()).unwrap();
    assert!(answer.rewriting.branch_count() >= 4);
    for name in ["w1", "w2", "w3"] {
        let wrapper = mdm.catalog().get(name).unwrap();
        assert_eq!(
            wrapper.fetch_count(),
            1,
            "{name} must be fetched exactly once per query"
        );
    }
}

// ---------------------------------------------------------------------
// (b) parallel execution is byte-identical to sequential
// ---------------------------------------------------------------------

fn synthetic_mdm(
    concepts: usize,
    versions: usize,
    rows: usize,
    seed: u64,
) -> (Mdm, mdm_core::Walk) {
    let config = WorkloadConfig {
        concepts,
        features_per_concept: 3,
        versions_per_source: versions,
        rows_per_wrapper: rows,
        seed,
    };
    let eco = build(&config);
    let mdm = mdm_from_synthetic(&eco).expect("synthetic system builds");
    let walk = chain_walk(&eco, concepts);
    (mdm, walk)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across random ecosystem shapes, a 4-worker pool renders the exact
    /// same table as the forced-sequential path.
    #[test]
    fn parallel_answers_match_sequential_byte_for_byte(
        concepts in 1usize..3,
        versions in 1usize..4,
        rows in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let (mut mdm, walk) = synthetic_mdm(concepts, versions, rows, seed);
        mdm.set_threads(1);
        let sequential = mdm.query(&walk).unwrap();
        mdm.set_threads(4);
        let parallel = mdm.query(&walk).unwrap();
        prop_assert_eq!(sequential.render(), parallel.render());
        prop_assert_eq!(&sequential.table, &parallel.table);
    }

    /// Degraded mode under concurrent branch failures reports the same
    /// completeness (and the same surviving rows) as sequential execution.
    #[test]
    fn degraded_completeness_is_identical_under_parallelism(
        seed in 0u64..1_000,
        victim_idx in 0usize..2,
    ) {
        let victim = ["w1", "w3"][victim_idx];
        let walk = usecase::figure8_walk();
        let eco = football::build_default();
        let mut mdm = usecase::football_mdm(&eco).unwrap();
        usecase::register_players_v2(&mut mdm, &eco).unwrap();
        mdm.set_retry_policy(RetryPolicy::none());
        mdm.set_fault_plan(Some(Arc::new(FaultPlan::seeded(seed).kill(victim))));

        mdm.set_threads(1);
        let sequential = mdm.query_degraded(&walk, Deadline::none()).unwrap();
        mdm.set_threads(4);
        let parallel = mdm.query_degraded(&walk, Deadline::none()).unwrap();

        prop_assert_eq!(sequential.render(), parallel.render());
        prop_assert_eq!(
            sequential.completeness.executed_branches,
            parallel.completeness.executed_branches
        );
        prop_assert_eq!(
            &sequential.completeness.contributors,
            &parallel.completeness.contributors
        );
        prop_assert_eq!(
            sequential.completeness.dropped.len(),
            parallel.completeness.dropped.len()
        );
        for (s, p) in sequential
            .completeness
            .dropped
            .iter()
            .zip(parallel.completeness.dropped.iter())
        {
            prop_assert_eq!(&s.wrappers, &p.wrappers);
            prop_assert_eq!(&s.kind, &p.kind);
            prop_assert_eq!(&s.reason, &p.reason);
        }
    }
}

// ---------------------------------------------------------------------
// (c) pool knobs are visible end to end
// ---------------------------------------------------------------------

#[test]
fn set_threads_switches_between_pool_and_sequential() {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).unwrap();
    mdm.set_threads(4);
    assert_eq!(mdm.threads(), 4);
    let stats = mdm.pool_stats().expect("pool attached");
    assert_eq!(stats.size, 4);
    mdm.set_threads(1);
    assert_eq!(mdm.threads(), 1);
    assert!(
        mdm.pool_stats().is_none(),
        "threads=1 is the sequential path"
    );
    // Queries work identically in both modes.
    mdm.set_threads(4);
    let walk = usecase::figure8_walk();
    let with_pool = mdm.query(&walk).unwrap().render();
    mdm.set_threads(1);
    let without = mdm.query(&walk).unwrap().render();
    assert_eq!(with_pool, without);
}

//! Shared harness for the replication and failover suites: deterministic
//! mutation scripts, primary/replica process helpers, JSON accessors, a
//! severable TCP proxy for chaos injection, and a hostile primary that
//! serves hand-built replication batches.
//!
//! Chaos scheduling is seeded: set `MDM_CHAOS_SEED` to replay a run.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mdm_core::usecase;
use mdm_core::{FsyncPolicy, Mdm, MutationOp};
use mdm_dataform::{json, Value};
use mdm_replica::{ReplicaConfig, ReplicaHandle, ReplicaNode};
use mdm_server::client;
use mdm_server::{serve_on, ServerConfig, ServerHandle};
use mdm_store::ReplicationBatch;
use mdm_wrappers::football;

pub const FIG8_WALK: &str =
    "ex:Player { ex:playerName }\nsc:SportsTeam { ex:teamName }\nex:Player -ex:hasTeam-> sc:SportsTeam";

/// The seed every chaos schedule derives from; `MDM_CHAOS_SEED` overrides
/// it so a failing run can be replayed exactly.
pub fn chaos_seed() -> u64 {
    std::env::var("MDM_CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(0xC0FFEE)
}

pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdm-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

pub fn ns(local: &str) -> String {
    format!("http://example.org/{local}")
}

/// Deterministically expands action codes into a valid mutation script
/// (mirrors the durability suite's generator, trimmed to the op kinds that
/// exercise distinct replay paths).
pub fn build_ops(codes: &[u8]) -> Vec<MutationOp> {
    let mut concepts: Vec<(String, String)> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    let mut ops = Vec::new();
    let mut serial = 0usize;
    let mut fresh = || {
        serial += 1;
        serial
    };
    for &code in codes {
        match code % 7 {
            0 => {
                let n = fresh();
                let concept = ns(&format!("C{n}"));
                let id = ns(&format!("C{n}_id"));
                ops.push(MutationOp::DefineConcept {
                    concept: concept.clone(),
                });
                ops.push(MutationOp::DefineFeature {
                    concept: concept.clone(),
                    feature: id.clone(),
                    identifier: true,
                });
                concepts.push((concept, id));
            }
            1 => {
                if concepts.is_empty() {
                    continue;
                }
                let index = code as usize % concepts.len();
                ops.push(MutationOp::DefineFeature {
                    concept: concepts[index].0.clone(),
                    feature: ns(&format!("f{}", fresh())),
                    identifier: false,
                });
            }
            2 => {
                let name = format!("S{}", fresh());
                ops.push(MutationOp::AddSource { name: name.clone() });
                sources.push(name);
            }
            3 => {
                if sources.is_empty() {
                    continue;
                }
                ops.push(MutationOp::RegisterWrapper {
                    source: sources.last().unwrap().clone(),
                    wrapper: format!("w{}", fresh()),
                    version: (code as u32 % 3) + 1,
                    attributes: vec!["id".into(), "v".into()],
                });
            }
            4 => {
                if concepts.len() < 2 {
                    continue;
                }
                let from = code as usize % concepts.len();
                let to = (from + 1) % concepts.len();
                ops.push(MutationOp::DefineRelation {
                    from: concepts[from].0.clone(),
                    property: ns(&format!("rel{}", fresh())),
                    to: concepts[to].0.clone(),
                });
            }
            5 => {
                let n = fresh();
                ops.push(MutationOp::BindPrefix {
                    prefix: format!("p{n}"),
                    namespace: format!("http://example.org/ns{n}#"),
                });
            }
            _ => {
                ops.push(MutationOp::SetOptions {
                    distinct: code % 2 == 0,
                    max_branches: 4096,
                });
            }
        }
    }
    if ops.is_empty() {
        ops.push(MutationOp::DefineConcept {
            concept: ns("Anchor"),
        });
    }
    ops
}

/// Replays a decoded batch exactly as the replica sync thread does:
/// snapshot restore, then record decode + apply + epoch alignment.
pub fn replay_batch(batch: &ReplicationBatch) -> Mdm {
    let snapshot = batch.snapshot.as_deref().expect("bootstrap batch");
    let mut mdm = Mdm::restore_metadata(snapshot).expect("snapshot restores");
    mdm.ensure_epoch_at_least(batch.base_epoch);
    for record in &batch.records {
        let op = MutationOp::decode(&record.payload).expect("record decodes");
        op.apply(&mut mdm).expect("record applies");
        mdm.ensure_epoch_at_least(record.epoch);
    }
    mdm
}

// ---------------------------------------------------------------------
// Node helpers
// ---------------------------------------------------------------------

pub fn primary_config(dir: PathBuf) -> ServerConfig {
    ServerConfig {
        workers: 4,
        data_dir: Some(dir),
        fsync: FsyncPolicy::Never,
        ..ServerConfig::default()
    }
}

pub fn start_primary(tag: &str) -> (ServerHandle, PathBuf) {
    let dir = temp_dir(tag);
    let server = start_primary_in(dir.clone());
    (server, dir)
}

/// Starts (or restarts) a primary over an existing data directory — an
/// existing journal is recovered, so the node resumes its epoch and term.
pub fn start_primary_in(dir: PathBuf) -> ServerHandle {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    serve_on(listener, &primary_config(dir), mdm).unwrap()
}

pub fn start_replica(primary: SocketAddr) -> ReplicaHandle {
    start_replica_at(&primary.to_string(), None, chaos_seed())
}

/// Starts a replica following `primary`, optionally over a data directory
/// (a previous life's journal seeds stale reads; promotion journals here).
pub fn start_replica_at(primary: &str, data_dir: Option<PathBuf>, seed: u64) -> ReplicaHandle {
    let mut config = ReplicaConfig::new(primary);
    config.wait_ms = 500;
    config.min_backoff = Duration::from_millis(20);
    config.max_backoff = Duration::from_millis(200);
    config.backoff_seed = seed;
    config.server.workers = 2;
    config.server.fsync = FsyncPolicy::Never;
    config.data_dir = data_dir;
    ReplicaNode::start(config).unwrap()
}

// ---------------------------------------------------------------------
// HTTP helpers
// ---------------------------------------------------------------------

pub fn get_json(addr: SocketAddr, path: &str) -> Value {
    let response = client::get(addr, path).unwrap_or_else(|e| panic!("GET {path}: {e}"));
    assert_eq!(response.status, 200, "GET {path}: {}", response.body);
    json::parse(&response.body).expect("JSON body")
}

pub fn query_body(addr: SocketAddr, walk: &str) -> String {
    let body = json::to_string(&Value::object([("walk", Value::string(walk))]));
    let response =
        client::post_json(addr, "/analyst/query", &body).unwrap_or_else(|e| panic!("query: {e}"));
    assert_eq!(response.status, 200, "{}", response.body);
    response.body
}

pub fn int_of(value: &Value, field: &str) -> i64 {
    value
        .get(field)
        .and_then(Value::as_number)
        .and_then(|n| n.as_i64())
        .unwrap_or_else(|| panic!("missing numeric '{field}' in {value:?}"))
}

pub fn str_of<'v>(value: &'v Value, field: &str) -> &'v str {
    value
        .get(field)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string '{field}' in {value:?}"))
}

/// Defines one concept over HTTP; returns the acknowledged epoch on 200,
/// or the full response for the caller to assert on.
pub fn define_concept(addr: SocketAddr, iri: &str) -> Result<u64, client::ClientResponse> {
    let body = json::to_string(&Value::object([(
        "concept",
        Value::string(format!("<{iri}>")),
    )]));
    let response = client::post_json(addr, "/steward/concepts", &body)
        .unwrap_or_else(|e| panic!("POST /steward/concepts: {e}"));
    if response.status == 200 {
        let ack = json::parse(&response.body).expect("ack is JSON");
        Ok(int_of(&ack, "epoch") as u64)
    } else {
        Err(response)
    }
}

/// The node's canonical snapshot and epoch (`GET /steward/snapshot`
/// serves on every role — byte-identical snapshots at equal epochs mean
/// converged nodes).
pub fn snapshot_of(addr: SocketAddr) -> (String, u64) {
    let value = get_json(addr, "/steward/snapshot");
    (
        str_of(&value, "snapshot").to_string(),
        int_of(&value, "epoch") as u64,
    )
}

/// Polls `probe` until it returns true or `timeout` elapses.
pub fn wait_until(timeout: Duration, what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

/// Registers the breaking Players v2 release over HTTP (nationality
/// feature, wrapper w3, its LAV mapping); returns the resulting epoch.
pub fn register_v2_over_http(addr: SocketAddr) -> u64 {
    let eco = football::build_default();
    let v2 = eco.players_api.release(2).expect("v2 published");
    let post = |path: &str, body: &str| {
        let response = client::post_json(addr, path, body).unwrap();
        assert!(
            (200..300).contains(&response.status),
            "POST {path}: HTTP {} {}",
            response.status,
            response.body
        );
        json::parse(&response.body).unwrap()
    };
    post(
        "/steward/features",
        r#"{"concept": "ex:Player", "feature": "ex:nationality"}"#,
    );
    let wrapper = Value::object([
        ("name", Value::string("w3")),
        ("source", Value::string("PlayersAPI")),
        ("version", Value::int(i64::from(v2.version))),
        ("format", Value::string("json")),
        ("payload", Value::string(v2.body.as_str())),
        (
            "attributes",
            Value::array(
                [
                    "id",
                    "pName",
                    "height",
                    "weight",
                    "foot",
                    "teamId",
                    "nationality",
                ]
                .into_iter()
                .map(Value::string),
            ),
        ),
        (
            "bindings",
            Value::object([
                ("id", Value::string("players_id")),
                ("pName", Value::string("players_full_name")),
                ("height", Value::string("players_height")),
                ("weight", Value::string("players_weight")),
                ("foot", Value::string("players_foot")),
                ("teamId", Value::string("players_team_id")),
                ("nationality", Value::string("players_nationality")),
            ]),
        ),
    ]);
    post("/steward/wrappers", &json::to_string(&wrapper));
    let ack = post(
        "/steward/mappings",
        r#"{
            "wrapper": "w3",
            "concepts": ["ex:Player", "sc:SportsTeam"],
            "features": ["ex:playerId", "ex:playerName", "ex:height", "ex:weight",
                         "ex:foot", "ex:nationality", "ex:teamId"],
            "relations": [{"from": "ex:Player", "property": "ex:hasTeam", "to": "sc:SportsTeam"}],
            "same_as": [
                {"attribute": "id", "feature": "ex:playerId"},
                {"attribute": "pName", "feature": "ex:playerName"},
                {"attribute": "height", "feature": "ex:height"},
                {"attribute": "weight", "feature": "ex:weight"},
                {"attribute": "foot", "feature": "ex:foot"},
                {"attribute": "nationality", "feature": "ex:nationality"},
                {"attribute": "teamId", "feature": "ex:teamId"}
            ]
        }"#,
    );
    int_of(&ack, "epoch") as u64
}

// ---------------------------------------------------------------------
// Chaos plumbing: severable proxy and hostile primary
// ---------------------------------------------------------------------

/// A pass-through TCP proxy whose live connections can be severed without
/// touching its listener — a reconnect through the same address works.
pub struct Proxy {
    pub addr: SocketAddr,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
}

impl Proxy {
    pub fn start(upstream: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        {
            let conns = Arc::clone(&conns);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                for inbound in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(inbound) = inbound else { break };
                    let Ok(outbound) = TcpStream::connect(upstream) else {
                        continue;
                    };
                    {
                        let mut held = conns.lock().unwrap();
                        held.push(inbound.try_clone().unwrap());
                        held.push(outbound.try_clone().unwrap());
                    }
                    pump(inbound.try_clone().unwrap(), outbound.try_clone().unwrap());
                    pump(outbound, inbound);
                }
            });
        }
        Proxy { addr, conns, stop }
    }

    /// Kills every live proxied connection mid-stream.
    pub fn sever(&self) {
        for stream in self.conns.lock().unwrap().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Severs and stops accepting — the proxied address goes dark for good
    /// (simulates a partition that outlives the node behind it).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.sever();
        // Unblock accept() so the thread observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// One-directional byte pump on its own thread; dies with the sockets.
fn pump(mut from: TcpStream, to: TcpStream) {
    thread::spawn(move || {
        let mut to = to;
        let mut buf = [0u8; 4096];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = to.shutdown(Shutdown::Both);
    });
}

/// A minimal hostile primary: speaks just enough HTTP to serve one
/// replication bootstrap batch of the caller's construction (e.g. with a
/// corrupt record) — everything else answers an empty wrapper list.
pub fn hostile_primary(batch: ReplicationBatch) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let batch = batch.clone();
            thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    // Requests are header-only GETs: serve per blank line.
                    let Ok(n) = stream.read(&mut chunk) else {
                        return;
                    };
                    if n == 0 {
                        return;
                    }
                    buf.extend_from_slice(&chunk[..n]);
                    while let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                        let head = String::from_utf8_lossy(&buf[..end]).to_string();
                        buf.drain(..end + 4);
                        let body: Vec<u8> = if head.contains("/replication/stream") {
                            batch.encode()
                        } else {
                            br#"{"wrappers": []}"#.to_vec()
                        };
                        let header = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n\r\n",
                            body.len()
                        );
                        if stream.write_all(header.as_bytes()).is_err()
                            || stream.write_all(&body).is_err()
                        {
                            return;
                        }
                    }
                }
            });
        }
    });
    addr
}

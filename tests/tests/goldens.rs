//! Golden-artifact tests: the checked-in files under `artifacts/` must match
//! what the running system regenerates. `cargo test -p mdm-integration-tests
//! --test goldens` fails when an artifact drifts; regenerate with
//! `REGENERATE_GOLDENS=1 cargo test -p mdm-integration-tests --test goldens`.

use std::path::PathBuf;

use mdm_core::usecase;
use mdm_wrappers::football;

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .join("artifacts")
}

fn check(name: &str, actual: &str) {
    let path = artifact_dir().join(name);
    if std::env::var("REGENERATE_GOLDENS").is_ok() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with REGENERATE_GOLDENS=1"));
    assert_eq!(
        expected, actual,
        "artifact {name} drifted; regenerate with REGENERATE_GOLDENS=1"
    );
}

#[test]
fn figure5_global_graph() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    check("figure5_global_graph.txt", &mdm.render_global_graph());
}

#[test]
fn figure6_source_graph() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    check("figure6_source_graph.txt", &mdm.render_source_graph());
}

#[test]
fn figure7_lav_mappings() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    check("figure7_lav_mappings.txt", &mdm.render_mappings());
}

#[test]
fn figure8_omq() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let rewriting = mdm.rewrite(&usecase::figure8_walk()).unwrap();
    let artifact = format!(
        "-- SPARQL --\n{}\n\n-- relational algebra --\n{}\n",
        rewriting.sparql,
        rewriting.algebra()
    );
    check("figure8_omq.txt", &artifact);
}

#[test]
fn table1_query_output() {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).unwrap();
    usecase::register_players_v2(&mut mdm, &eco).unwrap();
    // The rendered table must match the golden byte for byte under both
    // physical layouts: the columnar default and the row escape hatch.
    for layout in [
        mdm_relational::Layout::Columnar,
        mdm_relational::Layout::Row,
    ] {
        mdm.set_layout(layout);
        let answer = mdm.query(&usecase::figure8_walk()).unwrap();
        check("table1_query_output.txt", &answer.render());
    }
}

#[test]
fn metadata_snapshot() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    check("metadata_snapshot.trig", &mdm.snapshot());
}

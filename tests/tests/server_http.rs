//! Drives `mdm-server` over real TCP: the full steward→analyst lifecycle,
//! concurrent analysts during a breaking release (no stale plans), snapshot
//! round-trips and the epoch-keyed plan cache, all through the HTTP API.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use mdm_core::usecase;
use mdm_core::Mdm;
use mdm_dataform::{json, Value};
use mdm_server::{client, serve, ServerConfig};
use mdm_wrappers::football::{self, FootballEcosystem};

const FIG8_WALK: &str =
    "ex:Player { ex:playerName }\nsc:SportsTeam { ex:teamName }\nex:Player -ex:hasTeam-> sc:SportsTeam";

/// Four keep-alive analysts pin four workers for the whole test, so give
/// the pool headroom for the steward's one-shot connections.
fn eight_workers() -> ServerConfig {
    ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Value {
    let response =
        client::post_json(addr, path, body).unwrap_or_else(|e| panic!("POST {path} failed: {e}"));
    assert!(
        (200..300).contains(&response.status),
        "POST {path} -> HTTP {}: {}",
        response.status,
        response.body
    );
    json::parse(&response.body).expect("response is JSON")
}

fn get(addr: SocketAddr, path: &str) -> Value {
    let response = client::get(addr, path).unwrap_or_else(|e| panic!("GET {path} failed: {e}"));
    assert_eq!(response.status, 200, "GET {path}: {}", response.body);
    json::parse(&response.body).expect("response is JSON")
}

fn int_of(value: &Value, field: &str) -> i64 {
    value
        .get(field)
        .and_then(Value::as_number)
        .and_then(|n| n.as_i64())
        .unwrap_or_else(|| panic!("missing numeric '{field}' in {value:?}"))
}

fn walk_body() -> String {
    json::to_string(&Value::object([("walk", Value::string(FIG8_WALK))]))
}

fn row_with_cells(answer: &Value, needles: &[&str]) -> bool {
    answer
        .get("rows")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .any(|row| {
            let cells: Vec<&str> = row
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(Value::as_str)
                .collect();
            needles.iter().all(|needle| cells.contains(needle))
        })
}

/// The steward publishes the breaking Players v2 release through the API:
/// the nationality feature, wrapper w3 over the evolved payload, its LAV
/// mapping. Returns the epoch after the mapping lands.
fn register_v2_over_http(addr: SocketAddr, eco: &FootballEcosystem) -> i64 {
    post(
        addr,
        "/steward/features",
        r#"{"concept": "ex:Player", "feature": "ex:nationality"}"#,
    );
    let v2 = eco.players_api.release(2).expect("v2 published");
    let wrapper = Value::object([
        ("name", Value::string("w3")),
        ("source", Value::string("PlayersAPI")),
        ("version", Value::int(i64::from(v2.version))),
        ("format", Value::string("json")),
        ("payload", Value::string(v2.body.as_str())),
        (
            "attributes",
            Value::array(
                [
                    "id",
                    "pName",
                    "height",
                    "weight",
                    "foot",
                    "teamId",
                    "nationality",
                ]
                .into_iter()
                .map(Value::string),
            ),
        ),
        (
            "bindings",
            Value::object([
                ("id", Value::string("players_id")),
                ("pName", Value::string("players_full_name")),
                ("height", Value::string("players_height")),
                ("weight", Value::string("players_weight")),
                ("foot", Value::string("players_foot")),
                ("teamId", Value::string("players_team_id")),
                ("nationality", Value::string("players_nationality")),
            ]),
        ),
    ]);
    post(addr, "/steward/wrappers", &json::to_string(&wrapper));
    let mapping = r#"{
        "wrapper": "w3",
        "concepts": ["ex:Player", "sc:SportsTeam"],
        "features": ["ex:playerId", "ex:playerName", "ex:height", "ex:weight",
                     "ex:foot", "ex:nationality", "ex:teamId"],
        "relations": [{"from": "ex:Player", "property": "ex:hasTeam", "to": "sc:SportsTeam"}],
        "same_as": [
            {"attribute": "id", "feature": "ex:playerId"},
            {"attribute": "pName", "feature": "ex:playerName"},
            {"attribute": "height", "feature": "ex:height"},
            {"attribute": "weight", "feature": "ex:weight"},
            {"attribute": "foot", "feature": "ex:foot"},
            {"attribute": "nationality", "feature": "ex:nationality"},
            {"attribute": "teamId", "feature": "ex:teamId"}
        ]
    }"#;
    let ack = post(addr, "/steward/mappings", mapping);
    int_of(&ack, "epoch")
}

/// The paper's whole loop over the wire: a steward builds the Figure 5
/// fragment and the Figure 7 mappings for w1/w2 through the HTTP API from a
/// completely empty Mdm, then four concurrent analysts pose the Figure 8
/// walk and all read the same Table 1 rows as JSON.
#[test]
fn lifecycle_from_empty_metadata_over_tcp() {
    let eco = football::build_default();
    let server = serve(eight_workers(), Mdm::new()).unwrap();
    let addr = server.addr();

    // Global graph (the §2.1 steward interactions, Figure 5 fragment).
    post(addr, "/steward/concepts", r#"{"concept": "ex:Player"}"#);
    post(addr, "/steward/concepts", r#"{"concept": "sc:SportsTeam"}"#);
    post(
        addr,
        "/steward/features",
        r#"{"concept": "ex:Player", "feature": "ex:playerId", "identifier": true}"#,
    );
    for feature in [
        "ex:playerName",
        "ex:height",
        "ex:weight",
        "ex:score",
        "ex:foot",
    ] {
        post(
            addr,
            "/steward/features",
            &format!(r#"{{"concept": "ex:Player", "feature": "{feature}"}}"#),
        );
    }
    post(
        addr,
        "/steward/features",
        r#"{"concept": "sc:SportsTeam", "feature": "ex:teamId", "identifier": true}"#,
    );
    for feature in ["ex:teamName", "ex:shortName"] {
        post(
            addr,
            "/steward/features",
            &format!(r#"{{"concept": "sc:SportsTeam", "feature": "{feature}"}}"#),
        );
    }
    post(
        addr,
        "/steward/relations",
        r#"{"from": "ex:Player", "property": "ex:hasTeam", "to": "sc:SportsTeam"}"#,
    );

    // Sources and the two Figure 6 wrappers with their releases.
    post(addr, "/steward/sources", r#"{"name": "PlayersAPI"}"#);
    post(addr, "/steward/sources", r#"{"name": "TeamsAPI"}"#);
    let players_v1 = eco.players_api.release(1).expect("v1 published");
    let w1 = Value::object([
        ("name", Value::string("w1")),
        ("source", Value::string("PlayersAPI")),
        ("version", Value::int(1)),
        ("format", Value::string("json")),
        ("payload", Value::string(players_v1.body.as_str())),
        (
            "attributes",
            Value::array(
                ["id", "pName", "height", "weight", "score", "foot", "teamId"]
                    .into_iter()
                    .map(Value::string),
            ),
        ),
        (
            "bindings",
            Value::object([
                ("id", Value::string("id")),
                ("pName", Value::string("name")),
                ("height", Value::string("height")),
                ("weight", Value::string("weight")),
                ("score", Value::string("rating")),
                ("foot", Value::string("preferred_foot")),
                ("teamId", Value::string("team_id")),
            ]),
        ),
    ]);
    let registration = post(addr, "/steward/wrappers", &json::to_string(&w1));
    assert!(
        registration
            .get("wrapper")
            .and_then(Value::as_str)
            .is_some_and(|iri| iri.ends_with("/w1")),
        "registration names the wrapper: {registration:?}"
    );
    let teams_v1 = eco.teams_api.release(1).expect("v1 published");
    let w2 = Value::object([
        ("name", Value::string("w2")),
        ("source", Value::string("TeamsAPI")),
        ("version", Value::int(1)),
        ("format", Value::string("xml")),
        ("payload", Value::string(teams_v1.body.as_str())),
        (
            "attributes",
            Value::array(["id", "name", "shortName"].into_iter().map(Value::string)),
        ),
        (
            "bindings",
            Value::object([
                ("id", Value::string("team_id")),
                ("name", Value::string("team_name")),
                ("shortName", Value::string("team_shortName")),
            ]),
        ),
    ]);
    post(addr, "/steward/wrappers", &json::to_string(&w2));

    // The Figure 7 LAV mappings.
    post(
        addr,
        "/steward/mappings",
        r#"{
            "wrapper": "w1",
            "concepts": ["ex:Player", "sc:SportsTeam"],
            "features": ["ex:playerId", "ex:playerName", "ex:height", "ex:weight",
                         "ex:score", "ex:foot", "ex:teamId"],
            "relations": [{"from": "ex:Player", "property": "ex:hasTeam", "to": "sc:SportsTeam"}],
            "same_as": [
                {"attribute": "id", "feature": "ex:playerId"},
                {"attribute": "pName", "feature": "ex:playerName"},
                {"attribute": "height", "feature": "ex:height"},
                {"attribute": "weight", "feature": "ex:weight"},
                {"attribute": "score", "feature": "ex:score"},
                {"attribute": "foot", "feature": "ex:foot"},
                {"attribute": "teamId", "feature": "ex:teamId"}
            ]
        }"#,
    );
    post(
        addr,
        "/steward/mappings",
        r#"{
            "wrapper": "w2",
            "concepts": ["sc:SportsTeam"],
            "features": ["ex:teamId", "ex:teamName", "ex:shortName"],
            "same_as": [
                {"attribute": "id", "feature": "ex:teamId"},
                {"attribute": "name", "feature": "ex:teamName"},
                {"attribute": "shortName", "feature": "ex:shortName"}
            ]
        }"#,
    );

    // The analyst's turn: parse, rewrite and answer the Figure 8 walk.
    let parsed = post(addr, "/analyst/parse", &walk_body());
    assert_eq!(int_of(&parsed, "concepts"), 2);
    assert_eq!(int_of(&parsed, "relations"), 1);
    let rewriting = post(addr, "/analyst/rewrite", &walk_body());
    assert!(rewriting
        .get("sparql")
        .and_then(Value::as_str)
        .is_some_and(|s| s.contains("SELECT")));
    let baseline = post(addr, "/analyst/query", &walk_body());
    let baseline_rows = int_of(&baseline, "row_count");
    assert!(baseline_rows > 0, "Table 1 must not be empty");
    assert!(
        row_with_cells(&baseline, &["Lionel Messi", "FC Barcelona"]),
        "Table 1 misses the Messi row: {baseline:?}"
    );

    // Four analysts hammer the same OMQ concurrently over keep-alive
    // connections; everyone reads the same table.
    let body = walk_body();
    thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut connection = client::Connection::open(addr).unwrap();
                for _ in 0..3 {
                    let response = connection
                        .send("POST", "/analyst/query", Some(&body))
                        .unwrap();
                    assert_eq!(response.status, 200, "{}", response.body);
                    let answer = json::parse(&response.body).unwrap();
                    assert_eq!(int_of(&answer, "row_count"), baseline_rows);
                }
            });
        }
    });

    let metrics = get(addr, "/metrics");
    assert_eq!(int_of(&metrics, "errors_total"), 0);
    assert!(int_of(&metrics, "requests_total") >= 30);

    // The data-plane export carries intern-pool, dictionary, and columnar
    // counters; the queries above ran under the columnar default, so the
    // encode path must have moved.
    let dp = metrics
        .get("data_plane")
        .expect("data_plane stats exported");
    for field in [
        "rows_moved",
        "batches_emitted",
        "intern_hits",
        "intern_misses",
        "intern_entries",
        "intern_sweeps",
        "dict_entries",
        "dict_bytes",
    ] {
        assert!(
            dp.get(field).and_then(Value::as_number).is_some(),
            "data_plane misses numeric '{field}': {dp:?}"
        );
    }
    let columnar = dp.get("columnar").expect("columnar stats exported");
    for field in ["encodes", "decodes", "column_bytes", "kernel_invocations"] {
        assert!(
            columnar.get(field).and_then(Value::as_number).is_some(),
            "columnar misses numeric '{field}': {columnar:?}"
        );
    }
    assert!(
        int_of(columnar, "encodes") > 0 && int_of(columnar, "kernel_invocations") > 0,
        "columnar default did not execute any kernels: {columnar:?}"
    );
    server.shutdown();
}

/// Readers keep querying while the steward registers the breaking Players
/// v2 release. Within every connection epochs are monotone, every response
/// matches either the pre- or post-release plan (nothing in between), and
/// any response at the post-release epoch carries the new union branch —
/// the cache never serves a stale plan across the release.
#[test]
fn concurrent_readers_never_see_stale_plans() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let server = serve(eight_workers(), mdm).unwrap();
    let addr = server.addr();

    let before = post(addr, "/analyst/rewrite", &walk_body());
    let branches_before = int_of(&before, "branches");

    // Per-reader sequences of (epoch, branches) responses.
    type Observations = Vec<Vec<(i64, i64)>>;
    let stop = Arc::new(AtomicBool::new(false));
    let observations: Arc<Mutex<Observations>> = Arc::new(Mutex::new(Vec::new()));
    let body = walk_body();
    thread::scope(|scope| {
        for _ in 0..4 {
            let stop = Arc::clone(&stop);
            let observations = Arc::clone(&observations);
            let body = body.clone();
            scope.spawn(move || {
                let mut seen = Vec::new();
                let mut connection = client::Connection::open(addr).unwrap();
                while !stop.load(Ordering::SeqCst) {
                    let response = connection
                        .send("POST", "/analyst/query", Some(&body))
                        .unwrap();
                    assert_eq!(response.status, 200, "{}", response.body);
                    let answer = json::parse(&response.body).unwrap();
                    seen.push((int_of(&answer, "epoch"), int_of(&answer, "branches")));
                }
                observations.lock().unwrap().push(seen);
            });
        }

        thread::sleep(Duration::from_millis(30));
        let release_epoch = register_v2_over_http(addr, &eco);

        // The release is visible to new queries immediately and unions in
        // the v2 branch — Zlatan only exists on the new version.
        let after = post(addr, "/analyst/query", &walk_body());
        let branches_after = int_of(&after, "branches");
        assert!(
            branches_after > branches_before,
            "the rewriting must grow a union branch ({branches_before} -> {branches_after})"
        );
        assert!(row_with_cells(&after, &["Zlatan Ibrahimovic"]));
        assert!(int_of(&after, "epoch") >= release_epoch);

        // Let the readers observe the post-release world, then stop them.
        thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::SeqCst);
    });

    let observations = observations.lock().unwrap();
    assert_eq!(observations.len(), 4);
    let after = post(addr, "/analyst/query", &walk_body());
    let branches_after = int_of(&after, "branches");
    let release_epoch = int_of(&after, "epoch");
    for seen in observations.iter() {
        assert!(!seen.is_empty(), "every reader answered at least once");
        for window in seen.windows(2) {
            assert!(window[0].0 <= window[1].0, "epoch went backwards: {seen:?}");
        }
        for (epoch, branches) in seen {
            assert!(
                *branches == branches_before || *branches == branches_after,
                "response matches neither the old nor the new plan: \
                 epoch {epoch}, branches {branches}"
            );
            if *epoch >= release_epoch {
                assert_eq!(
                    *branches, branches_after,
                    "stale plan served after the release (epoch {epoch})"
                );
            }
        }
    }

    let metrics = get(addr, "/metrics");
    let invalidations = metrics
        .get("plan_cache")
        .map(|cache| int_of(cache, "invalidations"))
        .unwrap_or(0);
    assert!(
        invalidations >= 1,
        "the release must invalidate cached plans"
    );
    server.shutdown();
}

/// snapshot → restore → snapshot is idempotent over the API: the second
/// snapshot is byte-identical, the epoch keeps increasing across the swap,
/// and the restored metadata still rewrites the Figure 8 walk.
#[test]
fn snapshot_restore_snapshot_is_idempotent() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let server = serve(ServerConfig::default(), mdm).unwrap();
    let addr = server.addr();

    let first = get(addr, "/steward/snapshot");
    let snapshot = first
        .get("snapshot")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let epoch_before = int_of(&first, "epoch");

    let restore_body = json::to_string(&Value::object([(
        "snapshot",
        Value::string(snapshot.as_str()),
    )]));
    let ack = post(addr, "/steward/restore", &restore_body);
    assert!(int_of(&ack, "epoch") > epoch_before, "epoch stays monotone");

    let second = get(addr, "/steward/snapshot");
    assert_eq!(
        second.get("snapshot").and_then(Value::as_str),
        Some(snapshot.as_str()),
        "restoring a snapshot and re-snapshotting must be a fixpoint"
    );

    // The restored metadata still plans the walk (payloads re-register
    // separately; rewriting only needs metadata).
    let rewriting = post(addr, "/analyst/rewrite", &walk_body());
    assert!(int_of(&rewriting, "branches") >= 1);
    server.shutdown();
}

/// Repeated OMQs hit the plan cache (>0.9 hit rate in /metrics) and a
/// breaking release invalidates it: the next query replans and includes
/// the new version's union branch.
#[test]
fn plan_cache_hit_rate_and_release_invalidation() {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco).unwrap();
    let server = serve(ServerConfig::default(), mdm).unwrap();
    let addr = server.addr();

    let body = walk_body();
    let baseline = post(addr, "/analyst/query", &body);
    let branches_before = int_of(&baseline, "branches");
    for _ in 0..29 {
        post(addr, "/analyst/query", &body);
    }
    let metrics = get(addr, "/metrics");
    let cache = metrics.get("plan_cache").expect("cache stats exported");
    let hit_rate = cache
        .get("hit_rate")
        .and_then(Value::as_number)
        .map(|n| n.as_f64())
        .unwrap();
    assert!(hit_rate > 0.9, "expected >0.9 hit rate, got {hit_rate}");
    assert_eq!(int_of(cache, "misses"), 1, "one compile for 30 queries");

    register_v2_over_http(addr, &eco);
    let after = post(addr, "/analyst/query", &body);
    assert!(int_of(&after, "branches") > branches_before);
    assert!(row_with_cells(&after, &["Zlatan Ibrahimovic"]));

    let metrics = get(addr, "/metrics");
    let cache = metrics.get("plan_cache").expect("cache stats exported");
    assert!(int_of(cache, "invalidations") >= 1);
    assert_eq!(int_of(cache, "misses"), 2, "the release forces one replan");

    // The optimized-slot probes and the surgical-invalidation counters are
    // exported on the same scrape.
    for field in ["optimized_hits", "optimized_misses"] {
        assert!(
            cache.get(field).and_then(Value::as_number).is_some(),
            "plan_cache misses numeric '{field}': {cache:?}"
        );
    }
    let evolution = metrics
        .get("evolution")
        .expect("evolution counters exported");
    assert_eq!(
        evolution.get("invalidation_mode").and_then(Value::as_str),
        Some("surgical"),
        "surgical invalidation is the default: {evolution:?}"
    );
    for field in [
        "surgical_invalidations",
        "survivals",
        "incremental_extensions",
        "full_rewrites",
    ] {
        assert!(
            evolution.get(field).and_then(Value::as_number).is_some(),
            "evolution misses numeric '{field}': {evolution:?}"
        );
    }
    assert!(
        int_of(evolution, "full_rewrites") >= 1,
        "the cold compiles above must be counted: {evolution:?}"
    );
    server.shutdown();
}

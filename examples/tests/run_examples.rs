//! Drives every example binary end to end and asserts on its output — the
//! examples are part of the public API surface and must keep working.

use std::process::Command;

fn run(binary: &str) -> String {
    let output = Command::new(binary)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {binary}: {e}"));
    assert!(
        output.status.success(),
        "{binary} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn quickstart_regenerates_the_figures() {
    let out = run(env!("CARGO_BIN_EXE_quickstart"));
    for needle in [
        "Sample source payloads (Figure 2)",
        "Global graph (Figure 5)",
        "Source graph (Figure 6)",
        "LAV mappings (Figure 7)",
        "OMQ (Figure 8)",
        "SELECT ?teamName ?playerName",
        "⋈",
        "Lionel Messi",
    ] {
        assert!(out.contains(needle), "quickstart missing '{needle}'");
    }
}

#[test]
fn evolution_demonstrates_governance() {
    let out = run(env!("CARGO_BIN_EXE_evolution"));
    assert!(out.contains("Zlatan present? false"));
    assert!(out.contains("Zlatan present? true"));
    assert!(out.contains("dangling bindings"));
    assert!(out.contains("RENAME"));
    assert!(out.contains("breaking: true"));
}

#[test]
fn adhoc_queries_answer_the_nationality_question() {
    let out = run(env!("CARGO_BIN_EXE_adhoc_queries"));
    assert!(out.contains("league of their nationality"));
    assert!(out.contains("rows total"));
    assert!(!out.contains("query failed"), "an OMQ failed:\n{out}");
}

#[test]
fn supersede_scales_and_survives_evolution() {
    let out = run(env!("CARGO_BIN_EXE_supersede"));
    assert!(out.contains("walks of increasing span"));
    assert!(out.contains("continued evolution"));
    assert!(out.contains("still returns"));
    assert!(!out.contains("failed:"), "a span failed:\n{out}");
}

#[test]
fn serve_demo_governs_evolution_over_http() {
    let out = run(env!("CARGO_BIN_EXE_serve_demo"));
    assert!(out.contains("mdm-server listening on http://127.0.0.1:"));
    assert!(out.contains("plan cache after warm-up: hits=1 misses=1"));
    assert!(out.contains("steward registered the breaking v2 release + mapping over HTTP"));
    assert!(out.contains("Zlatan present? true"));
    assert!(out.contains("union branches"));
    assert!(out.contains("server stopped cleanly"));
}

#[test]
fn onboarding_maps_automatically() {
    let out = run(env!("CARGO_BIN_EXE_onboarding"));
    assert!(out.contains("mapped=true"));
    assert!(out.contains("attribute reused"));
    assert!(out.contains("steward decision needed"));
}

//! Ad-hoc ontology-mediated queries over the football ecosystem, including
//! the exemplary query of the paper's §1: *"who are the players that play in
//! a league of their nationality?"*.
//!
//! Run with: `cargo run -p mdm-examples --bin adhoc_queries`

use mdm_core::usecase::{self, ex, sports_team};
use mdm_core::Walk;
use mdm_wrappers::football;

fn main() {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).expect("use case setup");
    usecase::register_players_v2(&mut mdm, &eco).expect("register v2");

    let queries: Vec<(&str, Walk)> = vec![
        (
            "Players and their physical features",
            Walk::new()
                .feature(&ex("Player"), &ex("playerName"))
                .feature(&ex("Player"), &ex("height"))
                .feature(&ex("Player"), &ex("weight")),
        ),
        (
            "Teams with short names",
            Walk::new()
                .feature(&sports_team(), &ex("teamName"))
                .feature(&sports_team(), &ex("shortName")),
        ),
        (
            "Players and their teams (Figure 8)",
            usecase::figure8_walk(),
        ),
        (
            "Teams and the league they play in",
            Walk::new()
                .feature(&sports_team(), &ex("teamName"))
                .feature(&ex("League"), &ex("leagueName"))
                .relation(&sports_team(), &ex("playsIn"), &ex("League")),
        ),
        (
            "Leagues and their countries",
            Walk::new()
                .feature(&ex("League"), &ex("leagueName"))
                .feature(&ex("Country"), &ex("countryName"))
                .relation(&ex("League"), &ex("ofCountry"), &ex("Country")),
        ),
        (
            "Players that play in a league of their nationality (§1)",
            usecase::nationality_league_walk(),
        ),
    ];

    for (title, walk) in queries {
        println!("==============================================");
        println!("OMQ: {title}\n");
        match mdm.query(&walk) {
            Ok(answer) => {
                println!("-- SPARQL --\n{}\n", answer.rewriting.sparql);
                println!(
                    "-- algebra ({} branch(es)) --",
                    answer.rewriting.branch_count()
                );
                let algebra = answer.rewriting.algebra();
                if algebra.chars().count() > 400 {
                    let prefix: String = algebra.chars().take(400).collect();
                    println!("{prefix}... [{} chars]\n", algebra.chars().count());
                } else {
                    println!("{algebra}\n");
                }
                let rendered = answer.render();
                for line in rendered.lines().take(10) {
                    println!("{line}");
                }
                println!("... ({} rows total)\n", answer.table.len());
            }
            Err(e) => println!("query failed: {e}\n"),
        }
    }
}

//! Quickstart: the paper's motivational use case, end to end.
//!
//! Reproduces, from a running system, every artifact of the paper:
//! the global graph (Figure 5), the source graph (Figure 6), the LAV
//! mappings (Figure 7), the Figure 8 OMQ with its SPARQL and relational
//! algebra, and the Table 1 result sample.
//!
//! Run with: `cargo run -p mdm-examples --bin quickstart`

use mdm_core::usecase;
use mdm_wrappers::football;

fn main() {
    // The four simulated REST APIs of the use case (Players: JSON,
    // Teams: XML, Leagues: JSON, Countries: CSV).
    let eco = football::build_default();

    println!("=== Sample source payloads (Figure 2) ===\n");
    let players_body = &eco.players_api.release(1).expect("v1 published").body;
    println!(
        "Players API (JSON), first 160 chars:\n{}...\n",
        &players_body[..160.min(players_body.len())]
    );
    let teams_body = &eco.teams_api.release(1).expect("v1 published").body;
    println!(
        "Teams API (XML), first 160 chars:\n{}...\n",
        &teams_body[..160.min(teams_body.len())]
    );

    // Data-steward role: set the system up.
    let mdm = usecase::football_mdm(&eco).expect("use case setup");

    println!(
        "=== Global graph (Figure 5) ===\n{}",
        mdm.render_global_graph()
    );
    println!(
        "=== Source graph (Figure 6) ===\n{}",
        mdm.render_source_graph()
    );
    println!("=== LAV mappings (Figure 7) ===\n{}", mdm.render_mappings());

    // Data-analyst role: pose the Figure 8 OMQ by drawing a walk.
    let walk = usecase::figure8_walk();
    let answer = mdm.query(&walk).expect("figure 8 query");

    println!("=== OMQ (Figure 8) ===\n");
    println!("-- generated SPARQL --\n{}\n", answer.rewriting.sparql);
    println!(
        "-- generated relational algebra --\n{}\n",
        answer.rewriting.algebra()
    );
    println!("=== Query result (Table 1 layout) ===\n");
    // Show the three famous rows first, like the paper's sample.
    let rendered = answer.render();
    for line in rendered.lines().take(12) {
        println!("{line}");
    }
    let total = answer.table.len();
    println!("... ({total} rows total)");
}

//! MDM as a service: starts `mdm-server` on a loopback port, then plays
//! both roles over HTTP — the analyst queries the Figure 8 walk (watching
//! the plan cache warm up), the steward registers the breaking Players API
//! v2 release, and the same query transparently unions both versions.
//!
//! Run with `cargo run -p mdm-examples --bin serve_demo`.

use mdm_core::usecase;
use mdm_dataform::json;
use mdm_server::{client, serve, ServerConfig};
use mdm_wrappers::football;

const FIG8_WALK: &str =
    "ex:Player { ex:playerName }\nsc:SportsTeam { ex:teamName }\nex:Player -ex:hasTeam-> sc:SportsTeam";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eco = football::build_default();
    let mdm = usecase::football_mdm(&eco)?;
    let server = serve(ServerConfig::default(), mdm)?;
    let addr = server.addr();
    println!("mdm-server listening on http://{addr}");

    // The analyst poses the Figure 8 walk — twice, to show the plan cache.
    let query = json::to_string(&mdm_dataform::Value::object([(
        "walk",
        mdm_dataform::Value::string(FIG8_WALK),
    )]));
    for attempt in 1..=2 {
        let answer = client::post_json(addr, "/analyst/query", &query)?.into_ok()?;
        let parsed = json::parse(&answer)?;
        let rows = parsed.get("row_count").and_then(|v| v.as_number());
        println!("query #{attempt}: {:?} rows (Table 1 shape)", rows);
    }
    let metrics = json::parse(&client::get(addr, "/metrics")?.into_ok()?)?;
    let cache = metrics.get("plan_cache").expect("metrics expose the cache");
    println!(
        "plan cache after warm-up: hits={} misses={}",
        cache.get("hits").unwrap().scalar_text().unwrap(),
        cache.get("misses").unwrap().scalar_text().unwrap(),
    );

    // The steward publishes the breaking v2 release over HTTP: new wrapper
    // over the evolved payload, its LAV mapping, one new feature.
    let v2 = eco.players_api.release(2).expect("v2 published");
    let wrapper_body = mdm_dataform::Value::object([
        ("name", mdm_dataform::Value::string("w3")),
        ("source", mdm_dataform::Value::string("PlayersAPI")),
        ("version", mdm_dataform::Value::int(i64::from(v2.version))),
        ("format", mdm_dataform::Value::string("json")),
        ("payload", mdm_dataform::Value::string(v2.body.as_str())),
        ("notes", mdm_dataform::Value::string(v2.notes.as_str())),
        (
            "attributes",
            mdm_dataform::Value::array(
                [
                    "id",
                    "pName",
                    "height",
                    "weight",
                    "foot",
                    "teamId",
                    "nationality",
                ]
                .into_iter()
                .map(mdm_dataform::Value::string),
            ),
        ),
        (
            "bindings",
            mdm_dataform::Value::object([
                ("id", mdm_dataform::Value::string("players_id")),
                ("pName", mdm_dataform::Value::string("players_full_name")),
                ("height", mdm_dataform::Value::string("players_height")),
                ("weight", mdm_dataform::Value::string("players_weight")),
                ("foot", mdm_dataform::Value::string("players_foot")),
                ("teamId", mdm_dataform::Value::string("players_team_id")),
                (
                    "nationality",
                    mdm_dataform::Value::string("players_nationality"),
                ),
            ]),
        ),
    ]);
    client::post_json(
        addr,
        "/steward/features",
        r#"{"concept": "ex:Player", "feature": "ex:nationality"}"#,
    )?
    .into_ok()?;
    client::post_json(addr, "/steward/wrappers", &json::to_string(&wrapper_body))?.into_ok()?;
    let mapping = r#"{
        "wrapper": "w3",
        "concepts": ["ex:Player", "sc:SportsTeam"],
        "features": ["ex:playerId", "ex:playerName", "ex:height", "ex:weight",
                     "ex:foot", "ex:nationality", "ex:teamId"],
        "relations": [{"from": "ex:Player", "property": "ex:hasTeam", "to": "sc:SportsTeam"}],
        "same_as": [
            {"attribute": "id", "feature": "ex:playerId"},
            {"attribute": "pName", "feature": "ex:playerName"},
            {"attribute": "height", "feature": "ex:height"},
            {"attribute": "weight", "feature": "ex:weight"},
            {"attribute": "foot", "feature": "ex:foot"},
            {"attribute": "nationality", "feature": "ex:nationality"},
            {"attribute": "teamId", "feature": "ex:teamId"}
        ]
    }"#;
    client::post_json(addr, "/steward/mappings", mapping)?.into_ok()?;
    println!("steward registered the breaking v2 release + mapping over HTTP");

    // The very same walk now unions both versions — governed evolution.
    let answer = json::parse(&client::post_json(addr, "/analyst/query", &query)?.into_ok()?)?;
    let rows = answer.get("rows").and_then(|v| v.as_array()).unwrap_or(&[]);
    let zlatan = rows.iter().any(|row| {
        row.as_array()
            .map(|cells| {
                cells
                    .iter()
                    .any(|c| c.as_str().is_some_and(|s| s.contains("Zlatan")))
            })
            .unwrap_or(false)
    });
    println!(
        "post-release query: {} rows, {} union branches, Zlatan present? {zlatan}",
        answer.get("row_count").unwrap().scalar_text().unwrap(),
        answer.get("branches").unwrap().scalar_text().unwrap(),
    );

    let metrics = json::parse(&client::get(addr, "/metrics")?.into_ok()?)?;
    println!(
        "final metrics: epoch={} requests={} cache_invalidations={}",
        metrics.get("epoch").unwrap().scalar_text().unwrap(),
        metrics
            .get("requests_total")
            .unwrap()
            .scalar_text()
            .unwrap(),
        metrics
            .get("plan_cache")
            .and_then(|c| c.get("invalidations"))
            .unwrap()
            .scalar_text()
            .unwrap(),
    );

    server.shutdown();
    println!("server stopped cleanly");
    Ok(())
}

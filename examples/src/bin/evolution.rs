//! Governance of evolution — the paper's §3 demo scenario.
//!
//! 1. Query the system configured with v1 wrappers only: results are
//!    *incomplete* (the Players API moved newer records to its v2 endpoint).
//! 2. Show what happens to a naive consumer bound to the old schema: its
//!    bindings dangle (the crash/partial-result failure the paper opens
//!    with), and a design-time GAV mapping silently misses the new data.
//! 3. Register the v2 release and its LAV mapping through MDM; the same
//!    walk now rewrites to a union spanning *both* schema versions and the
//!    results are complete — no query was rewritten by hand.
//!
//! Run with: `cargo run -p mdm-examples --bin evolution`

use mdm_core::usecase;
use mdm_wrappers::football;
use mdm_wrappers::wrapper::{Signature, Wrapper};

fn main() {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).expect("use case setup");
    let walk = usecase::figure8_walk();

    println!("=== Step 1: query under v1 only ===\n");
    let before = mdm.query(&walk).expect("v1 query");
    println!("branches: {}", before.rewriting.branch_count());
    println!("rows:     {}", before.table.len());
    println!(
        "Zlatan present? {}\n",
        before.render().contains("Zlatan Ibrahimovic")
    );

    println!("=== Step 2: the breaking v2 release, seen naively ===\n");
    let v1 = eco.players_api.release(1).expect("v1 published");
    let v2 = eco.players_api.release(2).expect("v2 published");
    println!("release notes: {}\n", v2.notes);
    // MDM's automatic schema extraction diffs the flattened payloads:
    let diff = mdm_wrappers::diff::diff_releases(v1, v2).expect("payloads parse");
    println!("detected schema changes (v1 → v2):\n{}", diff.render());
    println!("breaking: {}\n", diff.is_breaking());
    // A consumer that keeps v1's bindings against the v2 payload:
    let naive = Wrapper::over_release(
        Signature::new(
            "w1_naive",
            ["id", "pName", "height", "weight", "score", "foot", "teamId"],
        )
        .expect("signature"),
        "PlayersAPI",
        v2.clone(),
        [
            ("id", "id"),
            ("pName", "name"),
            ("height", "height"),
            ("weight", "weight"),
            ("score", "rating"),
            ("foot", "preferred_foot"),
            ("teamId", "team_id"),
        ],
    )
    .expect("wrapper");
    println!(
        "dangling bindings of the un-maintained wrapper: {:?}",
        naive.dangling_bindings().expect("payload parses")
    );
    println!(
        "(every one of those attributes now reads NULL — the paper's 'crash or partial results')\n"
    );

    // The GAV baseline, derived before the release, cannot see v2 at all.
    let gav = mdm.derive_gav().expect("gav derivation");
    println!(
        "GAV baseline: {} features frozen to v1 wrappers; after the release it still scans only v1.\n",
        gav.bound_features()
    );

    println!("=== Step 3: govern the evolution through MDM ===\n");
    usecase::register_players_v2(&mut mdm, &eco).expect("register v2");
    let after = mdm.query(&walk).expect("v1+v2 query");
    println!(
        "branches: {} (now spanning both schema versions)",
        after.rewriting.branch_count()
    );
    println!("algebra:  {}\n", after.rewriting.algebra());
    println!(
        "rows:     {} (was {})",
        after.table.len(),
        before.table.len()
    );
    println!(
        "Zlatan present? {}",
        after.render().contains("Zlatan Ibrahimovic")
    );
    assert!(after.table.len() > before.table.len());
    println!("\nThe analyst's walk never changed — MDM adapted the rewriting.");
}

//! Semi-automatic source onboarding — the steward-assistance workflow.
//!
//! The paper: "data stewards are provided with mechanisms to
//! semi-automatically integrate new sources and accommodate schema
//! evolution". This example onboards two sources through
//! `Mdm::onboard_source`:
//!
//! 1. a mirror of the Teams API whose attribute names match the global
//!    features — it maps fully automatically;
//! 2. the breaking Players v2 release — attribute *reuse* from the v1
//!    wrapper resolves the surviving fields, and the report pinpoints what
//!    the steward still has to decide (the brand-new `nationality` field).
//!
//! Run with: `cargo run -p mdm-examples --bin onboarding`

use mdm_core::assist;
use mdm_core::usecase;
use mdm_wrappers::football;
use mdm_wrappers::{Format, Release, RestSource};

fn main() {
    let eco = football::build_default();
    let mut mdm = usecase::football_mdm(&eco).expect("use case setup");

    println!("=== Onboarding 1: a fresh source with matching names ===\n");
    let mut mirror = RestSource::new("TeamsMirror");
    mirror.publish(Release {
        version: 1,
        format: Format::Json,
        body: r#"[{"team_id":25,"team_name":"FC Barcelona","short_name":"FCB"},
                  {"team_id":27,"team_name":"Bayern Munich","short_name":"FCB2"}]"#
            .to_string(),
        notes: "mirror of the Teams API".to_string(),
    });
    let config = r#"{
        "source": "TeamsMirror",
        "wrappers": [{
            "name": "wm1",
            "version": 1,
            "bindings": [
                {"attribute": "teamId",    "column": "team_id"},
                {"attribute": "teamName",  "column": "team_name"},
                {"attribute": "shortName", "column": "short_name"}
            ]
        }]
    }"#;
    for report in mdm.onboard_source(&mirror, config).expect("onboards") {
        println!(
            "wrapper {}: mapped={} suggestions={} unmatched={:?} gaps={:?}",
            report.wrapper,
            report.mapped,
            report.suggestions,
            report.unmatched,
            report.identifier_gaps
        );
    }
    let walk = usecase::figure8_walk();
    let answer = mdm.query(&walk).expect("answers");
    println!(
        "\nthe Figure 8 walk now unions {} branches (the mirror joined in automatically)\n",
        answer.rewriting.branch_count()
    );

    println!("=== Onboarding 2: the breaking Players v2 release ===\n");
    // Register the v2 wrapper *without* a mapping, then ask for suggestions.
    mdm.register_wrapper(football::w3_players_v2(&eco))
        .expect("registers");
    let draft = assist::suggest_mapping(mdm.ontology(), "w3").expect("suggests");
    println!("suggestions for w3 (Players v2):");
    for s in &draft.accepted {
        println!(
            "    {:<12} → {:<18} [{:?}] {}",
            s.attribute,
            mdm.ontology().compact(&s.feature),
            s.confidence,
            s.rationale
        );
    }
    for a in &draft.unmatched {
        println!("    {a:<12} → (steward decision needed)");
    }
    println!(
        "\ndraft applicable as-is: {} — the steward adds the new 'nationality' \
         feature to the global graph, extends the draft, and applies.",
        draft.is_applicable()
    );
}

//! A SUPERSEDE-style scenario: a larger ecosystem of evolving sources.
//!
//! The paper's second on-site demo was the SUPERSEDE project — "a
//! real-world scenario of Big Data integration under schema evolution" with
//! tens of sources and many releases. This example builds a synthetic
//! ecosystem of that shape (8 chained concepts, 3 schema versions per
//! source), registers everything through the steward API, and runs walks of
//! increasing span while the sources keep evolving underneath.
//!
//! Run with: `cargo run -p mdm-examples --bin supersede`

use mdm_core::synthetic::{self, chain_walk};
use mdm_wrappers::workload::{build, evolve_all, WorkloadConfig};

fn main() {
    let config = WorkloadConfig {
        concepts: 8,
        features_per_concept: 4,
        versions_per_source: 3,
        rows_per_wrapper: 200,
        seed: 644018, // the SUPERSEDE grant agreement number
    };
    println!(
        "building ecosystem: {} sources × {} versions × {} rows",
        config.concepts, config.versions_per_source, config.rows_per_wrapper
    );
    let mut eco = build(&config);
    let mut mdm = synthetic::mdm_from_synthetic(&eco).expect("ecosystem registers");
    // This ecosystem's unions grow as 3^span; raise the enumeration guard
    // for the wider walks (the default 1024 refuses span ≥ 4).
    mdm.set_options(mdm_core::RewriteOptions {
        max_branches: 100_000,
        ..mdm_core::RewriteOptions::default()
    });
    println!(
        "registered {} wrappers over {} sources\n",
        mdm.catalog().len(),
        config.concepts
    );

    println!("=== walks of increasing span ===");
    println!(
        "{:>5} {:>9} {:>8} {:>10}",
        "span", "branches", "rows", "plan nodes"
    );
    for k in 1..=config.concepts.min(5) {
        let walk = chain_walk(&eco, k);
        match mdm.query(&walk) {
            Ok(answer) => println!(
                "{k:>5} {:>9} {:>8} {:>10}",
                answer.rewriting.branch_count(),
                answer.table.len(),
                answer.rewriting.plan.node_count()
            ),
            Err(e) => println!("{k:>5}  failed: {e}"),
        }
    }

    println!("\n=== continued evolution ===");
    let log = evolve_all(&mut eco, 6, 99);
    for (source, change) in &log {
        println!("  Source{source}: {change}");
    }
    // Rebuild the system with the grown ecosystem (in production this is an
    // incremental steward action; the facade re-registration shows the same
    // metadata path).
    let mdm = synthetic::mdm_from_synthetic(&eco).expect("evolved ecosystem registers");
    println!(
        "\nafter evolution: {} wrappers registered",
        mdm.catalog().len()
    );
    let walk = chain_walk(&eco, 3);
    let answer = mdm.query(&walk).expect("post-evolution walk answers");
    println!(
        "span-3 walk now rewrites to {} branches and still returns {} rows",
        answer.rewriting.branch_count(),
        answer.table.len()
    );
}

#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, and a
# warning-free clippy pass over every target. CI and pre-commit both run
# this; keep it the single source of truth for "the workspace is healthy".
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> cargo test --release"
cargo test --release --workspace --quiet

echo "==> crash-recovery suite (release)"
cargo test --release -p mdm-integration-tests --test durability --quiet

echo "==> replication suite (release)"
cargo test --release -p mdm-integration-tests --test replication --quiet

echo "==> failover/chaos suite (release, hard timeout)"
# The chaos harness must terminate: a hang here means a stuck promotion
# or a replica that never converges, so fail loudly rather than wedge CI.
timeout 300 cargo test --release -p mdm-integration-tests --test failover --quiet

echo "==> optimizer suite (release)"
cargo test --release -p mdm-relational --test prop_optimizer --quiet

echo "==> evolution churn suite (release, hard timeout)"
# Proptest churn scripts plus /changes long-polls: a hang here means a
# wedged long-poll or a cache livelock, so fail loudly rather than wedge CI.
timeout 300 cargo test --release -p mdm-integration-tests --test evolution_churn --quiet

echo "==> cargo bench --no-run (benches compile, incl. P15 evolution_churn)"
cargo bench --workspace --no-run

echo "==> cargo clippy (all targets, -D warnings -D clippy::redundant_clone)"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::redundant_clone

echo "==> OK"
